//! Black-box *synthesis* via Skolem functions.
//!
//! For a satisfiable PEC instance, the Skolem functions of the black-box
//! outputs are concrete implementations of the boxes. This example carves
//! a full-adder cell out of a 2-bit ripple-carry adder, proves
//! realizability, extracts the Skolem certificate, prints the synthesized
//! truth tables, and finally plugs the tables back into the incomplete
//! netlist to confirm — by exhaustive simulation — that the completed
//! circuit matches the specification.
//!
//! ```text
//! cargo run --release --example synthesize_black_box
//! ```

use hqs::core::skolem::{extract_skolem, SkolemCertificate};
use hqs::pec::encode::encode_pec;
use hqs::pec::Netlist;

fn adder(bits: usize, boxed: &[usize]) -> Netlist {
    let mut n = Netlist::new("adder");
    let a: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let b: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let mut carry = n.add_input();
    for i in 0..bits {
        if boxed.contains(&i) {
            let holes = n.add_black_box(vec![a[i], b[i], carry], 2);
            n.add_output(holes[0]);
            carry = holes[1];
        } else {
            let ab = n.xor(a[i], b[i]);
            let sum = n.xor(ab, carry);
            let g1 = n.and([a[i], b[i]]);
            let g2 = n.and([ab, carry]);
            n.add_output(sum);
            carry = n.or([g1, g2]);
        }
    }
    n.add_output(carry);
    n
}

fn main() {
    let spec = adder(2, &[]);
    let incomplete = adder(2, &[1]);
    let dqbf = encode_pec(&spec, &incomplete);
    println!(
        "PEC instance: {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );

    let certificate = extract_skolem(&dqbf).expect("the carved adder is realizable");
    assert!(certificate.verify(&dqbf), "certificate must verify");

    // The black box of cell 1 has two outputs (sum, carry-out) observing
    // (a1, b1, carry1). Their Skolem functions over the *cut universals*
    // are the synthesized implementation.
    let hole_vars: Vec<_> = dqbf
        .existentials()
        .iter()
        .copied()
        .filter(|&y| {
            let deps = dqbf.dependencies(y).unwrap();
            !deps.is_empty() && deps.len() < dqbf.universals().len()
        })
        .collect();
    println!("\nsynthesized box functions (rows indexed by cut values):");
    for (k, &hole) in hole_vars.iter().enumerate() {
        let f = certificate.function(hole).expect("certified");
        let rendered: String = f.table.iter().map(|&v| if v { '1' } else { '0' }).collect();
        println!(
            "  output {k}: table over {} cut signals = {rendered}",
            f.deps.len()
        );
    }

    // Plug the tables back into the netlist and compare exhaustively.
    let box_fn = make_box_fn(&incomplete, &hole_vars, &certificate, &dqbf);
    let num_inputs = spec.inputs().len();
    let mut mismatches = 0;
    for bits in 0u32..(1 << num_inputs) {
        let ins: Vec<bool> = (0..num_inputs).map(|i| bits >> i & 1 == 1).collect();
        let expected = spec.eval_complete(&ins);
        let got = incomplete.eval_with_boxes(&ins, &box_fn);
        if expected != got {
            mismatches += 1;
        }
    }
    println!("\nexhaustive check of the completed circuit: {mismatches} mismatches");
    assert_eq!(mismatches, 0);
    println!("the synthesized box is a correct full adder ✓");
}

/// Adapts the certificate's tables to the `eval_with_boxes` interface.
/// Hole `k` of box `b` is the k-th hole existential (generation order
/// matches the box/output declaration order of the netlist).
fn make_box_fn<'a>(
    incomplete: &'a Netlist,
    hole_vars: &'a [hqs::base::Var],
    certificate: &'a SkolemCertificate,
    _dqbf: &'a hqs::Dqbf,
) -> impl Fn(usize, usize, &[bool]) -> bool + 'a {
    move |box_id, out_idx, cut: &[bool]| {
        // Hole existentials were allocated box by box, output by output.
        let flat_index: usize = incomplete
            .boxes()
            .iter()
            .take(box_id)
            .map(|bb| bb.outputs.len())
            .sum::<usize>()
            + out_idx;
        let f = certificate
            .function(hole_vars[flat_index])
            .expect("certified hole");
        // The table rows are indexed by the dependency (cut) values in
        // declaration order.
        let mut row = 0usize;
        for (i, &value) in cut.iter().enumerate() {
            if value {
                row |= 1 << i;
            }
        }
        f.table[row]
    }
}
