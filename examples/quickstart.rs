//! Quickstart: build and solve the paper's Example 1 DQBF, inspect the
//! dependency graph, and watch the preprocessing/elimination statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hqs::base::Lit;
use hqs::core::depgraph::DepGraph;
use hqs::obs::{MetricsObserver, Phase};
use hqs::{Dqbf, Outcome, Session};
use std::sync::Arc;

fn main() {
    // Example 1 of the paper:
    //   ψ = ∀x₁ ∀x₂ ∃y₁(x₁) ∃y₂(x₂) : (y₁ ↔ x₁) ∧ (y₂ ↔ x₂)
    // Each yᵢ must copy "its" universal — expressible in DQBF but not as a
    // linearly ordered QBF prefix.
    let mut dqbf = Dqbf::new();
    let x1 = dqbf.add_universal();
    let x2 = dqbf.add_universal();
    let y1 = dqbf.add_existential([x1]);
    let y2 = dqbf.add_existential([x2]);
    for (x, y) in [(x1, y1), (x2, y2)] {
        dqbf.add_clause([Lit::positive(x), Lit::negative(y)]);
        dqbf.add_clause([Lit::negative(x), Lit::positive(y)]);
    }
    println!("formula: {dqbf:?}");

    // The dependency graph (Definition 4) has a 2-cycle, so no equivalent
    // QBF prefix exists (Theorem 3) — this is genuinely DQBF.
    let deps: Vec<_> = dqbf
        .existentials()
        .iter()
        .map(|&y| (y, dqbf.dependencies(y).unwrap().clone()))
        .collect();
    let graph = DepGraph::new(&deps);
    println!(
        "dependency graph cyclic (needs DQBF): {}",
        graph.is_cyclic()
    );
    println!("binary cycles: {}", graph.binary_cycles().len());

    // Solve with HQS (paper defaults: preprocessing, gate detection,
    // unit/pure elimination, MaxSAT-minimal elimination set). On this tiny
    // formula the preprocessor alone decides: y₁ ≡ x₁ and y₂ ≡ x₂ are
    // equivalence substitutions.
    let mut session = Session::builder().build().expect("defaults are valid");
    let result = session.solve(&dqbf);
    let stats = session.stats();
    println!("verdict: {result:?}");
    println!(
        "decided by preprocessing: {} ({} equivalence substitutions)",
        stats.decided_by_preprocessing, stats.preprocess.equivalences
    );
    assert_eq!(result, Outcome::Sat);

    // Disable preprocessing to watch the full pipeline: MaxSAT picks a
    // minimum elimination set, Theorem 1 eliminates a universal, and the
    // linearised remainder goes to the QBF backend. Attach a metrics
    // observer to see where the time went.
    let observer = Arc::new(MetricsObserver::new());
    let config = hqs::HqsConfig::builder()
        .preprocess(false)
        .gate_detection(false)
        .build()
        .expect("valid configuration");
    let mut session = Session::builder()
        .config(config)
        .observer(observer.clone())
        .build()
        .expect("valid configuration");
    let result = session.solve(&dqbf);
    let stats = session.stats();
    println!("without preprocessing: {result:?}");
    println!(
        "stats: {} universal eliminations, {} unit/pure eliminations, \
         elimination set of size {}, peak {} AIG nodes, QBF backend \
         reached: {}",
        stats.universal_elims,
        stats.unit_pure_elims,
        stats.elimination_set_size,
        stats.peak_nodes,
        stats.reached_qbf,
    );
    assert_eq!(result, Outcome::Sat);
    let snapshot = observer.snapshot();
    println!(
        "observed: {} spans recorded, elim-loop seen: {}",
        snapshot.spans.len(),
        snapshot.spans.iter().any(|s| s.phase == Phase::ElimLoop),
    );

    // Swap the dependencies (y₁ sees x₁ but must copy x₂): unsatisfiable.
    let mut wrong = Dqbf::new();
    let x1 = wrong.add_universal();
    let x2 = wrong.add_universal();
    let y1 = wrong.add_existential([x1]);
    wrong.add_clause([Lit::positive(x2), Lit::negative(y1)]);
    wrong.add_clause([Lit::negative(x2), Lit::positive(y1)]);
    let mut session = Session::builder().build().expect("defaults are valid");
    println!("with the wrong dependency set: {:?}", session.solve(&wrong));
}
