//! A miniature command-line DQBF solver: reads a DQDIMACS file (path as
//! the first argument, or a built-in demo formula when absent), runs HQS
//! and prints the verdict plus pipeline statistics — the shape of a real
//! solver binary built on this library.
//!
//! ```text
//! cargo run --example dqdimacs_solve -- instance.dqdimacs
//! ```

use hqs::cnf::dimacs;
use hqs::{Dqbf, Outcome, Session};
use std::process::ExitCode;

const DEMO: &str = "\
c Example 1 of the HQS paper, as DQDIMACS:
c   forall x1 x2  exists y1(x1) y2(x2) : (y1<->x1) & (y2<->x2)
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
";

fn main() -> ExitCode {
    let text = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("no input file given; solving the built-in demo\n{DEMO}");
            DEMO.to_string()
        }
    };
    let file = match dimacs::parse_dqdimacs(&text) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("parse error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let dqbf = Dqbf::from_file(&file);
    println!(
        "parsed: {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );
    let mut session = Session::builder().build().expect("defaults are valid");
    let result = session.solve(&dqbf);
    let stats = session.stats();
    println!(
        "preprocessing: {} units, {} universal reductions, {} pures, \
         {} equivalences, {} gates",
        stats.preprocess.units,
        stats.preprocess.universal_reductions,
        stats.preprocess.pures,
        stats.preprocess.equivalences,
        stats.preprocess.gates,
    );
    println!(
        "main loop: {} universal / {} existential / {} unit-pure \
         eliminations, elimination set {}, peak {} nodes, QBF backend \
         reached: {}",
        stats.universal_elims,
        stats.existential_elims,
        stats.unit_pure_elims,
        stats.elimination_set_size,
        stats.peak_nodes,
        stats.reached_qbf,
    );
    // Standard (Q)DIMACS-style exit codes: 10 = SAT, 20 = UNSAT.
    match result {
        Outcome::Sat => println!("s cnf SAT"),
        Outcome::Unsat => println!("s cnf UNSAT"),
        Outcome::Unknown(e) => println!("s cnf UNKNOWN ({e})"),
    }
    ExitCode::from(u8::try_from(result.to_exit_code()).unwrap_or(1))
}
