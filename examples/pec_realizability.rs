//! Partial equivalence checking of an incomplete circuit — the paper's
//! reference application.
//!
//! We build a 4-bit ripple-carry adder specification, replace two of the
//! full-adder cells in the implementation by black boxes, and ask HQS
//! whether the boxes are implementable (they are). Then we perturb the
//! specification with a fault the boxes cannot observe and show the design
//! becomes unrealizable. With *two* boxes seeing different cuts, plain QBF
//! cannot express the question exactly — this is where DQBF earns its keep.
//!
//! ```text
//! cargo run --example pec_realizability
//! ```

use hqs::pec::encode::encode_pec;
use hqs::pec::Netlist;
use hqs::{Outcome, Session};

/// Builds an n-bit ripple-carry adder; cells listed in `boxed` become
/// black boxes observing (aᵢ, bᵢ, carryᵢ).
fn adder(bits: usize, boxed: &[usize]) -> Netlist {
    let mut n = Netlist::new("adder");
    let a: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let b: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let mut carry = n.add_input();
    for i in 0..bits {
        if boxed.contains(&i) {
            let holes = n.add_black_box(vec![a[i], b[i], carry], 2);
            n.add_output(holes[0]);
            carry = holes[1];
        } else {
            let ab = n.xor(a[i], b[i]);
            let sum = n.xor(ab, carry);
            let g1 = n.and([a[i], b[i]]);
            let g2 = n.and([ab, carry]);
            n.add_output(sum);
            carry = n.or([g1, g2]);
        }
    }
    n.add_output(carry);
    n
}

fn main() {
    let spec = adder(4, &[]);
    let implementation = adder(4, &[1, 3]);
    println!("spec: {spec:?}");
    println!("incomplete implementation: {implementation:?}");

    let dqbf = encode_pec(&spec, &implementation);
    println!(
        "encoded DQBF: {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );

    let mut session = Session::builder().build().expect("defaults are valid");
    let verdict = session.solve(&dqbf);
    println!("realizable (can the black boxes be implemented)? {verdict:?}");
    assert_eq!(verdict, Outcome::Sat);

    // Fault the specification inside cell 0 (signal 9 is its a⊕b gate —
    // inputs occupy ids 0..=8). Cell 0 is not boxed, so no box
    // implementation can compensate.
    let faulty_spec = spec.with_fault(9);
    let dqbf = encode_pec(&faulty_spec, &implementation);
    let verdict = session.solve(&dqbf);
    println!("realizable against the faulted spec? {verdict:?}");
}
