//! A miniature version of the paper's evaluation: generate a few PEC
//! instances from each circuit family, run HQS and the iDQ-style
//! instantiation baseline side by side, and print a small comparison
//! table. (The full regeneration of Table I / Fig. 4 lives in the
//! `hqs-bench` crate: `cargo run -p hqs-bench --release --bin table1`.)
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use hqs::base::Budget;
use hqs::pec::families::generate;
use hqs::pec::Family;
use hqs::{InstantiationSolver, Outcome, Session};
use std::time::{Duration, Instant};

fn outcome(result: Outcome) -> &'static str {
    match result {
        Outcome::Sat => "SAT",
        Outcome::Unsat => "UNSAT",
        Outcome::Unknown(_) => "--",
    }
}

fn main() {
    let timeout = Duration::from_secs(5);
    println!(
        "{:<28} {:>8} {:>10} {:>8} {:>10}",
        "instance", "HQS", "[s]", "iDQ-style", "[s]"
    );
    println!("{}", "-".repeat(70));
    for family in Family::ALL {
        for (size, boxes, fault) in [(3u32, 1u32, false), (4, 2, true)] {
            let instance = generate(family, size, boxes, 7, fault);

            let start = Instant::now();
            let mut hqs = Session::builder()
                .config(hqs::HqsConfig {
                    budget: Budget::new()
                        .with_timeout(timeout)
                        .with_node_limit(2_000_000),
                    ..hqs::HqsConfig::default()
                })
                .build()
                .expect("valid configuration");
            let hqs_result = hqs.solve(&instance.dqbf);
            let hqs_time = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let mut idq = InstantiationSolver::new();
            idq.set_budget(
                Budget::new()
                    .with_timeout(timeout)
                    .with_node_limit(2_000_000),
            );
            let idq_result: Outcome = idq.solve(&instance.dqbf).into();
            let idq_time = start.elapsed().as_secs_f64();

            if let (Outcome::Unknown(_), _) | (_, Outcome::Unknown(_)) = (hqs_result, idq_result) {
                // fine: limits are expected for the baseline on larger sizes
            } else {
                assert_eq!(hqs_result, idq_result, "solvers must agree");
            }
            println!(
                "{:<28} {:>8} {:>10.4} {:>8} {:>10.4}",
                instance.name,
                outcome(hqs_result),
                hqs_time,
                outcome(idq_result),
                idq_time
            );
        }
    }
    println!(
        "\n('--' marks a timeout/memout; the baseline blows up on the \
         larger instances, as in the paper)"
    );
}
