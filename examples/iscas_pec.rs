//! PEC on a real ISCAS-85 circuit: parse c17 from its `.bench` source,
//! carve two NAND gates out as black boxes, and decide realizability —
//! first against the original circuit (realizable by construction), then
//! against a faulted specification.
//!
//! This is the end-to-end flow a verification engineer would run: a
//! circuit file in, a DQBF verdict (plus a synthesized box) out.
//!
//! ```text
//! cargo run --release --example iscas_pec
//! ```

use hqs::core::skolem::extract_skolem;
use hqs::pec::bench_format::{parse_bench, C17};
use hqs::pec::encode::encode_pec;
use hqs::pec::Signal;
use hqs::{Outcome, Session};

fn main() {
    let c17 = parse_bench(C17).expect("embedded c17 parses");
    println!("parsed c17: {c17:?}");

    // Carve the two gates feeding output 22 (signals of the NAND pairs):
    // pick the first two AND/NOT gate pairs' AND parts.
    let gate_ids: Vec<usize> = c17
        .signals()
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Signal::Gate(_)))
        .map(|(id, _)| id)
        .take(2)
        .collect();
    let incomplete = c17.carve_gates(&gate_ids);
    println!(
        "carved {} gates into black boxes: {incomplete:?}",
        gate_ids.len()
    );

    let dqbf = encode_pec(&c17, &incomplete);
    println!(
        "encoded DQBF: {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );
    let mut session = Session::builder().build().expect("defaults are valid");
    let verdict = session.solve(&dqbf);
    println!("realizable against the original c17? {verdict:?}");
    assert_eq!(verdict, Outcome::Sat);

    // The Skolem certificate is the synthesized replacement logic.
    let certificate = extract_skolem(&dqbf).expect("realizable");
    assert!(certificate.verify(&dqbf));
    println!(
        "synthesized {} box functions (verified certificate)",
        certificate.functions.len()
    );

    // Fault the spec on an output gate the boxes cannot reach.
    let fault_site = *c17.outputs().last().expect("c17 has outputs");
    let faulted = c17.with_fault(fault_site);
    let dqbf = encode_pec(&faulted, &incomplete);
    let verdict = session.solve(&dqbf);
    println!("realizable against a faulted spec? {verdict:?}");
}
