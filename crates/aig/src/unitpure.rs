//! Syntactic unit/pure detection on AIGs (Theorem 6 of the paper).
//!
//! Given a matrix `φ` represented as an AIG with output edge `root`, the
//! traversal classifies every input variable `v` by inspecting the
//! inverter parities of the paths from the input node `n_v` to the output:
//!
//! * a path with **no** negation ⇒ `v` is *positive unit* (`φ → v`),
//! * a path whose only negation sits directly on the edge incident to
//!   `n_v` ⇒ `v` is *negative unit*,
//! * **all** paths carry an even number of negations ⇒ *positive pure*,
//! * **all** paths carry an odd number ⇒ *negative pure*.
//!
//! The check is sufficient but not necessary (see Example 4 of the paper);
//! it runs in `O(|φ| + |V|)`.

use crate::{Aig, AigEdge, AigNode};
use hqs_base::Var;
use std::collections::BTreeMap;

/// Classification of one variable by the syntactic traversal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarStatus {
    /// `φ[0/v]` is unsatisfiable: the variable can be fixed to 1 (if
    /// existential) or decides the formula (if universal).
    PositiveUnit,
    /// `φ[1/v]` is unsatisfiable.
    NegativeUnit,
    /// Every path has even inverter parity: fixing `v := 1` (existential)
    /// or `v := 0` (universal) preserves truth.
    PositivePure,
    /// Every path has odd inverter parity.
    NegativePure,
    /// The traversal could not classify the variable.
    Unknown,
}

/// Result of [`Aig::unit_pure`]: the classified variables.
#[derive(Clone, Debug, Default)]
pub struct UnitPureStatus {
    statuses: BTreeMap<Var, VarStatus>,
}

impl UnitPureStatus {
    /// Returns the classification of `var` (inputs outside the cone are
    /// [`VarStatus::Unknown`]).
    #[must_use]
    pub fn status(&self, var: Var) -> VarStatus {
        self.statuses
            .get(&var)
            .copied()
            .unwrap_or(VarStatus::Unknown)
    }

    /// Iterates over all variables with a non-`Unknown` classification.
    pub fn classified(&self) -> impl Iterator<Item = (Var, VarStatus)> + '_ {
        self.statuses
            .iter()
            .filter(|(_, &s)| s != VarStatus::Unknown)
            .map(|(&v, &s)| (v, s))
    }

    /// Returns `true` if no variable was classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classified().next().is_none()
    }
}

/// Per-node reachability flags during the traversal.
///
/// `clean` — reachable from the root along a path with zero negations;
/// `even` / `odd` — reachable with even/odd negation parity. `clean`
/// implies `even`.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    clean: bool,
    even: bool,
    odd: bool,
}

impl Flags {
    fn merge(&mut self, other: Flags) -> bool {
        let before = *self;
        self.clean |= other.clean;
        self.even |= other.even;
        self.odd |= other.odd;
        *self != before
    }

    fn through_edge(self, complemented: bool) -> Flags {
        if complemented {
            Flags {
                clean: false,
                even: self.odd,
                odd: self.even,
            }
        } else {
            self
        }
    }
}

impl Aig {
    /// Runs the Theorem-6 syntactic unit/pure detection from `root`.
    ///
    /// Unit detection: an input reached by a completely inverter-free path
    /// is positive unit; one whose only inverter is the final edge into the
    /// input is negative unit. Purity: an input is positive (negative) pure
    /// if every path to it has even (odd) parity. Unit status takes
    /// precedence over purity in the returned classification, mirroring the
    /// priority HQS applies when eliminating.
    #[must_use]
    pub fn unit_pure(&self, root: AigEdge) -> UnitPureStatus {
        let num_nodes = self.num_nodes();
        let mut flags: Vec<Flags> = vec![Flags::default(); num_nodes];
        // neg_unit[n]: node n is reached by a complemented edge whose source
        // lies on an otherwise inverter-free path from the root.
        let mut neg_unit = vec![false; num_nodes];
        let root_flags = Flags {
            clean: true,
            even: true,
            odd: false,
        }
        .through_edge(root.is_complemented());
        flags[root.node() as usize] = root_flags;
        if root.is_complemented() {
            neg_unit[root.node() as usize] = true;
        }
        // Worklist propagation until fixpoint; each node's flags can only
        // grow and change at most three times, so this is linear.
        let mut worklist = vec![root.node()];
        while let Some(idx) = worklist.pop() {
            let node_flags = flags[idx as usize];
            if let AigNode::And(f0, f1) = self.nodes_kind(idx) {
                for edge in [f0, f1] {
                    if node_flags.clean && edge.is_complemented() {
                        neg_unit[edge.node() as usize] = true;
                    }
                    let child_flags = node_flags.through_edge(edge.is_complemented());
                    if flags[edge.node() as usize].merge(child_flags) {
                        worklist.push(edge.node());
                    }
                }
            }
        }
        let mut statuses = BTreeMap::new();
        for idx in 0..num_nodes {
            let AigNode::Input(var) = self.nodes_kind(idx as u32) else {
                continue;
            };
            let f = flags[idx];
            if !f.even && !f.odd {
                continue; // not in the cone
            }
            let status = if f.clean {
                VarStatus::PositiveUnit
            } else if neg_unit[idx] {
                VarStatus::NegativeUnit
            } else if f.even && !f.odd {
                VarStatus::PositivePure
            } else if f.odd && !f.even {
                VarStatus::NegativePure
            } else {
                VarStatus::Unknown
            };
            statuses.insert(var, status);
        }
        UnitPureStatus { statuses }
    }

    fn nodes_kind(&self, idx: u32) -> AigNode {
        self.node(AigEdge::new(idx, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_inputs_are_positive_unit() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(x, y);
        let status = aig.unit_pure(f);
        assert_eq!(status.status(Var::new(0)), VarStatus::PositiveUnit);
        assert_eq!(status.status(Var::new(1)), VarStatus::PositiveUnit);
    }

    #[test]
    fn negated_conjunct_is_negative_unit() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(!x, y);
        let status = aig.unit_pure(f);
        assert_eq!(status.status(Var::new(0)), VarStatus::NegativeUnit);
        assert_eq!(status.status(Var::new(1)), VarStatus::PositiveUnit);
    }

    #[test]
    fn disjunction_inputs_are_positive_pure() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.or(x, y);
        // or(x,y) = !(¬x ∧ ¬y): two negations on each path ⇒ even parity,
        // but not clean ⇒ positive pure, not unit.
        let status = aig.unit_pure(f);
        assert_eq!(status.status(Var::new(0)), VarStatus::PositivePure);
        assert_eq!(status.status(Var::new(1)), VarStatus::PositivePure);
    }

    #[test]
    fn negated_disjunct_is_negative_pure() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.or(!x, y);
        let status = aig.unit_pure(f);
        assert_eq!(status.status(Var::new(0)), VarStatus::NegativePure);
    }

    #[test]
    fn xor_input_is_unknown() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.xor(x, y);
        let status = aig.unit_pure(f);
        assert_eq!(status.status(Var::new(0)), VarStatus::Unknown);
        assert_eq!(status.status(Var::new(1)), VarStatus::Unknown);
    }

    #[test]
    fn variable_outside_cone_is_unknown() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let _y = aig.input(Var::new(1));
        let status = aig.unit_pure(x);
        assert_eq!(status.status(Var::new(1)), VarStatus::Unknown);
        assert_eq!(status.status(Var::new(0)), VarStatus::PositiveUnit);
    }

    #[test]
    fn complemented_root_flips_everything() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(x, y);
        // ¬(x ∧ y): paths have one negation ⇒ odd ⇒ negative pure; the
        // negation is not adjacent to the inputs, so not negative unit.
        let status = aig.unit_pure(!f);
        assert_eq!(status.status(Var::new(0)), VarStatus::NegativePure);
        assert_eq!(status.status(Var::new(1)), VarStatus::NegativePure);
    }

    #[test]
    fn root_is_single_input() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let status = aig.unit_pure(x);
        assert_eq!(status.status(Var::new(0)), VarStatus::PositiveUnit);
        let status = aig.unit_pure(!x);
        assert_eq!(status.status(Var::new(0)), VarStatus::NegativeUnit);
    }

    /// Example 4 of the paper, on the CNF of Fig. 1:
    /// φ = (y1∨x1)(y1∨x2)(y2∨¬x1)(y2∨¬x2). With the straightforward AIG
    /// construction, the syntactic check classifies y2 (and y1) as positive
    /// pure but fails for x1 and x2, whose paths have mixed inverter
    /// parity.
    #[test]
    fn paper_example_4_formula() {
        let mut aig = Aig::new();
        let x1 = aig.input(Var::new(0));
        let x2 = aig.input(Var::new(1));
        let y1 = aig.input(Var::new(2));
        let y2 = aig.input(Var::new(3));
        let c1 = aig.and(!y1, !x1); // ¬c1 = y1∨x1
        let c2 = aig.and(!y1, !x2);
        let c3 = aig.and(x1, !y2); // ¬c3 = ¬x1∨y2
        let c4 = aig.and(x2, !y2);
        let left = aig.and(!c1, !c2);
        let right = aig.and(!c3, !c4);
        let phi = aig.and(left, right);
        let status = aig.unit_pure(phi);
        assert_eq!(status.status(Var::new(3)), VarStatus::PositivePure, "y2");
        assert_eq!(status.status(Var::new(2)), VarStatus::PositivePure, "y1");
        assert_eq!(status.status(Var::new(0)), VarStatus::Unknown, "x1");
        assert_eq!(status.status(Var::new(1)), VarStatus::Unknown, "x2");
    }

    /// The incompleteness phenomenon of Example 4: a variable that is
    /// semantically unit can be missed when the AIG structure hides it —
    /// here φ = (y ⊕ x) ⊕ x ≡ y, but the traversal sees mixed parities.
    #[test]
    fn syntactic_check_is_incomplete() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let inner = aig.xor(y, x);
        let phi = aig.xor(inner, x);
        // Semantically φ ≡ y (structural hashing may or may not collapse
        // it; the test only makes sense if it did not).
        if phi != y {
            let status = aig.unit_pure(phi);
            assert_eq!(status.status(Var::new(1)), VarStatus::Unknown);
            // ... even though y is semantically positive unit:
            assert!(!aig.eval(phi, |_| false));
        }
    }

    /// Cross-check the semantic definition (Definition 5) against the
    /// syntactic classification on random small AIGs: syntactic claims must
    /// always be semantically true.
    #[test]
    fn syntactic_implies_semantic() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(0xD51);
        for _ in 0..200 {
            let mut aig = Aig::new();
            let num_vars = 4u32;
            let mut pool: Vec<AigEdge> = (0..num_vars).map(|i| aig.input(Var::new(i))).collect();
            for _ in 0..6 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let a = a.xor_complement(rng.gen_bool(0.5));
                let b = b.xor_complement(rng.gen_bool(0.5));
                pool.push(aig.and(a, b));
            }
            let root = (*pool.last().unwrap()).xor_complement(rng.gen_bool(0.5));
            let status = aig.unit_pure(root);
            for v in 0..num_vars {
                let var = Var::new(v);
                // Truth table of root, cofactors on var.
                let mut f0_any_true = false;
                let mut f1_any_true = false;
                let mut f0_gt_f1 = false; // φ[0/v] ∧ ¬φ[1/v] satisfiable
                let mut f1_gt_f0 = false;
                for bits in 0u32..(1 << num_vars) {
                    if bits >> v & 1 == 1 {
                        continue;
                    }
                    let v0 = aig.eval(root, |w| {
                        if w == var {
                            false
                        } else {
                            bits >> w.index() & 1 == 1
                        }
                    });
                    let v1 = aig.eval(root, |w| {
                        if w == var {
                            true
                        } else {
                            bits >> w.index() & 1 == 1
                        }
                    });
                    f0_any_true |= v0;
                    f1_any_true |= v1;
                    f0_gt_f1 |= v0 && !v1;
                    f1_gt_f0 |= v1 && !v0;
                }
                match status.status(var) {
                    VarStatus::PositiveUnit => assert!(!f0_any_true, "φ[0/v] must be UNSAT"),
                    VarStatus::NegativeUnit => assert!(!f1_any_true, "φ[1/v] must be UNSAT"),
                    VarStatus::PositivePure => assert!(!f0_gt_f1, "φ[0/v]∧¬φ[1/v] must be UNSAT"),
                    VarStatus::NegativePure => assert!(!f1_gt_f0, "φ[1/v]∧¬φ[0/v] must be UNSAT"),
                    VarStatus::Unknown => {}
                }
            }
        }
    }
}
