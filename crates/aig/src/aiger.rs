//! ASCII AIGER (`aag`) reading and writing.
//!
//! The AIGER format (Biere) is the standard interchange format for
//! And-Inverter Graphs in the EDA world; model checkers, synthesis tools
//! and the original aigpp/AIGSOLVE stack all speak it. This module
//! supports the combinational ASCII variant (`aag`, no latches):
//!
//! ```text
//! aag M I L O A
//! <input literal>      (I lines)
//! <output literal>     (O lines)
//! <lhs> <rhs0> <rhs1>  (A lines)
//! [symbol table, comments]
//! ```
//!
//! Literals are `2·index + complement` with literal 0 = FALSE. Variable
//! identities are preserved through the symbol table (`i<k> v<n>` lines),
//! so a round-trip keeps [`Var`] indices intact.

use crate::{Aig, AigEdge, AigNode};
use hqs_base::Var;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing an `aag` document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AigerError {
    /// The `aag` header line is missing or malformed.
    BadHeader,
    /// The file declares latches, which this combinational reader does not
    /// support.
    LatchesUnsupported,
    /// A line could not be parsed as the expected integers.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A literal references an undefined variable or an AND is defined
    /// out of order / twice.
    BadLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending literal.
        literal: u32,
    },
    /// Fewer lines than the header promises.
    UnexpectedEnd,
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::BadHeader => write!(f, "missing or malformed `aag` header"),
            AigerError::LatchesUnsupported => {
                write!(f, "sequential AIGER (latches) is not supported")
            }
            AigerError::BadLine { line } => write!(f, "line {line}: malformed"),
            AigerError::BadLiteral { line, literal } => {
                write!(f, "line {line}: invalid literal {literal}")
            }
            AigerError::UnexpectedEnd => write!(f, "unexpected end of file"),
        }
    }
}

impl std::error::Error for AigerError {}

impl Aig {
    /// Renders the cones of `outputs` as an ASCII AIGER document.
    ///
    /// Inputs appear in ascending [`Var`] order; the symbol table records
    /// the original variable index of every input so
    /// [`Aig::parse_aag`] reconstructs identical [`Var`]s.
    #[must_use]
    pub fn write_aag(&self, outputs: &[AigEdge]) -> String {
        // Collect the union cone in topological order.
        let mut inputs: Vec<Var> = Vec::new();
        let mut ands: Vec<u32> = Vec::new();
        let mut seen = vec![false; self.num_nodes()];
        for &output in outputs {
            for idx in self.topo_order(output) {
                if std::mem::replace(&mut seen[idx as usize], true) {
                    continue;
                }
                match self.node(AigEdge::new(idx, false)) {
                    AigNode::True => {}
                    AigNode::Input(v) => inputs.push(v),
                    AigNode::And(_, _) => ands.push(idx),
                }
            }
        }
        inputs.sort_unstable();
        // AIGER literal of each of our nodes.
        let mut literal: HashMap<u32, u32> = HashMap::new();
        let mut next_index = 1u32;
        for &var in &inputs {
            let idx = self.input_node_index(var).expect("input in cone");
            literal.insert(idx, 2 * next_index);
            next_index += 1;
        }
        for &idx in &ands {
            literal.insert(idx, 2 * next_index);
            next_index += 1;
        }
        let edge_lit = |edge: AigEdge| -> u32 {
            let base = if edge.node() == 0 {
                1 // TRUE node: literal 1 is ¬FALSE
            } else {
                literal[&edge.node()]
            };
            // For the constant node, complement flips 1 → 0.
            if edge.node() == 0 {
                base ^ u32::from(edge.is_complemented())
            } else {
                base | u32::from(edge.is_complemented())
            }
        };
        let mut out = String::new();
        let max_index = next_index - 1;
        let _ = writeln!(
            out,
            "aag {} {} 0 {} {}",
            max_index,
            inputs.len(),
            outputs.len(),
            ands.len()
        );
        for (k, _) in inputs.iter().enumerate() {
            let _ = writeln!(out, "{}", 2 * (k as u32 + 1));
        }
        for &output in outputs {
            let _ = writeln!(out, "{}", edge_lit(output));
        }
        for &idx in &ands {
            let AigNode::And(f0, f1) = self.node(AigEdge::new(idx, false)) else {
                unreachable!("collected AND nodes only");
            };
            let _ = writeln!(out, "{} {} {}", literal[&idx], edge_lit(f0), edge_lit(f1));
        }
        for (k, var) in inputs.iter().enumerate() {
            let _ = writeln!(out, "i{k} v{}", var.index());
        }
        out.push_str("c\ngenerated by hqs-aig\n");
        out
    }

    /// Parses an ASCII AIGER document; returns the manager and the output
    /// edges. Input symbols of the form `v<n>` restore the original
    /// variable indices; inputs without such a symbol get fresh indices
    /// after the largest symbolic one.
    ///
    /// # Errors
    ///
    /// Returns an [`AigerError`] for malformed input or sequential files.
    pub fn parse_aag(text: &str) -> Result<(Aig, Vec<AigEdge>), AigerError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(AigerError::BadHeader)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("aag") {
            return Err(AigerError::BadHeader);
        }
        let nums: Vec<u32> = parts
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| AigerError::BadHeader)?;
        let [_m, i, l, o, a] = nums.as_slice() else {
            return Err(AigerError::BadHeader);
        };
        if *l != 0 {
            return Err(AigerError::LatchesUnsupported);
        }
        let mut input_literals = Vec::with_capacity(*i as usize);
        for _ in 0..*i {
            let (line_no, line) = lines.next().ok_or(AigerError::UnexpectedEnd)?;
            let lit: u32 = line
                .trim()
                .parse()
                .map_err(|_| AigerError::BadLine { line: line_no + 1 })?;
            if lit < 2 || !lit.is_multiple_of(2) {
                return Err(AigerError::BadLiteral {
                    line: line_no + 1,
                    literal: lit,
                });
            }
            input_literals.push(lit);
        }
        let mut output_literals = Vec::with_capacity(*o as usize);
        for _ in 0..*o {
            let (line_no, line) = lines.next().ok_or(AigerError::UnexpectedEnd)?;
            let lit: u32 = line
                .trim()
                .parse()
                .map_err(|_| AigerError::BadLine { line: line_no + 1 })?;
            output_literals.push(lit);
        }
        let mut and_defs = Vec::with_capacity(*a as usize);
        for _ in 0..*a {
            let (line_no, line) = lines.next().ok_or(AigerError::UnexpectedEnd)?;
            let nums: Vec<u32> = line
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|_| AigerError::BadLine { line: line_no + 1 })?;
            let [lhs, rhs0, rhs1] = nums.as_slice() else {
                return Err(AigerError::BadLine { line: line_no + 1 });
            };
            and_defs.push((line_no + 1, *lhs, *rhs0, *rhs1));
        }
        // Symbol table: `i<k> v<n>` lines rename inputs.
        let mut symbols: HashMap<usize, u32> = HashMap::new();
        for (_, line) in lines {
            if line == "c" {
                break;
            }
            if let Some(rest) = line.strip_prefix('i') {
                let mut halves = rest.split_whitespace();
                if let (Some(k), Some(name)) = (halves.next(), halves.next()) {
                    if let (Ok(k), Some(n)) = (
                        k.parse::<usize>(),
                        name.strip_prefix('v').and_then(|s| s.parse::<u32>().ok()),
                    ) {
                        symbols.insert(k, n);
                    }
                }
            }
        }
        // Build.
        let mut aig = Aig::new();
        let mut by_literal: HashMap<u32, AigEdge> = HashMap::new();
        let max_symbol = symbols.values().copied().max().map_or(0, |m| m + 1);
        let mut fresh = max_symbol;
        for (k, &lit) in input_literals.iter().enumerate() {
            let var = match symbols.get(&k) {
                Some(&n) => Var::new(n),
                None => {
                    let v = Var::new(fresh);
                    fresh += 1;
                    v
                }
            };
            by_literal.insert(lit, aig.input(var));
        }
        let resolve = |by_literal: &HashMap<u32, AigEdge>, lit: u32, line: usize| {
            if lit < 2 {
                return Ok(AigEdge::TRUE.xor_complement(lit == 0));
            }
            by_literal
                .get(&(lit & !1))
                .map(|&e| e.xor_complement(lit & 1 == 1))
                .ok_or(AigerError::BadLiteral { line, literal: lit })
        };
        for (line, lhs, rhs0, rhs1) in and_defs {
            if lhs % 2 != 0 || by_literal.contains_key(&lhs) {
                return Err(AigerError::BadLiteral { line, literal: lhs });
            }
            let e0 = resolve(&by_literal, rhs0, line)?;
            let e1 = resolve(&by_literal, rhs1, line)?;
            let edge = aig.and(e0, e1);
            by_literal.insert(lhs, edge);
        }
        let outputs = output_literals
            .iter()
            .map(|&lit| resolve(&by_literal, lit, 0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((aig, outputs))
    }

    /// Returns the node index of the input labelled `var`, if present.
    fn input_node_index(&self, var: Var) -> Option<u32> {
        (0..self.num_nodes() as u32).find(
            |&idx| matches!(self.node(AigEdge::new(idx, false)), AigNode::Input(v) if v == var),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(aig: &Aig, outputs: &[AigEdge], num_vars: u32) {
        let text = aig.write_aag(outputs);
        let (parsed, parsed_outputs) = Aig::parse_aag(&text).expect("own output parses");
        assert_eq!(parsed_outputs.len(), outputs.len());
        for bits in 0u32..(1 << num_vars) {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            for (k, (&orig, &back)) in outputs.iter().zip(&parsed_outputs).enumerate() {
                assert_eq!(
                    aig.eval(orig, val),
                    parsed.eval(back, val),
                    "output {k}, bits {bits:b}\n{text}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_simple_functions() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let z = aig.input(Var::new(2));
        let f = aig.mux(x, y, z);
        let g = aig.xor(f, x);
        check_roundtrip(&aig, &[f, g, !f], 3);
    }

    #[test]
    fn roundtrip_constants_and_inputs() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(4));
        check_roundtrip(&aig, &[Aig::TRUE, Aig::FALSE, x, !x], 5);
    }

    #[test]
    fn symbols_preserve_variable_identity() {
        let mut aig = Aig::new();
        let a = aig.input(Var::new(7));
        let b = aig.input(Var::new(3));
        let f = aig.and(a, b);
        let text = aig.write_aag(&[f]);
        let (parsed, outputs) = Aig::parse_aag(&text).unwrap();
        let support = parsed.support(outputs[0]);
        assert!(support.contains(Var::new(7)));
        assert!(support.contains(Var::new(3)));
        assert_eq!(support.len(), 2);
    }

    #[test]
    fn parses_reference_document() {
        // The classic AIGER and-gate example: o = i1 ∧ i2.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let (aig, outputs) = Aig::parse_aag(text).unwrap();
        assert_eq!(outputs.len(), 1);
        let support = aig.support(outputs[0]);
        assert_eq!(support.len(), 2);
        // No symbols: fresh vars 0, 1.
        assert!(aig.eval(outputs[0], |_| true));
        assert!(!aig.eval(outputs[0], |v| v.index() == 0));
    }

    #[test]
    fn error_cases() {
        assert_eq!(Aig::parse_aag("").unwrap_err(), AigerError::BadHeader);
        assert_eq!(
            Aig::parse_aag("aig 1 1 0 0 0\n").unwrap_err(),
            AigerError::BadHeader
        );
        assert_eq!(
            Aig::parse_aag("aag 1 0 1 0 0\n").unwrap_err(),
            AigerError::LatchesUnsupported
        );
        assert_eq!(
            Aig::parse_aag("aag 1 1 0 0 0\n").unwrap_err(),
            AigerError::UnexpectedEnd
        );
        assert_eq!(
            Aig::parse_aag("aag 1 1 0 0 0\n3\n").unwrap_err(),
            AigerError::BadLiteral {
                line: 2,
                literal: 3
            }
        );
        // AND referencing an undefined literal.
        assert!(matches!(
            Aig::parse_aag("aag 2 1 0 0 1\n2\n4 6 2\n"),
            Err(AigerError::BadLiteral { .. })
        ));
    }

    #[test]
    fn negated_output_of_constant() {
        let aig = Aig::new();
        let text = aig.write_aag(&[Aig::FALSE]);
        let (parsed, outputs) = Aig::parse_aag(&text).unwrap();
        assert!(!parsed.eval(outputs[0], |_| false));
    }
}
