//! 64-bit parallel random simulation.
//!
//! Each input variable is assigned a 64-bit pattern word; one sweep then
//! evaluates every node of a cone on 64 input vectors at once. Signatures
//! are the cheap necessary condition for functional equivalence used by the
//! SAT sweeper ([`Aig::fraig`](crate::Aig::fraig)).

use crate::{Aig, AigEdge, AigNode};
use hqs_base::Rng;
use hqs_base::Var;
use std::collections::HashMap;

impl Aig {
    /// Simulates the cone of `root` on the given input patterns.
    ///
    /// `patterns` maps each input variable to a 64-bit word; missing
    /// variables default to all-zero. Returns the signature of `root`
    /// (bit `i` is the value of the function on input vector `i`).
    #[must_use]
    pub fn simulate(&self, root: AigEdge, patterns: &HashMap<Var, u64>) -> u64 {
        let order = self.topo_order(root);
        let mut signatures: HashMap<u32, u64> = HashMap::with_capacity(order.len());
        for idx in order {
            let signature = match self.node(AigEdge::new(idx, false)) {
                AigNode::True => u64::MAX,
                AigNode::Input(var) => patterns.get(&var).copied().unwrap_or(0),
                AigNode::And(f0, f1) => {
                    let s0 = signatures[&f0.node()] ^ complement_mask(f0);
                    let s1 = signatures[&f1.node()] ^ complement_mask(f1);
                    s0 & s1
                }
            };
            signatures.insert(idx, signature);
        }
        signatures[&root.node()] ^ complement_mask(root)
    }

    /// Simulates every node of the cone of `root` on random patterns and
    /// returns per-node signatures (uncomplemented node functions).
    ///
    /// The returned map is keyed by node index. Deterministic in `seed`.
    #[must_use]
    pub fn simulate_random(&self, root: AigEdge, seed: u64) -> HashMap<u32, u64> {
        let mut rng = Rng::seed_from_u64(seed);
        let order = self.topo_order(root);
        let mut signatures: HashMap<u32, u64> = HashMap::with_capacity(order.len());
        for idx in order {
            let signature = match self.node(AigEdge::new(idx, false)) {
                AigNode::True => u64::MAX,
                AigNode::Input(_) => rng.next_u64(),
                AigNode::And(f0, f1) => {
                    let s0 = signatures[&f0.node()] ^ complement_mask(f0);
                    let s1 = signatures[&f1.node()] ^ complement_mask(f1);
                    s0 & s1
                }
            };
            signatures.insert(idx, signature);
        }
        signatures
    }
}

#[inline]
fn complement_mask(edge: AigEdge) -> u64 {
    if edge.is_complemented() {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_eval_bitwise() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let z = aig.input(Var::new(2));
        let f = aig.mux(x, y, z);
        let g = aig.xor(f, z);
        // Exhaustive 8 patterns in the low bits.
        let mut patterns = HashMap::new();
        for (i, var) in [Var::new(0), Var::new(1), Var::new(2)].iter().enumerate() {
            let mut word = 0u64;
            for bits in 0u64..8 {
                if bits >> i & 1 == 1 {
                    word |= 1 << bits;
                }
            }
            patterns.insert(*var, word);
        }
        let signature = aig.simulate(g, &patterns);
        for bits in 0u64..8 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            let expected = aig.eval(g, val);
            assert_eq!(signature >> bits & 1 == 1, expected, "pattern {bits:03b}");
        }
    }

    #[test]
    fn constant_signatures() {
        let aig = Aig::new();
        assert_eq!(aig.simulate(Aig::TRUE, &HashMap::new()), u64::MAX);
        assert_eq!(aig.simulate(Aig::FALSE, &HashMap::new()), 0);
    }

    #[test]
    fn random_simulation_is_deterministic() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.or(x, y);
        let s1 = aig.simulate_random(f, 42);
        let s2 = aig.simulate_random(f, 42);
        assert_eq!(s1, s2);
    }

    #[test]
    fn equivalent_nodes_share_signatures() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        // Build or(x,y) twice with different structure so hashing cannot
        // collapse them: or(x,y) and ¬(¬y∧¬x) hash identically after operand
        // normalisation, so vary: mux(x, TRUE, y) = x ∨ y.
        let f = aig.or(x, y);
        let g = aig.mux(x, Aig::TRUE, y);
        let root = aig.and(f, g); // keep both cones alive
        let sigs = aig.simulate_random(root, 7);
        let sf = sigs[&f.node()] ^ complement_mask(f);
        let sg = sigs[&g.node()] ^ complement_mask(g);
        assert_eq!(sf, sg);
    }
}
