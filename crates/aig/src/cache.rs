//! A cross-session FRAIG cache: canonical cone snapshots that outlive
//! any single [`Aig`] manager.
//!
//! FRAIG sweeps are the most expensive rewrites in the pipeline (each
//! merge candidate is a SAT call). A long-lived server sees the same
//! cones again and again — re-solves of the same formula, shared gate
//! structure across a family of instances — so the reduced result is
//! worth keeping after the session's `Aig` is gone.
//!
//! Both the key and the value are *canonical encodings* of a cone:
//! nodes renumbered densely in topological order, inputs identified by
//! their [`Var`] label, AND fanins by canonical index plus complement
//! bit. The encoding is independent of the arena indices of the manager
//! the cone lives in, so a snapshot taken in one session replays
//! exactly in another. Keys are the full encoding (not a hash), so a
//! lookup can never confuse two different functions — a cache hit
//! replays a cone that was *proven* equivalent when it was stored.

use crate::{Aig, AigEdge, AigNode};
use hqs_base::{ByteBudgetLru, CacheStatsSnapshot, Var};
use hqs_obs::Metric;

/// The canonical encoding of a cone, used both as cache key (the
/// pre-sweep cone) and as cache value (the reduced cone).
///
/// `nodes[i]` defines canonical node `i + 1`; canonical node 0 is the
/// constant TRUE. Edge codes are `canonical_index * 2 + complement`,
/// so code 0 is TRUE and code 1 is FALSE.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConeSnapshot {
    nodes: Vec<SnapNode>,
    root: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SnapNode {
    Input(Var),
    And(u32, u32),
}

impl ConeSnapshot {
    /// Approximate heap footprint, charged against the cache budget.
    fn cost_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.len() * std::mem::size_of::<SnapNode>()
    }
}

/// A byte-budgeted cache of FRAIG results, shared across sessions.
///
/// Clone an [`std::sync::Arc`]`<FraigCache>` into every session's `Aig`
/// via [`Aig::set_fraig_cache`]; [`Aig::fraig`] then consults it before
/// sweeping and stores the reduced cone afterwards.
#[derive(Debug)]
pub struct FraigCache {
    lru: ByteBudgetLru<ConeSnapshot, ConeSnapshot>,
}

impl FraigCache {
    /// Creates a cache bounded by `budget_bytes` of snapshot data.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        FraigCache {
            lru: ByteBudgetLru::new(budget_bytes),
        }
    }

    /// Hit/miss/eviction counters and current occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        self.lru.stats()
    }

    /// Drops every entry (counters are retained).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

impl Aig {
    /// Attaches (or detaches) a shared cross-session FRAIG cache;
    /// [`Aig::fraig`] consults it transparently.
    pub fn set_fraig_cache(&mut self, cache: Option<std::sync::Arc<FraigCache>>) {
        self.fraig_cache = cache;
    }

    /// Canonically encodes the cone of `root`: nodes densely renumbered
    /// in topological order, independent of this manager's arena
    /// indices.
    pub(crate) fn snapshot_cone(&self, root: AigEdge) -> ConeSnapshot {
        let order = self.topo_order(root);
        // Arena index -> canonical edge code of the uncomplemented node.
        let mut canon = std::collections::HashMap::with_capacity(order.len());
        let mut nodes = Vec::with_capacity(order.len());
        for idx in order {
            match self.nodes[idx as usize] {
                AigNode::True => {
                    canon.insert(idx, 0u32);
                }
                AigNode::Input(var) => {
                    nodes.push(SnapNode::Input(var));
                    canon.insert(idx, nodes.len() as u32 * 2);
                }
                AigNode::And(f0, f1) => {
                    // Indexing is safe: topo order lists fanins before fanouts.
                    let c0 = canon[&f0.node()] | u32::from(f0.is_complemented());
                    let c1 = canon[&f1.node()] | u32::from(f1.is_complemented());
                    nodes.push(SnapNode::And(c0, c1));
                    canon.insert(idx, nodes.len() as u32 * 2);
                }
            }
        }
        // Indexing is safe: the root's node is always in its own cone.
        let root_code = canon[&root.node()] | u32::from(root.is_complemented());
        ConeSnapshot {
            nodes,
            root: root_code,
        }
    }

    /// Rebuilds a snapshot inside this manager, returning the root edge.
    /// Construction goes through [`Aig::and`], so structural hashing and
    /// the simplification rules apply as usual.
    pub(crate) fn replay_snapshot(&mut self, snap: &ConeSnapshot) -> AigEdge {
        let mut edges: Vec<AigEdge> = Vec::with_capacity(snap.nodes.len() + 1);
        edges.push(AigEdge::TRUE);
        for node in &snap.nodes {
            let edge = match *node {
                SnapNode::Input(var) => self.input(var),
                SnapNode::And(c0, c1) => {
                    let a = decode(&edges, c0);
                    let b = decode(&edges, c1);
                    self.and(a, b)
                }
            };
            edges.push(edge);
        }
        decode(&edges, snap.root)
    }

    /// The cache consult in front of a sweep: `Some(edge)` replays a
    /// stored reduced cone, `None` means the caller must sweep cold
    /// (and should then call [`Aig::fraig_cache_store`]).
    pub(crate) fn fraig_cache_lookup(&mut self, key: &ConeSnapshot) -> Option<AigEdge> {
        let cache = self.fraig_cache.as_ref()?;
        match cache.lru.get(key) {
            Some(reduced) => {
                self.obs.add(Metric::FraigCacheHits, 1);
                Some(self.replay_snapshot(&reduced))
            }
            None => {
                self.obs.add(Metric::FraigCacheMisses, 1);
                None
            }
        }
    }

    /// Stores the reduced cone for `key` after a cold sweep.
    pub(crate) fn fraig_cache_store(&mut self, key: ConeSnapshot, reduced: AigEdge) {
        let Some(cache) = self.fraig_cache.as_ref() else {
            return;
        };
        let value = self.snapshot_cone(reduced);
        let cost = key.cost_bytes() + value.cost_bytes();
        let evictions_before = cache.lru.stats().evictions;
        cache.lru.insert(key, value, cost);
        let evicted = cache.lru.stats().evictions - evictions_before;
        if evicted > 0 {
            self.obs.add(Metric::CacheEvictions, evicted);
        }
    }
}

#[inline]
fn decode(edges: &[AigEdge], code: u32) -> AigEdge {
    // Indexing is safe: codes reference earlier snapshot positions.
    edges[(code / 2) as usize].xor_complement(code & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn check_equiv(aig: &Aig, a: AigEdge, b: AigEdge, num_vars: u32) {
        for bits in 0u32..(1 << num_vars) {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(a, val), aig.eval(b, val), "bits {bits:b}");
        }
    }

    fn build_redundant_cone(aig: &mut Aig) -> AigEdge {
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        // or(x, y) and mux(x, TRUE, y) are structurally different but equal.
        let f = aig.or(x, y);
        let g = aig.mux(x, Aig::TRUE, y);
        aig.and(f, g)
    }

    #[test]
    fn snapshot_round_trips_into_a_fresh_manager() {
        let mut a = Aig::new();
        let root = build_redundant_cone(&mut a);
        let snap = a.snapshot_cone(root);
        let mut b = Aig::new();
        let replayed = b.replay_snapshot(&snap);
        for bits in 0u32..4 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(a.eval(root, val), b.eval(replayed, val));
        }
    }

    #[test]
    fn snapshot_is_arena_independent() {
        // The same cone built after unrelated garbage must encode
        // identically — that is what makes it a cross-session key.
        let mut a = Aig::new();
        let root_a = build_redundant_cone(&mut a);
        let mut b = Aig::new();
        let z = b.input(Var::new(7));
        let w = b.input(Var::new(8));
        let _garbage = b.xor(z, w);
        let root_b = build_redundant_cone(&mut b);
        assert_eq!(a.snapshot_cone(root_a), b.snapshot_cone(root_b));
    }

    #[test]
    fn second_session_hits_the_cache_and_preserves_the_function() {
        let cache = Arc::new(FraigCache::new(1 << 20));

        let mut first = Aig::new();
        first.set_fraig_cache(Some(Arc::clone(&cache)));
        let root1 = build_redundant_cone(&mut first);
        let reduced1 = first.fraig(root1, 11, 1000);
        check_equiv(&first, root1, reduced1, 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(s.entries, 1);

        // A brand-new manager (fresh session) on the same cone.
        let mut second = Aig::new();
        second.set_fraig_cache(Some(Arc::clone(&cache)));
        let root2 = build_redundant_cone(&mut second);
        let reduced2 = second.fraig(root2, 99, 1000);
        check_equiv(&second, root2, reduced2, 2);
        assert!(second.cone_size(reduced2) <= 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn constant_and_input_roots_bypass_the_cache() {
        let cache = Arc::new(FraigCache::new(1 << 20));
        let mut aig = Aig::new();
        aig.set_fraig_cache(Some(Arc::clone(&cache)));
        let x = aig.input(Var::new(0));
        assert_eq!(aig.fraig(Aig::TRUE, 0, 10), Aig::TRUE);
        assert_eq!(aig.fraig(x, 0, 10), x);
        assert_eq!(aig.fraig(!x, 0, 10), !x);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn tiny_budget_evicts_old_cones() {
        let cache = Arc::new(FraigCache::new(200));
        let mut aig = Aig::new();
        aig.set_fraig_cache(Some(Arc::clone(&cache)));
        // Distinct cones, each a few dozen snapshot bytes: the budget
        // cannot hold all of them.
        let mut roots = Vec::new();
        for i in 0..6u32 {
            let a = aig.input(Var::new(2 * i));
            let b = aig.input(Var::new(2 * i + 1));
            let f = aig.or(a, b);
            let g = aig.mux(a, Aig::TRUE, b);
            roots.push(aig.and(f, g));
        }
        for &r in &roots {
            let _ = aig.fraig(r, 5, 100);
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "{s:?}");
        assert!(s.bytes <= 200, "{s:?}");
    }
}
