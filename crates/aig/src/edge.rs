//! AIG edges: node references with a complement bit.

use std::fmt;

/// A reference to an AIG node, possibly complemented.
///
/// Encoded as `node_index << 1 | complement`. Node 0 is the constant-true
/// node, so [`AigEdge::TRUE`] has code 0 and [`AigEdge::FALSE`] code 1.
///
/// # Examples
///
/// ```
/// use hqs_aig::AigEdge;
/// let t = AigEdge::TRUE;
/// assert_eq!(!t, AigEdge::FALSE);
/// assert!(AigEdge::FALSE.is_complemented());
/// assert_eq!(t.node(), AigEdge::FALSE.node());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigEdge(u32);

impl AigEdge {
    /// The constant-true function.
    pub const TRUE: AigEdge = AigEdge(0);
    /// The constant-false function.
    pub const FALSE: AigEdge = AigEdge(1);

    /// Creates an edge to `node`, complemented if `complement` is set.
    #[inline]
    #[must_use]
    pub fn new(node: u32, complement: bool) -> Self {
        AigEdge(node << 1 | u32::from(complement))
    }

    /// Returns the referenced node index.
    #[inline]
    #[must_use]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Returns `true` if the edge carries an inverter.
    #[inline]
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the dense code `node << 1 | complement`.
    #[inline]
    #[must_use]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns this edge with an extra complement applied if `flip`.
    #[inline]
    #[must_use]
    pub fn xor_complement(self, flip: bool) -> Self {
        AigEdge(self.0 ^ u32::from(flip))
    }

    /// Returns the uncomplemented edge to the same node.
    #[inline]
    #[must_use]
    pub fn regular(self) -> Self {
        AigEdge(self.0 & !1)
    }

    /// Returns `true` if this edge denotes a constant function.
    #[inline]
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for AigEdge {
    type Output = AigEdge;

    #[inline]
    fn not(self) -> AigEdge {
        AigEdge(self.0 ^ 1)
    }
}

impl fmt::Debug for AigEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigEdge::TRUE {
            write!(f, "⊤")
        } else if *self == AigEdge::FALSE {
            write!(f, "⊥")
        } else if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(AigEdge::TRUE.node(), 0);
        assert_eq!(AigEdge::FALSE.node(), 0);
        assert!(!AigEdge::TRUE.is_complemented());
        assert!(AigEdge::FALSE.is_complemented());
        assert!(AigEdge::TRUE.is_constant() && AigEdge::FALSE.is_constant());
    }

    #[test]
    fn complement_involution() {
        let e = AigEdge::new(7, false);
        assert_eq!(!!e, e);
        assert_ne!(!e, e);
        assert_eq!((!e).node(), e.node());
    }

    #[test]
    fn xor_and_regular() {
        let e = AigEdge::new(3, true);
        assert_eq!(e.xor_complement(true), AigEdge::new(3, false));
        assert_eq!(e.xor_complement(false), e);
        assert_eq!(e.regular(), AigEdge::new(3, false));
    }
}
