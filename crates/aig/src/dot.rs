//! Graphviz DOT export for debugging and documentation.
//!
//! Renders an AIG cone in the visual convention of the paper's Fig. 1:
//! AND gates as circles, inputs as boxes, inverters as filled dots on the
//! edges (here: dashed edges).

use crate::{Aig, AigEdge, AigNode};
use std::fmt::Write as _;

impl Aig {
    /// Renders the cones of `outputs` as a Graphviz `digraph`.
    ///
    /// Complemented edges are dashed and labelled `¬`; output arrows come
    /// from a synthetic `out<k>` node each.
    #[must_use]
    pub fn to_dot(&self, outputs: &[AigEdge]) -> String {
        let mut out = String::from("digraph aig {\n  rankdir=BT;\n");
        let mut seen = vec![false; self.num_nodes()];
        for &output in outputs {
            for idx in self.topo_order(output) {
                if std::mem::replace(&mut seen[idx as usize], true) {
                    continue;
                }
                match self.node(AigEdge::new(idx, false)) {
                    AigNode::True => {
                        let _ = writeln!(out, "  n{idx} [shape=box,label=\"1\"];");
                    }
                    AigNode::Input(v) => {
                        let _ = writeln!(out, "  n{idx} [shape=box,label=\"{v}\"];");
                    }
                    AigNode::And(f0, f1) => {
                        let _ = writeln!(out, "  n{idx} [shape=circle,label=\"∧\"];");
                        for fanin in [f0, f1] {
                            let style = if fanin.is_complemented() {
                                " [style=dashed,label=\"¬\"]"
                            } else {
                                ""
                            };
                            let _ = writeln!(out, "  n{} -> n{idx}{style};", fanin.node());
                        }
                    }
                }
            }
        }
        for (k, output) in outputs.iter().enumerate() {
            let _ = writeln!(out, "  out{k} [shape=plaintext,label=\"f{k}\"];");
            let style = if output.is_complemented() {
                " [style=dashed,label=\"¬\"]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} -> out{k}{style};", output.node());
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Var;

    #[test]
    fn dot_contains_all_cone_nodes_and_edges() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(x, !y);
        let dot = aig.to_dot(&[!f]);
        assert!(dot.starts_with("digraph aig {"));
        assert!(dot.contains("shape=box,label=\"v0\""));
        assert!(dot.contains("shape=box,label=\"v1\""));
        assert!(dot.contains("shape=circle"));
        // Two dashed edges: ¬y fanin and the complemented output.
        assert_eq!(dot.matches("style=dashed").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn constant_output() {
        let aig = Aig::new();
        let dot = aig.to_dot(&[Aig::FALSE]);
        assert!(dot.contains("label=\"1\""));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn shared_nodes_emitted_once() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(x, y);
        let g = aig.or(f, x);
        let dot = aig.to_dot(&[f, g]);
        assert_eq!(dot.matches("label=\"v0\"").count(), 1);
    }
}
