//! SAT-sweeping functional reduction (FRAIG-style).
//!
//! A FRAIG (functionally reduced AIG, Mishchenko et al.) keeps at most one
//! node per Boolean function (up to complement). HQS converts AIGs to
//! FRAIGs "from time to time" to keep the matrix small across
//! eliminations. [`Aig::fraig`] rebuilds a cone bottom-up, groups nodes by
//! random-simulation signature, and proves candidate equivalences with the
//! CDCL solver; proven-equivalent nodes are merged.

use crate::{Aig, AigEdge, AigNode};
use hqs_base::Rng;
use hqs_base::Var;
use hqs_obs::Metric;
use std::collections::HashMap;

/// Maximum number of same-signature candidates to try proving against
/// before giving up on a node (guards against quadratic blowup on long
/// signature-collision chains).
const MAX_CANDIDATES: usize = 4;

impl Aig {
    /// Functionally reduces the cone of `root`, returning an equivalent
    /// (often smaller) edge.
    ///
    /// `seed` drives the simulation patterns; `conflict_budget` bounds each
    /// equivalence SAT query (queries that exceed it are conservatively
    /// treated as "not equivalent", which preserves soundness).
    ///
    /// With a [`crate::FraigCache`] attached
    /// ([`Aig::set_fraig_cache`]), a cone swept before — in *any*
    /// session sharing the cache — replays its stored reduced form
    /// instead of re-running the SAT sweep.
    pub fn fraig(&mut self, root: AigEdge, seed: u64, conflict_budget: u64) -> AigEdge {
        // Constant and bare-input roots reduce trivially; caching them
        // would only churn the budget.
        let cache_key = if self.fraig_cache.is_some() && matches!(self.node(root), AigNode::And(..))
        {
            let key = self.snapshot_cone(root);
            if let Some(reduced) = self.fraig_cache_lookup(&key) {
                return reduced;
            }
            Some(key)
        } else {
            None
        };
        let reduced = self.fraig_sweep(root, seed, conflict_budget);
        if let Some(key) = cache_key {
            self.fraig_cache_store(key, reduced);
        }
        reduced
    }

    /// The cold SAT sweep behind [`Aig::fraig`].
    fn fraig_sweep(&mut self, root: AigEdge, seed: u64, conflict_budget: u64) -> AigEdge {
        self.obs.add(Metric::FraigSweeps, 1);
        let order = self.topo_order(root);
        let mut rng = Rng::seed_from_u64(seed);
        let mut patterns: HashMap<Var, u64> = HashMap::new();
        for &idx in &order {
            if let AigNode::Input(var) = self.node(AigEdge::new(idx, false)) {
                patterns.insert(var, rng.next_u64());
            }
        }
        let first_aux = self
            .support(root)
            .iter()
            .map(|v| v.bound())
            .max()
            .unwrap_or(0);

        // old node -> new edge, and signature of every new node index.
        let mut remap: HashMap<u32, AigEdge> = HashMap::new();
        let mut new_sigs: HashMap<u32, u64> = HashMap::new();
        new_sigs.insert(AigEdge::TRUE.node(), u64::MAX);
        // signature (normalised to lsb 0) -> representatives.
        let mut classes: HashMap<u64, Vec<AigEdge>> = HashMap::new();

        for idx in order {
            let new_edge = match self.node(AigEdge::new(idx, false)) {
                AigNode::True => AigEdge::TRUE,
                AigNode::Input(var) => {
                    let edge = self.input(var);
                    let sig = patterns[&var];
                    new_sigs.insert(edge.node(), sig);
                    // Register the input as a representative so AND nodes
                    // that collapse to a single input can merge with it.
                    let flipped = sig & 1 == 1;
                    classes
                        .entry(if flipped { !sig } else { sig })
                        .or_default()
                        .push(edge.xor_complement(flipped));
                    edge
                }
                AigNode::And(f0, f1) => {
                    let m0 = remap[&f0.node()].xor_complement(f0.is_complemented());
                    let m1 = remap[&f1.node()].xor_complement(f1.is_complemented());
                    let candidate = self.and(m0, m1);
                    let sig = edge_sig(&new_sigs, m0) & edge_sig(&new_sigs, m1);
                    let node_sig = sig ^ complement_mask(candidate);
                    new_sigs.entry(candidate.node()).or_insert(node_sig);
                    self.merge_with_class(candidate, sig, &mut classes, first_aux, conflict_budget)
                }
            };
            remap.insert(idx, new_edge);
        }
        remap[&root.node()].xor_complement(root.is_complemented())
    }

    /// Tries to replace `candidate` (with signature `sig`) by an
    /// already-seen representative of the same function.
    fn merge_with_class(
        &mut self,
        candidate: AigEdge,
        sig: u64,
        classes: &mut HashMap<u64, Vec<AigEdge>>,
        first_aux: u32,
        conflict_budget: u64,
    ) -> AigEdge {
        if candidate.is_constant() {
            return candidate;
        }
        // Constant-signature nodes: try proving them constant outright.
        if sig == 0 && self.prove_equivalent(candidate, AigEdge::FALSE, first_aux, conflict_budget)
        {
            self.obs.add(Metric::FraigMerges, 1);
            return AigEdge::FALSE;
        }
        if sig == u64::MAX
            && self.prove_equivalent(candidate, AigEdge::TRUE, first_aux, conflict_budget)
        {
            self.obs.add(Metric::FraigMerges, 1);
            return AigEdge::TRUE;
        }
        let normalised = if sig & 1 == 1 { !sig } else { sig };
        let flipped = sig & 1 == 1;
        let bucket = classes.entry(normalised).or_default();
        for &rep in bucket.iter().take(MAX_CANDIDATES) {
            let rep_adjusted = rep.xor_complement(flipped);
            if rep_adjusted == candidate {
                return candidate;
            }
            if self.prove_equivalent(candidate, rep_adjusted, first_aux, conflict_budget) {
                self.obs.add(Metric::FraigMerges, 1);
                return rep_adjusted;
            }
        }
        bucket.push(candidate.xor_complement(flipped));
        candidate
    }

    /// SAT-checks `a ≡ b`; `true` only on a proof.
    fn prove_equivalent(
        &mut self,
        a: AigEdge,
        b: AigEdge,
        first_aux: u32,
        conflict_budget: u64,
    ) -> bool {
        let miter = self.xor(a, b);
        if miter == AigEdge::FALSE {
            return true;
        }
        if miter == AigEdge::TRUE {
            return false;
        }
        let (cnf, out) = self.to_cnf(miter, first_aux);
        let config = hqs_sat::SatConfig::builder()
            .conflict_budget(Some(conflict_budget))
            .build()
            .expect("FRAIG SAT configuration is valid");
        let mut solver = hqs_sat::Solver::builder()
            .config(config)
            .observer(self.obs.clone())
            .build()
            .expect("FRAIG SAT configuration is valid");
        solver.add_cnf(&cnf);
        matches!(solver.solve(&[out]), hqs_sat::SolveResult::Unsat)
    }
}

#[inline]
fn edge_sig(sigs: &HashMap<u32, u64>, edge: AigEdge) -> u64 {
    sigs[&edge.node()] ^ complement_mask(edge)
}

#[inline]
fn complement_mask(edge: AigEdge) -> u64 {
    if edge.is_complemented() {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(aig: &Aig, a: AigEdge, b: AigEdge, num_vars: u32) {
        for bits in 0u32..(1 << num_vars) {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(a, val), aig.eval(b, val), "bits {bits:b}");
        }
    }

    #[test]
    fn fraig_merges_structurally_different_equivalents() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        // or(x, y) and mux(x, TRUE, y) are structurally different but equal.
        let f = aig.or(x, y);
        let g = aig.mux(x, Aig::TRUE, y);
        let both = aig.and(f, g); // ≡ x ∨ y
        let reduced = aig.fraig(both, 11, 1000);
        check_equiv(&aig, both, reduced, 2);
        // After reduction the cone should be as small as a single OR.
        assert!(aig.cone_size(reduced) <= aig.cone_size(both));
        assert!(aig.cone_size(reduced) <= 2);
    }

    #[test]
    fn fraig_preserves_function_on_random_cones() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(99);
        for round in 0..30 {
            let mut aig = Aig::new();
            let num_vars = 4u32;
            let mut pool: Vec<AigEdge> = (0..num_vars).map(|i| aig.input(Var::new(i))).collect();
            for _ in 0..12 {
                let a = pool[rng.gen_range(0..pool.len())].xor_complement(rng.gen_bool(0.5));
                let b = pool[rng.gen_range(0..pool.len())].xor_complement(rng.gen_bool(0.5));
                pool.push(aig.and(a, b));
            }
            let root = (*pool.last().unwrap()).xor_complement(rng.gen_bool(0.5));
            let reduced = aig.fraig(root, round, 1000);
            check_equiv(&aig, root, reduced, num_vars);
        }
    }

    #[test]
    fn fraig_detects_constants() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        // (x∧y) ∨ (x∧¬y) ∨ ¬x ≡ TRUE, built without letting the one-level
        // rules notice.
        let a = aig.and(x, y);
        let b = aig.and(x, !y);
        let ab = aig.or(a, b);
        let f = aig.or(ab, !x);
        let reduced = aig.fraig(f, 3, 1000);
        check_equiv(&aig, f, reduced, 2);
        // The sweeper merges `ab` with x, after which or(x, ¬x) collapses
        // structurally.
        assert_eq!(reduced, Aig::TRUE);
    }

    #[test]
    fn fraig_on_constant_and_input_roots() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        assert_eq!(aig.fraig(Aig::TRUE, 0, 10), Aig::TRUE);
        assert_eq!(aig.fraig(Aig::FALSE, 0, 10), Aig::FALSE);
        assert_eq!(aig.fraig(x, 0, 10), x);
        assert_eq!(aig.fraig(!x, 0, 10), !x);
    }
}
