//! An And-Inverter-Graph (AIG) package.
//!
//! This crate reimplements the AIG substrate the HQS paper builds on (the
//! authors used the C++ library *aigpp*): Boolean functions are represented
//! as DAGs of two-input AND gates with complemented edges, with
//!
//! * structural hashing and one-level simplification rules,
//! * the Boolean operations `and`, `or`, `xor`, `mux`, `implies`, `iff`,
//! * cofactors, [`compose`](Aig::compose) (function substitution), and
//!   single-variable existential/universal quantification,
//! * the linear-time *syntactic unit/pure detection* of Theorem 6 of the
//!   paper ([`unit_pure`](Aig::unit_pure)),
//! * 64-bit parallel random simulation,
//! * Tseitin conversion to CNF and back, and
//! * SAT-sweeping functional reduction (FRAIG-style,
//!   [`fraig`](Aig::fraig)).
//!
//! # Examples
//!
//! ```
//! use hqs_aig::Aig;
//! use hqs_base::Var;
//!
//! let mut aig = Aig::new();
//! let x = aig.input(Var::new(0));
//! let y = aig.input(Var::new(1));
//! let f = aig.and(x, y);
//! // Quantify x away: ∃x. (x ∧ y) ≡ y
//! let g = aig.exists(f, Var::new(0));
//! assert_eq!(g, y);
//! // ∀x. (x ∧ y) ≡ false
//! let h = aig.forall(f, Var::new(0));
//! assert_eq!(h, Aig::FALSE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiger;
mod cache;
mod check;
mod cnf_conv;
mod dot;
mod edge;
mod fraig;
mod manager;
mod simulate;
mod unitpure;

pub use aiger::AigerError;
pub use cache::{ConeSnapshot, FraigCache};
pub use edge::AigEdge;
pub use hqs_base::InvariantViolation;
pub use manager::{Aig, AigNode};
pub use unitpure::{UnitPureStatus, VarStatus};
