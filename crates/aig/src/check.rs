//! Runtime structural-invariant audit of the AIG manager.
//!
//! Theorem 6's linear-time unit/pure detection — and every elimination
//! step built on [`Aig::and`]/[`Aig::compose`] — is only sound while the
//! manager keeps its structural guarantees: an acyclic, topologically
//! ordered arena, a strash table that exactly mirrors the live AND nodes,
//! canonical operand order, no node the one-level simplification rules
//! would have folded, and a bijective input registry. This module makes
//! those guarantees machine-checkable.
//!
//! [`Aig::check_invariants`] performs the full audit in one arena pass
//! and is cheap enough to call from tests after every operation; the
//! mutating operations additionally run it (or a constant-time local
//! variant, for [`Aig::and`]) under `debug_assert!`, so any corruption is
//! caught at the mutation site in debug and `-C debug-assertions` builds.
//! The `--paranoid` solver option re-runs the full audit after every
//! elimination step in release builds too.

use crate::{Aig, AigEdge, AigNode};
use hqs_base::InvariantViolation;

impl Aig {
    /// Audits every structural invariant of the manager.
    ///
    /// Checked, in one pass over the arena:
    ///
    /// 1. **arena** — node 0 is the constant; AND fanins reference
    ///    strictly smaller indices (so the arena is topologically ordered
    ///    and therefore acyclic).
    /// 2. **canonical-order** — AND operands satisfy
    ///    `fanin0.code() <= fanin1.code()`.
    /// 3. **folded** — no AND node survives that the one-level
    ///    simplification rules fold away (constant operand, `x ∧ x`,
    ///    `x ∧ ¬x`).
    /// 4. **strash** — the structural-hash table exactly mirrors the live
    ///    AND nodes: every AND node has its entry, and there are no
    ///    stale or aliased entries.
    /// 5. **inputs** — the input registry is a bijection between
    ///    variables and `Input` nodes.
    ///
    /// Returns the first violation found. Runs in `O(nodes)`.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |component, detail| Err(InvariantViolation::new(component, detail));
        if self.nodes.is_empty() || self.nodes[0] != AigNode::True {
            return err("arena", "node 0 must be the constant-true node".to_string());
        }
        let mut and_count = 0usize;
        let mut input_count = 0usize;
        for (idx, &node) in self.nodes.iter().enumerate() {
            match node {
                AigNode::True => {
                    if idx != 0 {
                        return err("arena", format!("duplicate constant node at index {idx}"));
                    }
                }
                AigNode::Input(var) => {
                    input_count += 1;
                    match self.inputs.get(&var) {
                        Some(&mapped) if mapped as usize == idx => {}
                        Some(&mapped) => {
                            return err(
                                "inputs",
                                format!(
                                    "input node {idx} holds {var:?} but the registry maps it \
                                     to node {mapped}"
                                ),
                            );
                        }
                        None => {
                            return err(
                                "inputs",
                                format!("input node {idx} ({var:?}) missing from the registry"),
                            );
                        }
                    }
                }
                AigNode::And(f0, f1) => {
                    and_count += 1;
                    if f0.node() as usize >= idx || f1.node() as usize >= idx {
                        return err(
                            "arena",
                            format!(
                                "AND node {idx} references a non-smaller index \
                                 ({f0:?}, {f1:?}) — arena not topologically ordered"
                            ),
                        );
                    }
                    if f0.code() > f1.code() {
                        return err(
                            "canonical-order",
                            format!("AND node {idx} operands out of order ({f0:?}, {f1:?})"),
                        );
                    }
                    if f0.is_constant() || f1.is_constant() {
                        return err(
                            "folded",
                            format!("AND node {idx} has a constant operand ({f0:?}, {f1:?})"),
                        );
                    }
                    if f0 == f1 || f0 == !f1 {
                        return err(
                            "folded",
                            format!(
                                "AND node {idx} is idempotent or contradictory \
                                 ({f0:?}, {f1:?})"
                            ),
                        );
                    }
                    match self.strash.get(&(f0, f1)) {
                        Some(&mapped) if mapped as usize == idx => {}
                        Some(&mapped) => {
                            return err(
                                "strash",
                                format!(
                                    "AND node {idx} ({f0:?}, {f1:?}) aliased: strash maps the \
                                     pair to node {mapped}"
                                ),
                            );
                        }
                        None => {
                            return err(
                                "strash",
                                format!("AND node {idx} ({f0:?}, {f1:?}) missing from strash"),
                            );
                        }
                    }
                }
            }
        }
        if self.strash.len() != and_count {
            return err(
                "strash",
                format!(
                    "strash holds {} entries but the arena has {and_count} AND nodes \
                     (stale entries)",
                    self.strash.len()
                ),
            );
        }
        if self.inputs.len() != input_count {
            return err(
                "inputs",
                format!(
                    "registry holds {} variables but the arena has {input_count} input nodes",
                    self.inputs.len()
                ),
            );
        }
        Ok(())
    }

    /// Constant-time audit of a freshly built AND node, run under
    /// `debug_assert!` after every [`Aig::and`] (a full
    /// [`check_invariants`](Aig::check_invariants) there would make
    /// construction quadratic).
    pub(crate) fn debug_check_new_and(&self, edge: AigEdge) {
        if !cfg!(debug_assertions) || edge.is_constant() {
            return;
        }
        if let AigNode::And(f0, f1) = self.node(edge) {
            debug_assert!(
                f0.code() <= f1.code(),
                "post-and: operands out of order ({f0:?}, {f1:?})"
            );
            debug_assert!(
                f0.node() < edge.node() && f1.node() < edge.node(),
                "post-and: fanin does not precede node {} in the arena",
                edge.node()
            );
            debug_assert!(
                !f0.is_constant() && !f1.is_constant() && f0 != f1 && f0 != !f1,
                "post-and: node {} should have been folded ({f0:?}, {f1:?})",
                edge.node()
            );
            debug_assert!(
                self.strash.get(&(f0, f1)) == Some(&edge.node()),
                "post-and: strash does not mirror node {}",
                edge.node()
            );
        }
    }

    /// Panics with the violation if the full audit fails; used by the
    /// `debug_assert!` hooks on the compound operations and by the
    /// `--paranoid` solver mode.
    pub fn assert_invariants(&self, context: &str) {
        if let Err(violation) = self.check_invariants() {
            panic!("AIG invariant violated {context}: {violation}");
        }
    }

    /// Full audit compiled to a no-op unless debug assertions are on;
    /// called after every compound mutation (compose, quantify, compact).
    pub(crate) fn debug_audit(&self, context: &str) {
        if cfg!(debug_assertions) {
            self.assert_invariants(context);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Var;

    fn sample() -> (Aig, AigEdge) {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let z = aig.input(Var::new(2));
        let f = aig.mux(x, y, z);
        let g = aig.xor(f, x);
        (aig, g)
    }

    #[test]
    fn healthy_manager_passes() {
        let (aig, _) = sample();
        assert_eq!(aig.check_invariants(), Ok(()));
        assert_eq!(Aig::new().check_invariants(), Ok(()));
    }

    #[test]
    fn corrupted_strash_is_caught() {
        // A stale entry (removed pair) and an aliased entry must both be
        // reported as strash violations.
        let (mut aig, _) = sample();
        let (&pair, &idx) = aig.strash.iter().next().expect("sample has AND nodes");
        aig.strash.remove(&pair);
        let missing = aig
            .check_invariants()
            .expect_err("missing entry undetected");
        assert_eq!(missing.component(), "strash");
        aig.strash.insert(pair, idx + 1);
        let aliased = aig
            .check_invariants()
            .expect_err("aliased entry undetected");
        assert!(aliased.component() == "strash" || aliased.component() == "folded");
    }

    #[test]
    fn stale_strash_entry_is_caught() {
        let (mut aig, _) = sample();
        let phantom = (AigEdge::new(2, false), AigEdge::new(4, true));
        if aig.strash.contains_key(&phantom) {
            return; // sample happened to build this pair; nothing to inject
        }
        aig.strash.insert(phantom, 1);
        let violation = aig.check_invariants().expect_err("stale entry undetected");
        assert_eq!(violation.component(), "strash");
    }

    #[test]
    fn cyclic_arena_is_caught() {
        let (mut aig, root) = sample();
        let idx = root.node() as usize;
        // Redirect a node's fanin to itself: breaks topological order.
        aig.nodes[idx] = AigNode::And(
            AigEdge::new(root.node(), false),
            AigEdge::new(root.node(), true),
        );
        let violation = aig.check_invariants().expect_err("cycle undetected");
        assert_eq!(violation.component(), "arena");
    }

    #[test]
    fn non_canonical_order_is_caught() {
        let (mut aig, root) = sample();
        let idx = root.node() as usize;
        if let AigNode::And(f0, f1) = aig.nodes[idx] {
            aig.nodes[idx] = AigNode::And(f1, f0);
            aig.strash.remove(&(f0, f1));
            aig.strash.insert((f1, f0), root.node());
            let violation = aig.check_invariants().expect_err("swap undetected");
            assert_eq!(violation.component(), "canonical-order");
        } else {
            panic!("sample root must be an AND node");
        }
    }

    #[test]
    fn foldable_node_is_caught() {
        let (mut aig, root) = sample();
        let idx = root.node() as usize;
        let x = AigEdge::new(1, false); // input node from sample()
        if let AigNode::And(f0, f1) = aig.nodes[idx] {
            aig.nodes[idx] = AigNode::And(x, !x);
            aig.strash.remove(&(f0, f1));
            aig.strash.insert((x, !x), root.node());
            let violation = aig
                .check_invariants()
                .expect_err("contradiction undetected");
            assert_eq!(violation.component(), "folded");
        } else {
            panic!("sample root must be an AND node");
        }
    }

    #[test]
    fn broken_input_registry_is_caught() {
        let (mut aig, _) = sample();
        let var = Var::new(0);
        let idx = aig.inputs[&var];
        aig.inputs.remove(&var);
        let missing = aig
            .check_invariants()
            .expect_err("unregistered input undetected");
        assert_eq!(missing.component(), "inputs");
        aig.inputs.insert(var, idx);
        aig.inputs.insert(Var::new(99), idx);
        let extra = aig
            .check_invariants()
            .expect_err("phantom registry entry undetected");
        assert_eq!(extra.component(), "inputs");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "AIG invariant violated")]
    fn assert_invariants_panics_on_corruption() {
        let (mut aig, _) = sample();
        let (&pair, _) = aig.strash.iter().next().expect("sample has AND nodes");
        aig.strash.remove(&pair);
        aig.assert_invariants("in test");
    }
}
