//! The AIG manager: node storage, hashing, Boolean and quantification
//! operations.

use crate::AigEdge;
use hqs_base::{Var, VarSet};
use hqs_obs::{Metric, Obs};
use std::collections::HashMap;
use std::fmt;

/// A node of the AIG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AigNode {
    /// The constant-true node (always node 0).
    True,
    /// A primary input labelled with a variable.
    Input(Var),
    /// A two-input AND gate.
    And(AigEdge, AigEdge),
}

/// An And-Inverter-Graph manager.
///
/// Nodes are stored in a single arena; [`AigEdge`]s reference them with a
/// complement bit. Structural hashing guarantees that the same `(fanin,
/// fanin)` pair is never stored twice, and one-level simplification rules
/// catch constants, idempotence and complements.
///
/// See the [crate docs](crate) for an overview and examples.
pub struct Aig {
    pub(crate) nodes: Vec<AigNode>,
    pub(crate) strash: HashMap<(AigEdge, AigEdge), u32>,
    pub(crate) inputs: HashMap<Var, u32>,
    /// Scratch memo table reused by [`Aig::compose`] and
    /// [`Aig::compose_many`] so repeated cofactor/compose calls (the
    /// quantification inner loop) do not reallocate it every time.
    compose_memo: HashMap<u32, AigEdge>,
    /// Cross-session FRAIG cache, consulted by [`Aig::fraig`]; attached
    /// via [`Aig::set_fraig_cache`].
    pub(crate) fraig_cache: Option<std::sync::Arc<crate::FraigCache>>,
    pub(crate) obs: Obs,
}

impl Default for Aig {
    fn default() -> Self {
        Aig::new()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Aig")
            .field("nodes", &self.nodes.len())
            .field("inputs", &self.inputs.len())
            .finish()
    }
}

impl Aig {
    /// The constant-true function.
    pub const TRUE: AigEdge = AigEdge::TRUE;
    /// The constant-false function.
    pub const FALSE: AigEdge = AigEdge::FALSE;

    /// Creates a manager containing only the constant node.
    #[must_use]
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::True],
            strash: HashMap::new(),
            inputs: HashMap::new(),
            compose_memo: HashMap::new(),
            fraig_cache: None,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: rewrites ([`Aig::fraig`],
    /// [`Aig::compact`]) then report sweep/merge/reclaim counters
    /// through it. The node-construction hot path is untouched.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Returns the number of allocated nodes (constant and inputs included).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the node behind an edge (ignoring the complement bit).
    #[must_use]
    pub fn node(&self, edge: AigEdge) -> AigNode {
        // analyze::allow(panic): edge indices are only minted by push_node, so they are in bounds
        self.nodes[edge.node() as usize]
    }

    /// Returns the edge for the primary input labelled `var`, creating the
    /// input node on first use.
    pub fn input(&mut self, var: Var) -> AigEdge {
        if let Some(&idx) = self.inputs.get(&var) {
            return AigEdge::new(idx, false);
        }
        let idx = self.push_node(AigNode::Input(var));
        self.inputs.insert(var, idx);
        AigEdge::new(idx, false)
    }

    fn push_node(&mut self, node: AigNode) -> u32 {
        // analyze::allow(panic): more than u32::MAX AIG nodes is unrecoverable by design
        let idx = u32::try_from(self.nodes.len()).expect("AIG node overflow");
        self.nodes.push(node);
        idx
    }

    /// Conjunction with one-level simplification rules and structural
    /// hashing.
    pub fn and(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        if a == Self::FALSE || b == Self::FALSE || a == !b {
            return Self::FALSE;
        }
        if a == Self::TRUE || a == b {
            return b;
        }
        if b == Self::TRUE {
            return a;
        }
        // Normalise operand order for hashing.
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        // Two-level "contradiction" and "subsumption" rules on AND fanins.
        if let AigNode::And(f0, f1) = self.node(a) {
            if !a.is_complemented() {
                if f0 == !b || f1 == !b {
                    return Self::FALSE; // (x∧y)∧¬x = 0
                }
                if f0 == b || f1 == b {
                    return a; // (x∧y)∧x = x∧y
                }
            } else if f0 == b {
                // ¬(x∧y)∧x = x∧¬y
                let nf1 = !f1;
                return self.and(b, nf1);
            } else if f1 == b {
                let nf0 = !f0;
                return self.and(b, nf0);
            }
        }
        if let AigNode::And(g0, g1) = self.node(b) {
            if !b.is_complemented() {
                if g0 == !a || g1 == !a {
                    return Self::FALSE;
                }
                if g0 == a || g1 == a {
                    return b;
                }
            } else if g0 == a {
                let ng1 = !g1;
                return self.and(a, ng1);
            } else if g1 == a {
                let ng0 = !g0;
                return self.and(a, ng0);
            }
        }
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return AigEdge::new(idx, false);
        }
        let idx = self.push_node(AigNode::And(a, b));
        self.strash.insert((a, b), idx);
        let edge = AigEdge::new(idx, false);
        self.debug_check_new_and(edge);
        edge
    }

    /// Disjunction (`a ∨ b`).
    pub fn or(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        let conj = self.and(!a, !b);
        !conj
    }

    /// Exclusive or (`a ⊕ b`).
    pub fn xor(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        let both = self.and(a, b);
        let neither = self.and(!a, !b);
        let either_not = self.or(both, neither);
        !either_not
    }

    /// Implication (`a → b`).
    pub fn implies(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        let bad = self.and(a, !b);
        !bad
    }

    /// Equivalence (`a ↔ b`).
    pub fn iff(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        let x = self.xor(a, b);
        !x
    }

    /// Multiplexer (`if s then t else e`).
    pub fn mux(&mut self, s: AigEdge, t: AigEdge, e: AigEdge) -> AigEdge {
        let then_branch = self.and(s, t);
        let else_branch = self.and(!s, e);
        self.or(then_branch, else_branch)
    }

    /// Balanced conjunction of many edges.
    pub fn and_many(&mut self, edges: &[AigEdge]) -> AigEdge {
        self.reduce_balanced(edges, Self::TRUE, Aig::and)
    }

    /// Balanced disjunction of many edges.
    pub fn or_many(&mut self, edges: &[AigEdge]) -> AigEdge {
        self.reduce_balanced(edges, Self::FALSE, Aig::or)
    }

    fn reduce_balanced(
        &mut self,
        edges: &[AigEdge],
        unit: AigEdge,
        op: fn(&mut Aig, AigEdge, AigEdge) -> AigEdge,
    ) -> AigEdge {
        match edges.len() {
            0 => unit,
            1 => edges[0],
            _ => {
                let mid = edges.len() / 2;
                let left = self.reduce_balanced(&edges[..mid], unit, op);
                let right = self.reduce_balanced(&edges[mid..], unit, op);
                op(self, left, right)
            }
        }
    }

    /// The cofactor `f[value/var]`.
    pub fn cofactor(&mut self, root: AigEdge, var: Var, value: bool) -> AigEdge {
        let replacement = if value { Self::TRUE } else { Self::FALSE };
        self.compose(root, var, replacement)
    }

    /// Substitutes the function `replacement` for every occurrence of input
    /// `var` in `root` (the `compose` operation on AIGs).
    pub fn compose(&mut self, root: AigEdge, var: Var, replacement: AigEdge) -> AigEdge {
        let mut memo = std::mem::take(&mut self.compose_memo);
        memo.clear();
        let result = self.compose_rec(root, var, replacement, &mut memo);
        self.compose_memo = memo;
        self.debug_audit("after compose");
        result
    }

    fn compose_rec(
        &mut self,
        edge: AigEdge,
        var: Var,
        replacement: AigEdge,
        memo: &mut HashMap<u32, AigEdge>,
    ) -> AigEdge {
        let node_idx = edge.node();
        let mapped = if let Some(&m) = memo.get(&node_idx) {
            m
        } else {
            let result = match self.node(edge) {
                AigNode::True => Self::TRUE,
                AigNode::Input(v) => {
                    if v == var {
                        replacement
                    } else {
                        edge.regular()
                    }
                }
                AigNode::And(f0, f1) => {
                    let new0 = self.compose_rec(f0, var, replacement, memo);
                    let new1 = self.compose_rec(f1, var, replacement, memo);
                    self.and(new0, new1)
                }
            };
            memo.insert(node_idx, result);
            result
        };
        mapped.xor_complement(edge.is_complemented())
    }

    /// Substitutes several variables simultaneously.
    ///
    /// Unlike iterated [`compose`](Aig::compose), a simultaneous
    /// substitution is safe when replacement functions mention substituted
    /// variables.
    pub fn compose_many(&mut self, root: AigEdge, map: &HashMap<Var, AigEdge>) -> AigEdge {
        let mut memo = std::mem::take(&mut self.compose_memo);
        memo.clear();
        let result = self.compose_many_rec(root, map, &mut memo);
        self.compose_memo = memo;
        self.debug_audit("after compose_many");
        result
    }

    fn compose_many_rec(
        &mut self,
        edge: AigEdge,
        map: &HashMap<Var, AigEdge>,
        memo: &mut HashMap<u32, AigEdge>,
    ) -> AigEdge {
        let node_idx = edge.node();
        let mapped = if let Some(&m) = memo.get(&node_idx) {
            m
        } else {
            let result = match self.node(edge) {
                AigNode::True => Self::TRUE,
                AigNode::Input(v) => map.get(&v).copied().unwrap_or_else(|| edge.regular()),
                AigNode::And(f0, f1) => {
                    let new0 = self.compose_many_rec(f0, map, memo);
                    let new1 = self.compose_many_rec(f1, map, memo);
                    self.and(new0, new1)
                }
            };
            memo.insert(node_idx, result);
            result
        };
        mapped.xor_complement(edge.is_complemented())
    }

    /// Existential quantification `∃var. f`.
    pub fn exists(&mut self, root: AigEdge, var: Var) -> AigEdge {
        let f0 = self.cofactor(root, var, false);
        let f1 = self.cofactor(root, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification `∀var. f`.
    pub fn forall(&mut self, root: AigEdge, var: Var) -> AigEdge {
        let f0 = self.cofactor(root, var, false);
        let f1 = self.cofactor(root, var, true);
        self.and(f0, f1)
    }

    /// Existential quantification of a set, cheapest variable first
    /// (fewest occurrences in the cone — the scheduling heuristic of the
    /// QBF solver, exposed on the manager).
    pub fn exists_set(&mut self, root: AigEdge, vars: &VarSet) -> AigEdge {
        self.quantify_set(root, vars, true)
    }

    /// Universal quantification of a set, cheapest variable first.
    pub fn forall_set(&mut self, root: AigEdge, vars: &VarSet) -> AigEdge {
        self.quantify_set(root, vars, false)
    }

    fn quantify_set(&mut self, root: AigEdge, vars: &VarSet, existential: bool) -> AigEdge {
        let mut root = root;
        let mut remaining: Vec<Var> = vars.iter().collect();
        while !remaining.is_empty() {
            let support = self.support(root);
            remaining.retain(|&v| support.contains(v));
            if remaining.is_empty() {
                break;
            }
            // Cheapest first: smallest cone footprint.
            let counts = self.occurrence_counts(root, &remaining);
            let Some((pos, _)) = counts.iter().enumerate().min_by_key(|&(_, c)| *c) else {
                break;
            };
            let var = remaining.swap_remove(pos);
            root = if existential {
                self.exists(root, var)
            } else {
                self.forall(root, var)
            };
        }
        self.debug_audit("after quantify_set");
        root
    }

    /// For each variable, the number of cone nodes whose support contains
    /// it — the cofactor-cost estimate used to order eliminations
    /// (bit-parallel over chunks of 64 variables).
    #[must_use]
    pub fn occurrence_counts(&self, root: AigEdge, vars: &[Var]) -> Vec<usize> {
        let order = self.topo_order(root);
        let mut counts = vec![0usize; vars.len()];
        // Dense per-node masks: every cone node is written (in topological
        // order) before any parent reads it, so the buffer never needs
        // clearing between chunks and is allocated exactly once.
        let mut masks = vec![0u64; self.nodes.len()];
        for chunk_start in (0..vars.len()).step_by(64) {
            let chunk_end = (chunk_start + 64).min(vars.len());
            let chunk = &vars[chunk_start..chunk_end];
            for &idx in &order {
                let mask = match self.nodes[idx as usize] {
                    AigNode::True => 0,
                    AigNode::Input(v) => {
                        chunk.iter().position(|&c| c == v).map_or(0, |b| 1u64 << b)
                    }
                    AigNode::And(f0, f1) => masks[f0.node() as usize] | masks[f1.node() as usize],
                };
                masks[idx as usize] = mask;
                let mut m = mask;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    counts[chunk_start + b] += 1;
                    m &= m - 1;
                }
            }
        }
        counts
    }

    /// The set of input variables `root` structurally depends on.
    #[must_use]
    pub fn support(&self, root: AigEdge) -> VarSet {
        let mut support = VarSet::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![root.node()];
        while let Some(idx) = stack.pop() {
            if std::mem::replace(&mut visited[idx as usize], true) {
                continue;
            }
            match self.nodes[idx as usize] {
                AigNode::True => {}
                AigNode::Input(v) => {
                    support.insert(v);
                }
                AigNode::And(f0, f1) => {
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
            }
        }
        support
    }

    /// The number of AND nodes in the cone of `root`.
    #[must_use]
    pub fn cone_size(&self, root: AigEdge) -> usize {
        let mut count = 0;
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![root.node()];
        while let Some(idx) = stack.pop() {
            if std::mem::replace(&mut visited[idx as usize], true) {
                continue;
            }
            if let AigNode::And(f0, f1) = self.nodes[idx as usize] {
                count += 1;
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        count
    }

    /// Evaluates `root` under the variable valuation `value_of`.
    pub fn eval<F: Fn(Var) -> bool>(&self, root: AigEdge, value_of: F) -> bool {
        let mut values: Vec<Option<bool>> = vec![None; self.nodes.len()];
        self.eval_rec(root.node(), &value_of, &mut values) ^ root.is_complemented()
    }

    fn eval_rec<F: Fn(Var) -> bool>(
        &self,
        idx: u32,
        value_of: &F,
        values: &mut Vec<Option<bool>>,
    ) -> bool {
        if let Some(v) = values[idx as usize] {
            return v;
        }
        let result = match self.nodes[idx as usize] {
            AigNode::True => true,
            AigNode::Input(var) => value_of(var),
            AigNode::And(f0, f1) => {
                let v0 = self.eval_rec(f0.node(), value_of, values) ^ f0.is_complemented();
                let v1 = self.eval_rec(f1.node(), value_of, values) ^ f1.is_complemented();
                v0 && v1
            }
        };
        values[idx as usize] = Some(result);
        result
    }

    /// Garbage-collects the manager, keeping only the cones of `roots`.
    ///
    /// Returns the remapped root edges (same order). All other edges are
    /// invalidated.
    pub fn compact(&mut self, roots: &[AigEdge]) -> Vec<AigEdge> {
        let nodes_before = self.nodes.len();
        let mut fresh = Aig::new();
        // The fresh arena replaces `self` wholesale below; the observer
        // and the attached cross-session cache must survive the swap.
        fresh.obs = self.obs.clone();
        fresh.fraig_cache = self.fraig_cache.clone();
        let mut memo: HashMap<u32, AigEdge> = HashMap::new();
        let new_roots = roots
            .iter()
            .map(|&root| self.copy_into(root, &mut fresh, &mut memo))
            .collect();
        *self = fresh;
        self.debug_audit("after compact");
        self.obs.add(Metric::CompactRuns, 1);
        self.obs.add(
            Metric::CompactFreedNodes,
            nodes_before.saturating_sub(self.nodes.len()) as u64,
        );
        new_roots
    }

    fn copy_into(
        &self,
        edge: AigEdge,
        target: &mut Aig,
        memo: &mut HashMap<u32, AigEdge>,
    ) -> AigEdge {
        let node_idx = edge.node();
        let mapped = if let Some(&m) = memo.get(&node_idx) {
            m
        } else {
            let result = match self.nodes[node_idx as usize] {
                AigNode::True => Self::TRUE,
                AigNode::Input(v) => target.input(v),
                AigNode::And(f0, f1) => {
                    let new0 = self.copy_into(f0, target, memo);
                    let new1 = self.copy_into(f1, target, memo);
                    target.and(new0, new1)
                }
            };
            memo.insert(node_idx, result);
            result
        };
        mapped.xor_complement(edge.is_complemented())
    }

    /// Returns the nodes of the cone of `root` in topological order
    /// (fanins before fanouts).
    #[must_use]
    pub fn topo_order(&self, root: AigEdge) -> Vec<u32> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.nodes.len()]; // 0 unseen, 1 open, 2 done
        let mut stack = vec![(root.node(), false)];
        while let Some((idx, expanded)) = stack.pop() {
            if state[idx as usize] == 2 {
                continue;
            }
            if expanded {
                state[idx as usize] = 2;
                order.push(idx);
                continue;
            }
            if state[idx as usize] == 1 {
                continue;
            }
            state[idx as usize] = 1;
            stack.push((idx, true));
            if let AigNode::And(f0, f1) = self.nodes[idx as usize] {
                stack.push((f0.node(), false));
                stack.push((f1.node(), false));
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Aig, AigEdge, AigEdge, AigEdge) {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let z = aig.input(Var::new(2));
        (aig, x, y, z)
    }

    #[test]
    fn and_simplification_rules() {
        let (mut aig, x, y, _) = setup();
        assert_eq!(aig.and(x, Aig::FALSE), Aig::FALSE);
        assert_eq!(aig.and(Aig::TRUE, y), y);
        assert_eq!(aig.and(x, x), x);
        assert_eq!(aig.and(x, !x), Aig::FALSE);
        let a1 = aig.and(x, y);
        let a2 = aig.and(y, x);
        assert_eq!(a1, a2, "structural hashing is order-independent");
    }

    #[test]
    fn two_level_rules() {
        let (mut aig, x, y, _) = setup();
        let xy = aig.and(x, y);
        assert_eq!(aig.and(xy, !x), Aig::FALSE);
        assert_eq!(aig.and(xy, x), xy);
        // ¬(x∧y) ∧ x = x ∧ ¬y
        let lhs = aig.and(!xy, x);
        let rhs = aig.and(x, !y);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn input_is_hashed() {
        let mut aig = Aig::new();
        let a = aig.input(Var::new(7));
        let b = aig.input(Var::new(7));
        assert_eq!(a, b);
        assert_eq!(aig.num_nodes(), 2);
    }

    #[test]
    fn eval_or_xor_mux() {
        let (mut aig, x, y, z) = setup();
        let or = aig.or(x, y);
        let xor = aig.xor(x, y);
        let mux = aig.mux(x, y, z);
        for bits in 0u32..8 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            let (bx, by, bz) = (val(Var::new(0)), val(Var::new(1)), val(Var::new(2)));
            assert_eq!(aig.eval(or, val), bx || by);
            assert_eq!(aig.eval(xor, val), bx ^ by);
            assert_eq!(aig.eval(mux, val), if bx { by } else { bz });
        }
    }

    #[test]
    fn cofactor_and_compose() {
        let (mut aig, x, y, z) = setup();
        let f = aig.mux(x, y, z);
        assert_eq!(aig.cofactor(f, Var::new(0), true), y);
        assert_eq!(aig.cofactor(f, Var::new(0), false), z);
        // compose x := y yields mux(y,y,z) = y ∨ (¬y∧z) = y ∨ z
        let g = aig.compose(f, Var::new(0), y);
        let expected = aig.or(y, z);
        for bits in 0u32..8 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(g, val), aig.eval(expected, val));
        }
    }

    #[test]
    fn compose_many_is_simultaneous() {
        // Swap x and y in f = x ∧ ¬y. Sequential substitution would collapse.
        let (mut aig, x, y, _) = setup();
        let f = aig.and(x, !y);
        let map: HashMap<Var, AigEdge> = [(Var::new(0), y), (Var::new(1), x)].into_iter().collect();
        let g = aig.compose_many(f, &map);
        let expected = aig.and(y, !x);
        assert_eq!(g, expected);
    }

    #[test]
    fn quantification() {
        let (mut aig, x, y, _) = setup();
        let f = aig.and(x, y);
        assert_eq!(aig.exists(f, Var::new(0)), y);
        assert_eq!(aig.forall(f, Var::new(0)), Aig::FALSE);
        let g = aig.or(x, y);
        assert_eq!(aig.exists(g, Var::new(0)), Aig::TRUE);
        assert_eq!(aig.forall(g, Var::new(0)), y);
        // Quantifying a variable not in the support is the identity.
        assert_eq!(aig.exists(f, Var::new(9)), f);
        assert_eq!(aig.forall(f, Var::new(9)), f);
    }

    #[test]
    fn set_quantification_matches_iterated() {
        let (mut aig, x, y, z) = setup();
        let f = aig.mux(x, y, z);
        let set: VarSet = [Var::new(0), Var::new(2)].into_iter().collect();
        let ex_set = aig.exists_set(f, &set);
        let e1 = aig.exists(f, Var::new(0));
        let ex_iter = aig.exists(e1, Var::new(2));
        for bits in 0u32..8 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(ex_set, val), aig.eval(ex_iter, val));
        }
        let fa_set = aig.forall_set(f, &set);
        let a1 = aig.forall(f, Var::new(0));
        let fa_iter = aig.forall(a1, Var::new(2));
        for bits in 0u32..8 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(fa_set, val), aig.eval(fa_iter, val));
        }
        // Quantified variables leave the support.
        assert!(!aig.support(ex_set).contains(Var::new(0)));
        assert!(!aig.support(fa_set).contains(Var::new(2)));
    }

    #[test]
    fn occurrence_counts_match_supports() {
        let (mut aig, x, y, z) = setup();
        let f = aig.mux(x, y, z);
        let vars: Vec<Var> = (0..3).map(Var::new).collect();
        let counts = aig.occurrence_counts(f, &vars);
        // Every variable occurs in at least one node of the mux cone.
        assert!(counts.iter().all(|&c| c >= 1), "{counts:?}");
        // A variable outside the cone counts zero.
        let counts = aig.occurrence_counts(f, &[Var::new(9)]);
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn support_and_cone_size() {
        let (mut aig, x, y, z) = setup();
        let f = aig.mux(x, y, z);
        let support = aig.support(f);
        assert_eq!(support.len(), 3);
        assert!(aig.cone_size(f) >= 3);
        assert_eq!(aig.support(Aig::TRUE).len(), 0);
        assert_eq!(aig.support(x).len(), 1);
    }

    #[test]
    fn compact_preserves_function_and_drops_garbage() {
        let (mut aig, x, y, z) = setup();
        let garbage = aig.xor(x, z);
        let f = aig.and(x, y);
        let before = aig.num_nodes();
        let remapped = aig.compact(&[f]);
        assert_eq!(remapped.len(), 1);
        assert!(aig.num_nodes() < before, "garbage {garbage:?} dropped");
        let f2 = remapped[0];
        for bits in 0u32..4 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(f2, val), (bits & 1 == 1) && (bits >> 1 & 1 == 1));
        }
    }

    #[test]
    fn topo_order_is_consistent() {
        let (mut aig, x, y, z) = setup();
        let f = aig.mux(x, y, z);
        let order = aig.topo_order(f);
        let position: HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &idx in &order {
            if let AigNode::And(f0, f1) = aig.node(AigEdge::new(idx, false)) {
                assert!(position[&f0.node()] < position[&idx]);
                assert!(position[&f1.node()] < position[&idx]);
            }
        }
        assert_eq!(*order.last().unwrap(), f.node());
    }

    #[test]
    fn paper_example_2_aig() {
        // Fig. 1 of the paper: φ = (y1∨x1) ∧ (y1∨x2) ∧ (y2∨¬x1) ∧ (y2∨¬x2)
        let mut aig = Aig::new();
        let x1 = aig.input(Var::new(0));
        let x2 = aig.input(Var::new(1));
        let y1 = aig.input(Var::new(2));
        let y2 = aig.input(Var::new(3));
        let c1 = aig.or(y1, x1);
        let c2 = aig.or(y1, x2);
        let c3 = aig.or(y2, !x1);
        let c4 = aig.or(y2, !x2);
        let phi = aig.and_many(&[c1, c2, c3, c4]);
        for bits in 0u32..16 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            let (bx1, bx2, by1, by2) = (
                val(Var::new(0)),
                val(Var::new(1)),
                val(Var::new(2)),
                val(Var::new(3)),
            );
            #[allow(clippy::nonminimal_bool)] // mirror the paper's clause list
            let expected = (by1 || bx1) && (by1 || bx2) && (by2 || !bx1) && (by2 || !bx2);
            assert_eq!(aig.eval(phi, val), expected);
        }
    }
}
