//! Conversion between AIGs and CNF.
//!
//! * [`Aig::to_cnf`] — Tseitin encoding of a cone. Input variables keep
//!   their identities; internal AND nodes receive fresh variables starting
//!   at a caller-chosen offset, so the CNF can be combined with other
//!   constraints over the same variable space.
//! * [`Aig::from_cnf`] — builds the conjunction-of-disjunctions AIG of a
//!   CNF (balanced, so the depth stays logarithmic).

use crate::{Aig, AigEdge, AigNode};
use hqs_base::Lit;
#[cfg(test)]
use hqs_base::Var;
use hqs_cnf::{Clause, Cnf};
use std::collections::HashMap;

impl Aig {
    /// Tseitin-encodes the cone of `root` into a CNF.
    ///
    /// Primary inputs keep their variable identity. Auxiliary variables for
    /// AND nodes are allocated from `first_aux` upwards (`first_aux` must be
    /// larger than every input variable index in the cone). Returns the CNF
    /// and the literal equivalent to `root`; the caller typically adds a
    /// unit clause on that literal.
    ///
    /// # Panics
    ///
    /// Panics if an input variable in the cone has index `>= first_aux`.
    #[must_use]
    pub fn to_cnf(&self, root: AigEdge, first_aux: u32) -> (Cnf, Lit) {
        let mut cnf = Cnf::new(first_aux);
        let mut node_lit: HashMap<u32, Lit> = HashMap::new();
        for idx in self.topo_order(root) {
            match self.node(AigEdge::new(idx, false)) {
                AigNode::True => {
                    // Represent the constant with a fresh always-true var.
                    let var = cnf.fresh_var();
                    cnf.add_clause(Clause::unit(Lit::positive(var)));
                    node_lit.insert(idx, Lit::positive(var));
                }
                AigNode::Input(var) => {
                    assert!(
                        var.index() < first_aux,
                        "input {var} collides with auxiliary variables"
                    );
                    node_lit.insert(idx, Lit::positive(var));
                }
                AigNode::And(f0, f1) => {
                    let out = Lit::positive(cnf.fresh_var());
                    let l0 = node_lit[&f0.node()].xor_sign(f0.is_complemented());
                    let l1 = node_lit[&f1.node()].xor_sign(f1.is_complemented());
                    cnf.add_clause(Clause::binary(!out, l0));
                    cnf.add_clause(Clause::binary(!out, l1));
                    cnf.add_clause(Clause::from_lits([out, !l0, !l1]));
                    node_lit.insert(idx, out);
                }
            }
        }
        let out = node_lit[&root.node()].xor_sign(root.is_complemented());
        (cnf, out)
    }

    /// Builds the AIG of a CNF: a balanced conjunction of balanced clause
    /// disjunctions. Returns the output edge.
    pub fn from_cnf(&mut self, cnf: &Cnf) -> AigEdge {
        let clause_edges: Vec<AigEdge> = cnf
            .clauses()
            .iter()
            .map(|clause| self.clause_edge(clause))
            .collect();
        self.and_many(&clause_edges)
    }

    /// Builds the disjunction AIG of one clause.
    pub fn clause_edge(&mut self, clause: &Clause) -> AigEdge {
        let lit_edges: Vec<AigEdge> = clause
            .lits()
            .iter()
            .map(|&lit| {
                let input = self.input(lit.var());
                input.xor_complement(lit.is_negative())
            })
            .collect();
        self.or_many(&lit_edges)
    }

    /// Builds the AIG edge for a single literal.
    pub fn lit_edge(&mut self, lit: Lit) -> AigEdge {
        let input = self.input(lit.var());
        input.xor_complement(lit.is_negative())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::{Assignment, TruthValue};
    use hqs_sat::reference::dpll;

    fn exhaustive_equiv(aig: &Aig, root: AigEdge, cnf: &Cnf, out: Lit, num_inputs: u32) {
        // For every input assignment: AIG value == exists aux assignment
        // satisfying CNF with out forced true... Tseitin aux values are
        // functionally determined, so extend and check directly.
        for bits in 0u32..(1 << num_inputs) {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            let expected = aig.eval(root, val);
            // Check: CNF ∧ (inputs fixed) ∧ out  is SAT iff expected.
            let mut query = cnf.clone();
            for i in 0..num_inputs {
                query.add_clause(Clause::unit(Lit::new(Var::new(i), !val(Var::new(i)))));
            }
            query.add_clause(Clause::unit(out));
            assert_eq!(dpll(&query).is_some(), expected, "bits {bits:b}");
        }
    }

    #[test]
    fn tseitin_roundtrip_mux() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let z = aig.input(Var::new(2));
        let f = aig.mux(x, y, z);
        let (cnf, out) = aig.to_cnf(f, 3);
        exhaustive_equiv(&aig, f, &cnf, out, 3);
    }

    #[test]
    fn tseitin_constant_root() {
        let aig = Aig::new();
        let (cnf, out) = aig.to_cnf(Aig::TRUE, 0);
        let mut q = cnf.clone();
        q.add_clause(Clause::unit(out));
        assert!(dpll(&q).is_some());
        let (cnf, out) = aig.to_cnf(Aig::FALSE, 0);
        let mut q = cnf;
        q.add_clause(Clause::unit(out));
        assert!(dpll(&q).is_none());
    }

    #[test]
    fn tseitin_complemented_root() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(0));
        let y = aig.input(Var::new(1));
        let f = aig.and(x, y);
        let (cnf, out) = aig.to_cnf(!f, 2);
        exhaustive_equiv(&aig, !f, &cnf, out, 2);
    }

    #[test]
    fn from_cnf_matches_semantics() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-1 -3 0\n";
        let cnf = hqs_cnf::dimacs::parse_dimacs(text).unwrap();
        let mut aig = Aig::new();
        let root = aig.from_cnf(&cnf);
        for bits in 0u32..8 {
            let mut assignment = Assignment::new();
            for i in 0..3 {
                assignment.assign(Var::new(i), bits >> i & 1 == 1);
            }
            let expected = cnf.evaluate(&assignment) == TruthValue::True;
            assert_eq!(aig.eval(root, |v| bits >> v.index() & 1 == 1), expected);
        }
    }

    #[test]
    fn empty_cnf_is_true_and_empty_clause_false() {
        let mut aig = Aig::new();
        assert_eq!(aig.from_cnf(&Cnf::new(0)), Aig::TRUE);
        let mut cnf = Cnf::new(0);
        cnf.add_clause(Clause::empty());
        assert_eq!(aig.from_cnf(&cnf), Aig::FALSE);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn aux_collision_panics() {
        let mut aig = Aig::new();
        let x = aig.input(Var::new(5));
        let y = aig.input(Var::new(6));
        let f = aig.and(x, y);
        let _ = aig.to_cnf(f, 3);
    }
}
