//! Randomised property tests of the AIG operations against truth-table
//! semantics on random cones, plus structural-invariant audits after
//! random operation sequences (the runtime half of the correctness-audit
//! layer; see DESIGN.md "Invariants & audit").

use hqs_aig::{Aig, AigEdge, VarStatus};
use hqs_base::{Rng, Var};
use std::collections::HashMap;

const NUM_VARS: u32 = 4;
const CASES: u64 = 256;

/// A recipe for building a random cone: pairs of (operand indices,
/// complement flags) over a growing node pool.
#[derive(Clone, Debug)]
struct Recipe {
    steps: Vec<(usize, usize, bool, bool)>,
    complement_root: bool,
}

fn random_recipe(rng: &mut Rng) -> Recipe {
    let steps = (0..rng.gen_range(1..14usize))
        .map(|_| {
            (
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    Recipe {
        steps,
        complement_root: rng.gen_bool(0.5),
    }
}

fn build(aig: &mut Aig, recipe: &Recipe) -> AigEdge {
    let mut pool: Vec<AigEdge> = (0..NUM_VARS).map(|i| aig.input(Var::new(i))).collect();
    for &(i, j, ci, cj) in &recipe.steps {
        let a = pool[i % pool.len()].xor_complement(ci);
        let b = pool[j % pool.len()].xor_complement(cj);
        pool.push(aig.and(a, b));
    }
    (*pool.last().expect("pool starts non-empty")).xor_complement(recipe.complement_root)
}

fn truth_table(aig: &Aig, root: AigEdge) -> u16 {
    let mut table = 0u16;
    for bits in 0u32..(1 << NUM_VARS) {
        if aig.eval(root, |v| bits >> v.index() & 1 == 1) {
            table |= 1 << bits;
        }
    }
    table
}

fn cofactor_table(table: u16, var: u32, value: bool) -> u16 {
    let mut out = 0u16;
    for bits in 0u32..(1 << NUM_VARS) {
        let mut src = bits;
        if value {
            src |= 1 << var;
        } else {
            src &= !(1 << var);
        }
        if table >> src & 1 == 1 {
            out |= 1 << bits;
        }
    }
    out
}

fn assert_invariants(aig: &Aig, context: &str) {
    if let Err(violation) = aig.check_invariants() {
        panic!("{context}: AIG invariant violated: {violation}");
    }
}

/// Structural hashing and the simplification rules never change the
/// function: two independent builds of the same recipe agree.
#[test]
fn construction_is_functional() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let recipe = random_recipe(&mut rng);
        let mut aig1 = Aig::new();
        let r1 = build(&mut aig1, &recipe);
        let mut aig2 = Aig::new();
        let r2 = build(&mut aig2, &recipe);
        assert_eq!(
            truth_table(&aig1, r1),
            truth_table(&aig2, r2),
            "seed {seed}"
        );
        assert_invariants(&aig1, &format!("seed {seed} after build"));
    }
}

/// Cofactor semantics match the truth-table cofactor.
#[test]
fn cofactor_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let recipe = random_recipe(&mut rng);
        let var = rng.gen_range(0..NUM_VARS);
        let value = rng.gen_bool(0.5);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let cof = aig.cofactor(root, Var::new(var), value);
        assert_eq!(
            truth_table(&aig, cof),
            cofactor_table(before, var, value),
            "seed {seed}"
        );
    }
}

/// ∃x.f = f[0/x] ∨ f[1/x] and ∀x.f = f[0/x] ∧ f[1/x], and the
/// quantified variable leaves the support.
#[test]
fn quantification_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let recipe = random_recipe(&mut rng);
        let var = rng.gen_range(0..NUM_VARS);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let table = truth_table(&aig, root);
        let t0 = cofactor_table(table, var, false);
        let t1 = cofactor_table(table, var, true);
        let ex = aig.exists(root, Var::new(var));
        let fa = aig.forall(root, Var::new(var));
        assert_eq!(truth_table(&aig, ex), t0 | t1, "seed {seed}");
        assert_eq!(truth_table(&aig, fa), t0 & t1, "seed {seed}");
        assert!(!aig.support(ex).contains(Var::new(var)), "seed {seed}");
        assert!(!aig.support(fa).contains(Var::new(var)), "seed {seed}");
    }
}

/// compose(f, x, g) equals the Shannon expansion g∧f[1/x] ∨ ¬g∧f[0/x].
#[test]
fn compose_is_shannon() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let f_recipe = random_recipe(&mut rng);
        let g_recipe = random_recipe(&mut rng);
        let var = rng.gen_range(0..NUM_VARS);
        let mut aig = Aig::new();
        let f = build(&mut aig, &f_recipe);
        let g = build(&mut aig, &g_recipe);
        let composed = aig.compose(f, Var::new(var), g);
        let tf = truth_table(&aig, f);
        let tg = truth_table(&aig, g);
        let t0 = cofactor_table(tf, var, false);
        let t1 = cofactor_table(tf, var, true);
        assert_eq!(
            truth_table(&aig, composed),
            (tg & t1) | (!tg & t0),
            "seed {seed}"
        );
    }
}

/// compact() preserves the function and never grows the cone.
#[test]
fn compact_preserves_function() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let recipe = random_recipe(&mut rng);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let size_before = aig.cone_size(root);
        let remapped = aig.compact(&[root]);
        assert_eq!(truth_table(&aig, remapped[0]), before, "seed {seed}");
        assert!(aig.cone_size(remapped[0]) <= size_before, "seed {seed}");
        assert_invariants(&aig, &format!("seed {seed} after compact"));
    }
}

/// Simulation agrees with eval on every pattern bit.
#[test]
fn simulation_matches_eval() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + seed);
        let recipe = random_recipe(&mut rng);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let mut patterns: HashMap<Var, u64> = HashMap::new();
        for i in 0..NUM_VARS {
            patterns.insert(Var::new(i), rng.next_u64());
        }
        let signature = aig.simulate(root, &patterns);
        for bit in [0usize, 17, 63] {
            let expected = aig.eval(root, |v| patterns[&v] >> bit & 1 == 1);
            assert_eq!(signature >> bit & 1 == 1, expected, "seed {seed} bit {bit}");
        }
    }
}

/// The Theorem-6 classification is semantically sound (Definition 5):
/// every syntactic unit/pure claim is confirmed by the semantic
/// cofactor oracle.
#[test]
fn unit_pure_claims_are_sound() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + seed);
        let recipe = random_recipe(&mut rng);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let table = truth_table(&aig, root);
        let status = aig.unit_pure(root);
        for var in 0..NUM_VARS {
            let t0 = cofactor_table(table, var, false);
            let t1 = cofactor_table(table, var, true);
            match status.status(Var::new(var)) {
                VarStatus::PositiveUnit => assert_eq!(t0, 0, "seed {seed} var {var}"),
                VarStatus::NegativeUnit => assert_eq!(t1, 0, "seed {seed} var {var}"),
                VarStatus::PositivePure => assert_eq!(t0 & !t1, 0, "seed {seed} var {var}"),
                VarStatus::NegativePure => assert_eq!(t1 & !t0, 0, "seed {seed} var {var}"),
                VarStatus::Unknown => {}
            }
        }
    }
}

/// FRAIG sweeping preserves the function.
#[test]
fn fraig_preserves_function() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7000 + seed);
        let recipe = random_recipe(&mut rng);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let reduced = aig.fraig(root, rng.next_u64(), 500);
        assert_eq!(truth_table(&aig, reduced), before, "seed {seed}");
        assert_invariants(&aig, &format!("seed {seed} after fraig"));
    }
}

/// Tseitin conversion: the CNF with the output asserted is
/// equisatisfiable with the function per input assignment.
#[test]
fn tseitin_equisatisfiable() {
    use hqs_cnf::Clause;
    use hqs_sat::reference::is_satisfiable;
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x8000 + seed);
        let recipe = random_recipe(&mut rng);
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let (cnf, out) = aig.to_cnf(root, NUM_VARS);
        for bits in 0u32..(1 << NUM_VARS) {
            let expected = aig.eval(root, |v| bits >> v.index() & 1 == 1);
            let mut query = cnf.clone();
            for i in 0..NUM_VARS {
                query.add_clause(Clause::unit(hqs_base::Lit::new(
                    Var::new(i),
                    bits >> i & 1 == 0,
                )));
            }
            query.add_clause(Clause::unit(out));
            assert_eq!(is_satisfiable(&query), expected, "seed {seed} bits {bits}");
        }
    }
}

/// The audit invariants hold after arbitrary interleaved sequences of
/// `and`, `compose`, `cofactor`, `exists`, `forall` and `compact`, and
/// unit/pure classification stays sound on the evolving cone — the
/// "random op sequence" audit required by the correctness-audit layer.
#[test]
fn invariants_hold_under_random_op_sequences() {
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x9000 + seed);
        let mut aig = Aig::new();
        let mut pool: Vec<AigEdge> = (0..NUM_VARS).map(|i| aig.input(Var::new(i))).collect();
        for step in 0..rng.gen_range(4..24usize) {
            let pick = |rng: &mut Rng, pool: &[AigEdge]| {
                pool[rng.gen_range(0..pool.len())].xor_complement(rng.gen_bool(0.5))
            };
            let var = Var::new(rng.gen_range(0..NUM_VARS));
            let fresh = match rng.gen_range(0..6u32) {
                0 | 1 => {
                    let a = pick(&mut rng, &pool);
                    let b = pick(&mut rng, &pool);
                    aig.and(a, b)
                }
                2 => {
                    let f = pick(&mut rng, &pool);
                    let g = pick(&mut rng, &pool);
                    aig.compose(f, var, g)
                }
                3 => {
                    let f = pick(&mut rng, &pool);
                    aig.cofactor(f, var, rng.gen_bool(0.5))
                }
                4 => {
                    let f = pick(&mut rng, &pool);
                    aig.exists(f, var)
                }
                _ => {
                    let f = pick(&mut rng, &pool);
                    aig.forall(f, var)
                }
            };
            // Interleaved semantic oracle: Theorem 6 claims about the new
            // cone must agree with the truth-table cofactors.
            let table = truth_table(&aig, fresh);
            let status = aig.unit_pure(fresh);
            for v in 0..NUM_VARS {
                let t0 = cofactor_table(table, v, false);
                let t1 = cofactor_table(table, v, true);
                match status.status(Var::new(v)) {
                    VarStatus::PositiveUnit => assert_eq!(t0, 0, "seed {seed} step {step}"),
                    VarStatus::NegativeUnit => assert_eq!(t1, 0, "seed {seed} step {step}"),
                    VarStatus::PositivePure => assert_eq!(t0 & !t1, 0, "seed {seed} step {step}"),
                    VarStatus::NegativePure => assert_eq!(t1 & !t0, 0, "seed {seed} step {step}"),
                    VarStatus::Unknown => {}
                }
            }
            pool.push(fresh);
            assert_invariants(&aig, &format!("seed {seed} step {step}"));
            // Occasionally garbage-collect and continue on the survivors.
            if pool.len() > 6 && rng.gen_bool(0.15) {
                let keep: Vec<AigEdge> = pool.split_off(pool.len() - 4);
                pool = aig.compact(&keep);
                assert_invariants(&aig, &format!("seed {seed} step {step} post-compact"));
            }
        }
    }
}
