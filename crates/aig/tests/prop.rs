//! Property-based tests of the AIG operations against truth-table
//! semantics on random cones.

use hqs_aig::{Aig, AigEdge, VarStatus};
use hqs_base::Var;
use proptest::prelude::*;
use std::collections::HashMap;

const NUM_VARS: u32 = 4;

/// A recipe for building a random cone: pairs of (operand indices,
/// complement flags) over a growing node pool.
#[derive(Clone, Debug)]
struct Recipe {
    steps: Vec<(usize, usize, bool, bool)>,
    complement_root: bool,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(
            (0usize..64, 0usize..64, any::<bool>(), any::<bool>()),
            1..14,
        ),
        any::<bool>(),
    )
        .prop_map(|(steps, complement_root)| Recipe {
            steps,
            complement_root,
        })
}

fn build(aig: &mut Aig, recipe: &Recipe) -> AigEdge {
    let mut pool: Vec<AigEdge> = (0..NUM_VARS).map(|i| aig.input(Var::new(i))).collect();
    for &(i, j, ci, cj) in &recipe.steps {
        let a = pool[i % pool.len()].xor_complement(ci);
        let b = pool[j % pool.len()].xor_complement(cj);
        pool.push(aig.and(a, b));
    }
    (*pool.last().unwrap()).xor_complement(recipe.complement_root)
}

fn truth_table(aig: &Aig, root: AigEdge) -> u16 {
    let mut table = 0u16;
    for bits in 0u32..(1 << NUM_VARS) {
        if aig.eval(root, |v| bits >> v.index() & 1 == 1) {
            table |= 1 << bits;
        }
    }
    table
}

fn cofactor_table(table: u16, var: u32, value: bool) -> u16 {
    let mut out = 0u16;
    for bits in 0u32..(1 << NUM_VARS) {
        let mut src = bits;
        if value {
            src |= 1 << var;
        } else {
            src &= !(1 << var);
        }
        if table >> src & 1 == 1 {
            out |= 1 << bits;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural hashing and the simplification rules never change the
    /// function: two independent builds of the same recipe agree.
    #[test]
    fn construction_is_functional(recipe in arb_recipe()) {
        let mut aig1 = Aig::new();
        let r1 = build(&mut aig1, &recipe);
        let mut aig2 = Aig::new();
        let r2 = build(&mut aig2, &recipe);
        prop_assert_eq!(truth_table(&aig1, r1), truth_table(&aig2, r2));
    }

    /// Cofactor semantics match the truth-table cofactor.
    #[test]
    fn cofactor_semantics(recipe in arb_recipe(), var in 0..NUM_VARS, value in any::<bool>()) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let cof = aig.cofactor(root, Var::new(var), value);
        prop_assert_eq!(truth_table(&aig, cof), cofactor_table(before, var, value));
    }

    /// ∃x.f = f[0/x] ∨ f[1/x] and ∀x.f = f[0/x] ∧ f[1/x], and the
    /// quantified variable leaves the support.
    #[test]
    fn quantification_semantics(recipe in arb_recipe(), var in 0..NUM_VARS) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let table = truth_table(&aig, root);
        let t0 = cofactor_table(table, var, false);
        let t1 = cofactor_table(table, var, true);
        let ex = aig.exists(root, Var::new(var));
        let fa = aig.forall(root, Var::new(var));
        prop_assert_eq!(truth_table(&aig, ex), t0 | t1);
        prop_assert_eq!(truth_table(&aig, fa), t0 & t1);
        prop_assert!(!aig.support(ex).contains(Var::new(var)));
        prop_assert!(!aig.support(fa).contains(Var::new(var)));
    }

    /// compose(f, x, g) equals the Shannon expansion g∧f[1/x] ∨ ¬g∧f[0/x].
    #[test]
    fn compose_is_shannon(f_recipe in arb_recipe(), g_recipe in arb_recipe(), var in 0..NUM_VARS) {
        let mut aig = Aig::new();
        let f = build(&mut aig, &f_recipe);
        let g = build(&mut aig, &g_recipe);
        let composed = aig.compose(f, Var::new(var), g);
        let tf = truth_table(&aig, f);
        let tg = truth_table(&aig, g);
        let t0 = cofactor_table(tf, var, false);
        let t1 = cofactor_table(tf, var, true);
        prop_assert_eq!(truth_table(&aig, composed), (tg & t1) | (!tg & t0));
    }

    /// compact() preserves the function and never grows the cone.
    #[test]
    fn compact_preserves_function(recipe in arb_recipe()) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let size_before = aig.cone_size(root);
        let remapped = aig.compact(&[root]);
        prop_assert_eq!(truth_table(&aig, remapped[0]), before);
        prop_assert!(aig.cone_size(remapped[0]) <= size_before);
    }

    /// Simulation agrees with eval on every pattern bit.
    #[test]
    fn simulation_matches_eval(recipe in arb_recipe(), seed in any::<u64>()) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let mut patterns: HashMap<Var, u64> = HashMap::new();
        let mut state = seed;
        for i in 0..NUM_VARS {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            patterns.insert(Var::new(i), state);
        }
        let signature = aig.simulate(root, &patterns);
        for bit in [0usize, 17, 63] {
            let expected = aig.eval(root, |v| patterns[&v] >> bit & 1 == 1);
            prop_assert_eq!(signature >> bit & 1 == 1, expected);
        }
    }

    /// The Theorem-6 classification is semantically sound (Definition 5).
    #[test]
    fn unit_pure_claims_are_sound(recipe in arb_recipe()) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let table = truth_table(&aig, root);
        let status = aig.unit_pure(root);
        for var in 0..NUM_VARS {
            let t0 = cofactor_table(table, var, false);
            let t1 = cofactor_table(table, var, true);
            match status.status(Var::new(var)) {
                VarStatus::PositiveUnit => prop_assert_eq!(t0, 0),
                VarStatus::NegativeUnit => prop_assert_eq!(t1, 0),
                VarStatus::PositivePure => prop_assert_eq!(t0 & !t1, 0),
                VarStatus::NegativePure => prop_assert_eq!(t1 & !t0, 0),
                VarStatus::Unknown => {}
            }
        }
    }

    /// FRAIG sweeping preserves the function.
    #[test]
    fn fraig_preserves_function(recipe in arb_recipe(), seed in any::<u64>()) {
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let before = truth_table(&aig, root);
        let reduced = aig.fraig(root, seed, 500);
        prop_assert_eq!(truth_table(&aig, reduced), before);
    }

    /// Tseitin conversion: the CNF with the output asserted is
    /// equisatisfiable with the function per input assignment.
    #[test]
    fn tseitin_equisatisfiable(recipe in arb_recipe()) {
        use hqs_cnf::Clause;
        use hqs_sat::reference::is_satisfiable;
        let mut aig = Aig::new();
        let root = build(&mut aig, &recipe);
        let (cnf, out) = aig.to_cnf(root, NUM_VARS);
        for bits in 0u32..(1 << NUM_VARS) {
            let expected = aig.eval(root, |v| bits >> v.index() & 1 == 1);
            let mut query = cnf.clone();
            for i in 0..NUM_VARS {
                query.add_clause(Clause::unit(
                    hqs_base::Lit::new(Var::new(i), bits >> i & 1 == 0),
                ));
            }
            query.add_clause(Clause::unit(out));
            prop_assert_eq!(is_satisfiable(&query), expected);
        }
    }
}
