//! Property-based tests for clauses, CNF and the DIMACS-family parsers.

use hqs_base::{Assignment, Lit, TruthValue, Var};
use hqs_cnf::{dimacs, Clause, Cnf};
use proptest::prelude::*;

fn arb_lit(max_var: u32) -> impl Strategy<Value = Lit> {
    (0..max_var, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

fn arb_clause(max_var: u32) -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_lit(max_var), 0..6).prop_map(Clause::from_lits)
}

fn arb_cnf(max_var: u32) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(arb_clause(max_var), 0..12).prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_var);
        for clause in clauses {
            cnf.add_clause(clause);
        }
        cnf
    })
}

fn arb_assignment(max_var: u32) -> impl Strategy<Value = Assignment> {
    prop::collection::vec(any::<bool>(), max_var as usize)
        .prop_map(|bits| bits.into_iter().enumerate().map(|(i, b)| (Var::new(i as u32), b)).collect())
}

proptest! {
    /// DIMACS write/parse round-trips exactly.
    #[test]
    fn dimacs_roundtrip(cnf in arb_cnf(8)) {
        let text = dimacs::write_dimacs(&cnf);
        let parsed = dimacs::parse_dimacs(&text).unwrap();
        prop_assert_eq!(cnf.clauses(), parsed.clauses());
        prop_assert_eq!(cnf.num_vars(), parsed.num_vars());
    }

    /// Clause normalisation is idempotent and order-insensitive.
    #[test]
    fn clause_normalisation(mut lits in prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(|(v, n)| Lit::new(Var::new(v), n)), 0..8))
    {
        let a = Clause::from_lits(lits.clone());
        lits.reverse();
        let b = Clause::from_lits(lits);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(Clause::from_lits(a.lits().iter().copied()), b);
    }

    /// Resolution: the resolvent is implied by its parents (any model of
    /// both parents satisfies the resolvent).
    #[test]
    fn resolution_is_sound(
        c1 in arb_clause(5),
        c2 in arb_clause(5),
        pivot in 0u32..5,
        assignment in arb_assignment(5),
    ) {
        let pivot = Var::new(pivot);
        if let Some(resolvent) = c1.resolve(&c2, pivot) {
            let sat = |c: &Clause| c.evaluate(&assignment) == TruthValue::True;
            if sat(&c1) && sat(&c2) {
                prop_assert!(sat(&resolvent) || resolvent.is_tautology(),
                    "resolvent {resolvent:?} falsified; parents {c1:?}, {c2:?}");
            }
        }
    }

    /// Subsumption: if c subsumes d, every model of c satisfies d.
    #[test]
    fn subsumption_is_semantic(
        c in arb_clause(5),
        d in arb_clause(5),
        assignment in arb_assignment(5),
    ) {
        if c.subsumes(&d) && c.evaluate(&assignment) == TruthValue::True {
            prop_assert_eq!(d.evaluate(&assignment), TruthValue::True);
        }
    }

    /// apply_assignment preserves the formula's value under any extension
    /// of the applied assignment.
    #[test]
    fn apply_assignment_preserves_semantics(
        cnf in arb_cnf(6),
        partial_bits in prop::collection::vec(any::<Option<bool>>(), 6),
        full in arb_assignment(6),
    ) {
        let mut partial = Assignment::new();
        let mut combined = Assignment::new();
        for (i, value) in partial_bits.iter().enumerate() {
            let var = Var::new(i as u32);
            let fallback = full.value(var).to_bool().unwrap_or(false);
            match value {
                Some(b) => {
                    partial.assign(var, *b);
                    combined.assign(var, *b);
                }
                None => combined.assign(var, fallback),
            }
        }
        let mut reduced = cnf.clone();
        reduced.apply_assignment(&partial);
        prop_assert_eq!(reduced.evaluate(&combined), cnf.evaluate(&combined));
    }

    /// QDIMACS round-trip through the writer.
    #[test]
    fn qdimacs_roundtrip(cnf in arb_cnf(6), split in 0u32..6) {
        use hqs_cnf::{QdimacsFile, QuantBlock, Quantifier};
        let blocks = vec![
            QuantBlock { quantifier: Quantifier::Universal, vars: (0..split).map(Var::new).collect() },
            QuantBlock { quantifier: Quantifier::Existential, vars: (split..6).map(Var::new).collect() },
        ];
        let blocks: Vec<QuantBlock> = blocks.into_iter().filter(|b| !b.vars.is_empty()).collect();
        let file = QdimacsFile { blocks, matrix: cnf };
        let text = dimacs::write_qdimacs(&file);
        let parsed = dimacs::parse_qdimacs(&text).unwrap();
        prop_assert_eq!(&file.blocks, &parsed.blocks);
        prop_assert_eq!(file.matrix.clauses(), parsed.matrix.clauses());
    }
}
