//! Randomised property tests for clauses, CNF and the DIMACS-family
//! parsers, driven by the deterministic workspace [`Rng`].

use hqs_base::{Assignment, Lit, Rng, TruthValue, Var};
use hqs_cnf::{dimacs, Clause, Cnf};

const CASES: u64 = 300;

fn random_lit(rng: &mut Rng, max_var: u32) -> Lit {
    Lit::new(Var::new(rng.gen_range(0..max_var)), rng.gen_bool(0.5))
}

fn random_clause(rng: &mut Rng, max_var: u32) -> Clause {
    let len = rng.gen_range(0..6usize);
    Clause::from_lits((0..len).map(|_| random_lit(rng, max_var)))
}

fn random_cnf(rng: &mut Rng, max_var: u32) -> Cnf {
    let mut cnf = Cnf::new(max_var);
    for _ in 0..rng.gen_range(0..12usize) {
        cnf.add_clause(random_clause(rng, max_var));
    }
    cnf
}

fn random_assignment(rng: &mut Rng, max_var: u32) -> Assignment {
    (0..max_var)
        .map(|i| (Var::new(i), rng.gen_bool(0.5)))
        .collect()
}

/// DIMACS write/parse round-trips exactly.
#[test]
fn dimacs_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let cnf = random_cnf(&mut rng, 8);
        let text = dimacs::write_dimacs(&cnf);
        let parsed = dimacs::parse_dimacs(&text).expect("writer output must parse");
        assert_eq!(cnf.clauses(), parsed.clauses(), "seed {seed}");
        assert_eq!(cnf.num_vars(), parsed.num_vars(), "seed {seed}");
    }
}

/// Clause normalisation is idempotent and order-insensitive.
#[test]
fn clause_normalisation() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let mut lits: Vec<Lit> = (0..rng.gen_range(0..8usize))
            .map(|_| random_lit(&mut rng, 6))
            .collect();
        let a = Clause::from_lits(lits.clone());
        lits.reverse();
        let b = Clause::from_lits(lits);
        assert_eq!(&a, &b, "seed {seed}");
        assert_eq!(
            Clause::from_lits(a.lits().iter().copied()),
            b,
            "seed {seed}"
        );
    }
}

/// Resolution: the resolvent is implied by its parents (any model of
/// both parents satisfies the resolvent).
#[test]
fn resolution_is_sound() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let c1 = random_clause(&mut rng, 5);
        let c2 = random_clause(&mut rng, 5);
        let pivot = Var::new(rng.gen_range(0..5u32));
        let assignment = random_assignment(&mut rng, 5);
        if let Some(resolvent) = c1.resolve(&c2, pivot) {
            let sat = |c: &Clause| c.evaluate(&assignment) == TruthValue::True;
            if sat(&c1) && sat(&c2) {
                assert!(
                    sat(&resolvent) || resolvent.is_tautology(),
                    "seed {seed}: resolvent {resolvent:?} falsified; parents {c1:?}, {c2:?}"
                );
            }
        }
    }
}

/// Subsumption: if c subsumes d, every model of c satisfies d.
#[test]
fn subsumption_is_semantic() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let c = random_clause(&mut rng, 5);
        let d = random_clause(&mut rng, 5);
        let assignment = random_assignment(&mut rng, 5);
        if c.subsumes(&d) && c.evaluate(&assignment) == TruthValue::True {
            assert_eq!(d.evaluate(&assignment), TruthValue::True, "seed {seed}");
        }
    }
}

/// apply_assignment preserves the formula's value under any extension
/// of the applied assignment.
#[test]
fn apply_assignment_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let cnf = random_cnf(&mut rng, 6);
        let full = random_assignment(&mut rng, 6);
        let mut partial = Assignment::new();
        let mut combined = Assignment::new();
        for i in 0..6u32 {
            let var = Var::new(i);
            let fallback = full.value(var).to_bool().unwrap_or(false);
            if rng.gen_bool(0.5) {
                let b = rng.gen_bool(0.5);
                partial.assign(var, b);
                combined.assign(var, b);
            } else {
                combined.assign(var, fallback);
            }
        }
        let mut reduced = cnf.clone();
        reduced.apply_assignment(&partial);
        assert_eq!(
            reduced.evaluate(&combined),
            cnf.evaluate(&combined),
            "seed {seed}"
        );
    }
}

/// QDIMACS round-trip through the writer.
#[test]
fn qdimacs_roundtrip() {
    use hqs_cnf::{QdimacsFile, QuantBlock, Quantifier};
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + seed);
        let cnf = random_cnf(&mut rng, 6);
        let split = rng.gen_range(0..6u32);
        let blocks = vec![
            QuantBlock {
                quantifier: Quantifier::Universal,
                vars: (0..split).map(Var::new).collect(),
            },
            QuantBlock {
                quantifier: Quantifier::Existential,
                vars: (split..6).map(Var::new).collect(),
            },
        ];
        let blocks: Vec<QuantBlock> = blocks.into_iter().filter(|b| !b.vars.is_empty()).collect();
        let file = QdimacsFile {
            blocks,
            matrix: cnf,
        };
        let text = dimacs::write_qdimacs(&file);
        let parsed = dimacs::parse_qdimacs(&text).expect("writer output must parse");
        assert_eq!(&file.blocks, &parsed.blocks, "seed {seed}");
        assert_eq!(
            file.matrix.clauses(),
            parsed.matrix.clauses(),
            "seed {seed}"
        );
    }
}
