//! CNF formulas and DIMACS-family I/O for the HQS DQBF solver stack.
//!
//! The crate provides:
//!
//! * [`Clause`] — a normalised disjunction of literals,
//! * [`Cnf`] — a conjunction of clauses with a variable budget,
//! * [`dimacs`] — readers and writers for plain DIMACS CNF, QDIMACS (QBF)
//!   and DQDIMACS (DQBF with `d`-lines, the format used by iDQ and HQS).
//!
//! # Examples
//!
//! ```
//! use hqs_base::{Lit, Var};
//! use hqs_cnf::{Clause, Cnf};
//!
//! let x = Var::new(0);
//! let y = Var::new(1);
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause(Clause::from_lits([Lit::positive(x), Lit::negative(y)]));
//! cnf.add_clause(Clause::from_lits([Lit::positive(y)]));
//! assert_eq!(cnf.clauses().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
mod cnf;
pub mod dimacs;

pub use clause::Clause;
pub use cnf::Cnf;
pub use dimacs::{DqdimacsFile, ParseError, QdimacsFile, QuantBlock, Quantifier};
