//! Readers and writers for the DIMACS family of formats.
//!
//! Three dialects are supported:
//!
//! * **DIMACS CNF** — `p cnf <vars> <clauses>` followed by clauses.
//! * **QDIMACS** — DIMACS plus a quantifier prefix of `a … 0` / `e … 0`
//!   lines describing alternating blocks.
//! * **DQDIMACS** — the DQBF extension used by iDQ and HQS: in addition to
//!   `a`/`e` lines, a `d y x₁ … xₖ 0` line declares the existential `y`
//!   with the explicit dependency set `{x₁, …, xₖ}`. An `e` line keeps the
//!   QDIMACS meaning: its variables depend on all universals declared so
//!   far.
//!
//! # Examples
//!
//! ```
//! use hqs_cnf::dimacs;
//!
//! let text = "p cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n3 1 0\n-4 2 0\n";
//! let file = dimacs::parse_dqdimacs(text)?;
//! assert_eq!(file.universals.len(), 2);
//! assert_eq!(file.existentials.len(), 2);
//! assert_eq!(file.matrix.clauses().len(), 2);
//! # Ok::<(), hqs_cnf::ParseError>(())
//! ```

use crate::{Clause, Cnf};
use hqs_base::{Lit, Var, VarSet};
use std::fmt;
use std::fmt::Write as _;

/// The kind of a quantifier block in a QBF prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Quantifier {
    /// Universal quantification (`a` line).
    Universal,
    /// Existential quantification (`e` line).
    Existential,
}

impl Quantifier {
    /// Returns the opposite quantifier.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Quantifier::Universal => Quantifier::Existential,
            Quantifier::Existential => Quantifier::Universal,
        }
    }
}

/// One block of equally-quantified variables in a QBF prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuantBlock {
    /// The block's quantifier.
    pub quantifier: Quantifier,
    /// The variables of the block, in declaration order.
    pub vars: Vec<Var>,
}

/// A parsed QDIMACS file.
#[derive(Clone, Debug)]
pub struct QdimacsFile {
    /// Quantifier blocks, outermost first. Adjacent equal quantifiers are
    /// merged.
    pub blocks: Vec<QuantBlock>,
    /// The matrix.
    pub matrix: Cnf,
}

/// A parsed DQDIMACS file.
#[derive(Clone, Debug)]
pub struct DqdimacsFile {
    /// Universal variables in declaration order.
    pub universals: Vec<Var>,
    /// Existential variables with their dependency sets, in declaration
    /// order. Variables from `e` lines depend on all universals declared
    /// before them.
    pub existentials: Vec<(Var, VarSet)>,
    /// The matrix.
    pub matrix: Cnf,
}

/// Errors produced while parsing DIMACS-family input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The `p cnf` header is missing or malformed.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A token could not be parsed as an integer literal.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A prefix or clause line is not terminated by `0`.
    MissingTerminator {
        /// 1-based line number.
        line: usize,
    },
    /// A variable exceeds the header's variable count.
    VarOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending DIMACS variable number.
        var: i64,
    },
    /// A variable is quantified more than once.
    DuplicateQuantification {
        /// 1-based line number.
        line: usize,
        /// The offending DIMACS variable number.
        var: i64,
    },
    /// A `d` line references a dependency that is not a declared universal.
    UnknownDependency {
        /// 1-based line number.
        line: usize,
        /// The offending DIMACS variable number.
        var: i64,
    },
    /// A prefix line appears after the first clause.
    PrefixAfterClause {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader { line } => {
                write!(f, "line {line}: missing or malformed `p cnf` header")
            }
            ParseError::BadToken { line, token } => {
                write!(f, "line {line}: cannot parse token `{token}`")
            }
            ParseError::MissingTerminator { line } => {
                write!(f, "line {line}: line not terminated by 0")
            }
            ParseError::VarOutOfRange { line, var } => {
                write!(f, "line {line}: variable {var} exceeds header count")
            }
            ParseError::DuplicateQuantification { line, var } => {
                write!(f, "line {line}: variable {var} quantified twice")
            }
            ParseError::UnknownDependency { line, var } => {
                write!(
                    f,
                    "line {line}: dependency {var} is not a declared universal"
                )
            }
            ParseError::PrefixAfterClause { line } => {
                write!(f, "line {line}: quantifier line after first clause")
            }
        }
    }
}

impl std::error::Error for ParseError {}

struct Tokens<'a> {
    line: usize,
    items: Vec<&'a str>,
}

/// Parsed header `(num_vars, num_clauses)` plus the remaining token lines.
type TokenizedInput<'a> = (Option<(u32, usize)>, Vec<Tokens<'a>>);

fn tokenize(text: &str) -> Result<TokenizedInput<'_>, ParseError> {
    let mut header = None;
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") || header.is_some() {
                return Err(ParseError::BadHeader { line });
            }
            let vars: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(ParseError::BadHeader { line })?;
            let clauses: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(ParseError::BadHeader { line })?;
            if parts.next().is_some() {
                return Err(ParseError::BadHeader { line });
            }
            header = Some((vars, clauses));
            continue;
        }
        lines.push(Tokens {
            line,
            items: trimmed.split_whitespace().collect(),
        });
    }
    Ok((header, lines))
}

fn parse_ints(tokens: &Tokens<'_>, skip: usize) -> Result<Vec<i64>, ParseError> {
    let mut values = Vec::with_capacity(tokens.items.len().saturating_sub(skip));
    for token in &tokens.items[skip..] {
        let value: i64 = token.parse().map_err(|_| ParseError::BadToken {
            line: tokens.line,
            token: (*token).to_string(),
        })?;
        values.push(value);
    }
    if values.last() != Some(&0) {
        return Err(ParseError::MissingTerminator { line: tokens.line });
    }
    values.pop();
    Ok(values)
}

fn check_var(value: i64, num_vars: u32, line: usize) -> Result<Var, ParseError> {
    let magnitude = value.unsigned_abs();
    if value == 0 || magnitude > u64::from(num_vars) {
        return Err(ParseError::VarOutOfRange { line, var: value });
    }
    Lit::from_dimacs(value)
        .map(Lit::var)
        .ok_or(ParseError::VarOutOfRange { line, var: value })
}

/// Validates a clause literal and converts it, reporting out-of-range or
/// zero values as [`ParseError::VarOutOfRange`].
fn check_lit(value: i64, num_vars: u32, line: usize) -> Result<Lit, ParseError> {
    check_var(value, num_vars, line)?;
    Lit::from_dimacs(value).ok_or(ParseError::VarOutOfRange { line, var: value })
}

/// Parses a plain DIMACS CNF document.
///
/// # Errors
///
/// Returns a [`ParseError`] if the header is missing, a token is not an
/// integer, a clause is unterminated, or a variable exceeds the header
/// count.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseError> {
    let (header, lines) = tokenize(text)?;
    let (num_vars, _) = header.ok_or(ParseError::BadHeader { line: 1 })?;
    let mut cnf = Cnf::new(num_vars);
    for tokens in &lines {
        let values = parse_ints(tokens, 0)?;
        let mut lits = Vec::with_capacity(values.len());
        for value in values {
            lits.push(check_lit(value, num_vars, tokens.line)?);
        }
        cnf.add_clause(Clause::from_lits(lits));
    }
    Ok(cnf)
}

/// Parses a QDIMACS document.
///
/// Free variables (mentioned in the matrix but not quantified) are *not*
/// implicitly bound; callers decide how to treat them (HQS treats them as
/// outermost existentials).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input; see the variants for the
/// conditions.
pub fn parse_qdimacs(text: &str) -> Result<QdimacsFile, ParseError> {
    let (header, lines) = tokenize(text)?;
    let (num_vars, _) = header.ok_or(ParseError::BadHeader { line: 1 })?;
    let mut blocks: Vec<QuantBlock> = Vec::new();
    let mut matrix = Cnf::new(num_vars);
    let mut quantified = VarSet::with_capacity(num_vars);
    let mut in_matrix = false;
    for tokens in &lines {
        match tokens.items.first().copied() {
            Some(kind @ ("a" | "e")) => {
                if in_matrix {
                    return Err(ParseError::PrefixAfterClause { line: tokens.line });
                }
                let quantifier = if kind == "a" {
                    Quantifier::Universal
                } else {
                    Quantifier::Existential
                };
                let values = parse_ints(tokens, 1)?;
                let mut vars = Vec::with_capacity(values.len());
                for value in values {
                    let var = check_var(value, num_vars, tokens.line)?;
                    if !quantified.insert(var) {
                        return Err(ParseError::DuplicateQuantification {
                            line: tokens.line,
                            var: value,
                        });
                    }
                    vars.push(var);
                }
                match blocks.last_mut() {
                    Some(last) if last.quantifier == quantifier => last.vars.extend(vars),
                    _ => blocks.push(QuantBlock { quantifier, vars }),
                }
            }
            _ => {
                in_matrix = true;
                let values = parse_ints(tokens, 0)?;
                let mut lits = Vec::with_capacity(values.len());
                for value in values {
                    lits.push(check_lit(value, num_vars, tokens.line)?);
                }
                matrix.add_clause(Clause::from_lits(lits));
            }
        }
    }
    Ok(QdimacsFile { blocks, matrix })
}

/// Parses a DQDIMACS document (`a`/`e`/`d` prefix lines).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input; see the variants for the
/// conditions.
pub fn parse_dqdimacs(text: &str) -> Result<DqdimacsFile, ParseError> {
    let (header, lines) = tokenize(text)?;
    let (num_vars, _) = header.ok_or(ParseError::BadHeader { line: 1 })?;
    let mut universals: Vec<Var> = Vec::new();
    let mut universal_set = VarSet::with_capacity(num_vars);
    let mut existentials: Vec<(Var, VarSet)> = Vec::new();
    let mut matrix = Cnf::new(num_vars);
    let mut quantified = VarSet::with_capacity(num_vars);
    let mut in_matrix = false;
    for tokens in &lines {
        match tokens.items.first().copied() {
            Some(kind @ ("a" | "e" | "d")) => {
                if in_matrix {
                    return Err(ParseError::PrefixAfterClause { line: tokens.line });
                }
                let values = parse_ints(tokens, 1)?;
                match kind {
                    "a" => {
                        for value in values {
                            let var = check_var(value, num_vars, tokens.line)?;
                            if !quantified.insert(var) {
                                return Err(ParseError::DuplicateQuantification {
                                    line: tokens.line,
                                    var: value,
                                });
                            }
                            universal_set.insert(var);
                            universals.push(var);
                        }
                    }
                    "e" => {
                        for value in values {
                            let var = check_var(value, num_vars, tokens.line)?;
                            if !quantified.insert(var) {
                                return Err(ParseError::DuplicateQuantification {
                                    line: tokens.line,
                                    var: value,
                                });
                            }
                            existentials.push((var, universal_set.clone()));
                        }
                    }
                    _ => {
                        let mut iter = values.into_iter();
                        let head = iter
                            .next()
                            .ok_or(ParseError::MissingTerminator { line: tokens.line })?;
                        let var = check_var(head, num_vars, tokens.line)?;
                        if !quantified.insert(var) {
                            return Err(ParseError::DuplicateQuantification {
                                line: tokens.line,
                                var: head,
                            });
                        }
                        let mut deps = VarSet::with_capacity(num_vars);
                        for value in iter {
                            let dep = check_var(value, num_vars, tokens.line)?;
                            if !universal_set.contains(dep) {
                                return Err(ParseError::UnknownDependency {
                                    line: tokens.line,
                                    var: value,
                                });
                            }
                            deps.insert(dep);
                        }
                        existentials.push((var, deps));
                    }
                }
            }
            _ => {
                in_matrix = true;
                let values = parse_ints(tokens, 0)?;
                let mut lits = Vec::with_capacity(values.len());
                for value in values {
                    lits.push(check_lit(value, num_vars, tokens.line)?);
                }
                matrix.add_clause(Clause::from_lits(lits));
            }
        }
    }
    Ok(DqdimacsFile {
        universals,
        existentials,
        matrix,
    })
}

/// Renders a CNF as a DIMACS document.
#[must_use]
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.clauses().len());
    write_clauses(&mut out, cnf);
    out
}

/// Renders a QDIMACS document.
#[must_use]
pub fn write_qdimacs(file: &QdimacsFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        file.matrix.num_vars(),
        file.matrix.clauses().len()
    );
    for block in &file.blocks {
        let kind = match block.quantifier {
            Quantifier::Universal => 'a',
            Quantifier::Existential => 'e',
        };
        let _ = write!(out, "{kind}");
        for var in &block.vars {
            let _ = write!(out, " {}", var.to_dimacs());
        }
        let _ = writeln!(out, " 0");
    }
    write_clauses(&mut out, &file.matrix);
    out
}

/// Renders a DQDIMACS document. All existentials are written with explicit
/// `d` lines.
#[must_use]
pub fn write_dqdimacs(file: &DqdimacsFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        file.matrix.num_vars(),
        file.matrix.clauses().len()
    );
    if !file.universals.is_empty() {
        let _ = write!(out, "a");
        for var in &file.universals {
            let _ = write!(out, " {}", var.to_dimacs());
        }
        let _ = writeln!(out, " 0");
    }
    for (var, deps) in &file.existentials {
        let _ = write!(out, "d {}", var.to_dimacs());
        for dep in deps.iter() {
            let _ = write!(out, " {}", dep.to_dimacs());
        }
        let _ = writeln!(out, " 0");
    }
    write_clauses(&mut out, &file.matrix);
    out
}

fn write_clauses(out: &mut String, cnf: &Cnf) {
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_dimacs() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses().len(), 2);
        assert_eq!(cnf.clauses()[1], Clause::unit(Lit::from_dimacs(3).unwrap()));
    }

    #[test]
    fn parse_clause_spanning_missing_zero_fails() {
        assert_eq!(
            parse_dimacs("p cnf 2 1\n1 2\n"),
            Err(ParseError::MissingTerminator { line: 2 })
        );
    }

    #[test]
    fn header_errors() {
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ParseError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf x 1\n"),
            Err(ParseError::BadHeader { .. })
        ));
    }

    #[test]
    fn out_of_range_var() {
        assert_eq!(
            parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(ParseError::VarOutOfRange { line: 2, var: 2 })
        );
    }

    #[test]
    fn parse_qdimacs_blocks_merge() {
        let f = parse_qdimacs("p cnf 4 1\na 1 0\na 2 0\ne 3 4 0\n1 3 0\n").unwrap();
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.blocks[0].vars.len(), 2);
        assert_eq!(f.blocks[0].quantifier, Quantifier::Universal);
        assert_eq!(f.blocks[1].quantifier, Quantifier::Existential);
    }

    #[test]
    fn qdimacs_duplicate_quantification() {
        assert_eq!(
            parse_qdimacs("p cnf 2 0\na 1 0\ne 1 0\n").unwrap_err(),
            ParseError::DuplicateQuantification { line: 3, var: 1 }
        );
    }

    #[test]
    fn qdimacs_prefix_after_clause() {
        assert_eq!(
            parse_qdimacs("p cnf 2 1\n1 0\na 2 0\n").unwrap_err(),
            ParseError::PrefixAfterClause { line: 3 }
        );
    }

    #[test]
    fn parse_dqdimacs_mixed_e_and_d() {
        let text = "p cnf 5 2\na 1 2 0\ne 3 0\nd 4 1 0\nd 5 0\n3 0\n4 -5 0\n";
        let f = parse_dqdimacs(text).unwrap();
        assert_eq!(f.universals.len(), 2);
        assert_eq!(f.existentials.len(), 3);
        // e-line var depends on both universals
        assert_eq!(f.existentials[0].1.len(), 2);
        // d-line with one dep
        assert_eq!(f.existentials[1].1.len(), 1);
        assert!(f.existentials[1].1.contains(Var::new(0)));
        // d-line with empty deps
        assert!(f.existentials[2].1.is_empty());
    }

    #[test]
    fn dqdimacs_unknown_dependency() {
        assert_eq!(
            parse_dqdimacs("p cnf 3 0\na 1 0\nd 2 3 0\n").unwrap_err(),
            ParseError::UnknownDependency { line: 3, var: 3 }
        );
    }

    #[test]
    fn dqdimacs_roundtrip() {
        let text = "p cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n3 1 0\n-4 2 0\n";
        let f = parse_dqdimacs(text).unwrap();
        let rendered = write_dqdimacs(&f);
        let again = parse_dqdimacs(&rendered).unwrap();
        assert_eq!(f.universals, again.universals);
        assert_eq!(f.existentials, again.existentials);
        assert_eq!(f.matrix.clauses(), again.matrix.clauses());
    }

    #[test]
    fn qdimacs_roundtrip() {
        let text = "p cnf 4 2\na 1 0\ne 2 3 0\na 4 0\n1 -2 0\n3 4 0\n";
        let f = parse_qdimacs(text).unwrap();
        let again = parse_qdimacs(&write_qdimacs(&f)).unwrap();
        assert_eq!(f.blocks, again.blocks);
        assert_eq!(f.matrix.clauses(), again.matrix.clauses());
    }

    #[test]
    fn dimacs_roundtrip() {
        let cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n-3 0\n").unwrap();
        let again = parse_dimacs(&write_dimacs(&cnf)).unwrap();
        assert_eq!(cnf.clauses(), again.clauses());
        assert_eq!(cnf.num_vars(), again.num_vars());
    }

    #[test]
    fn bad_token_reports_line_and_token() {
        assert_eq!(
            parse_dimacs("p cnf 2 1\n1 two 0\n"),
            Err(ParseError::BadToken {
                line: 2,
                token: "two".to_string()
            })
        );
        // The same typed error from a DQDIMACS prefix line.
        assert_eq!(
            parse_dqdimacs("p cnf 2 0\na 1 x 0\n").unwrap_err(),
            ParseError::BadToken {
                line: 2,
                token: "x".to_string()
            }
        );
    }

    #[test]
    fn dqdimacs_prefix_after_clause() {
        assert_eq!(
            parse_dqdimacs("p cnf 2 1\n1 0\nd 2 0\n").unwrap_err(),
            ParseError::PrefixAfterClause { line: 3 }
        );
    }

    #[test]
    fn dqdimacs_duplicate_quantification() {
        // The head of a `d` line collides with an earlier `a` line…
        assert_eq!(
            parse_dqdimacs("p cnf 2 0\na 1 0\nd 1 0\n").unwrap_err(),
            ParseError::DuplicateQuantification { line: 3, var: 1 }
        );
        // …and an `e` line collides with an earlier `d` line.
        assert_eq!(
            parse_dqdimacs("p cnf 3 0\na 1 0\nd 2 1 0\ne 2 0\n").unwrap_err(),
            ParseError::DuplicateQuantification { line: 4, var: 2 }
        );
    }

    #[test]
    fn dqdimacs_out_of_range_vars() {
        // In a dependency list…
        assert_eq!(
            parse_dqdimacs("p cnf 2 0\na 1 0\nd 2 7 0\n").unwrap_err(),
            ParseError::VarOutOfRange { line: 3, var: 7 }
        );
        // …as the `d`-line head, and in a matrix clause.
        assert_eq!(
            parse_dqdimacs("p cnf 2 0\na 1 0\nd 9 1 0\n").unwrap_err(),
            ParseError::VarOutOfRange { line: 3, var: 9 }
        );
        assert_eq!(
            parse_dqdimacs("p cnf 2 1\na 1 0\nd 2 1 0\n1 -5 0\n").unwrap_err(),
            ParseError::VarOutOfRange { line: 4, var: -5 }
        );
    }

    #[test]
    fn dqdimacs_unterminated_prefix_line() {
        assert_eq!(
            parse_dqdimacs("p cnf 2 0\na 1\nd 2 1 0\n").unwrap_err(),
            ParseError::MissingTerminator { line: 2 }
        );
    }

    #[test]
    fn dqdimacs_render_is_idempotent() {
        // Comments and e-lines are normalised away by the first render;
        // after that, write∘parse must be the identity on the text.
        let text =
            "c mixed prefix\np cnf 6 3\na 1 2 0\ne 3 0\nd 4 1 0\nd 5 0\n3 -4 0\n5 1 0\n-6 0\n";
        let f = parse_dqdimacs(text).unwrap();
        let rendered = write_dqdimacs(&f);
        let again = parse_dqdimacs(&rendered).unwrap();
        assert_eq!(write_dqdimacs(&again), rendered);
        assert_eq!(f.universals, again.universals);
        assert_eq!(f.existentials, again.existentials);
        assert_eq!(f.matrix.clauses(), again.matrix.clauses());
        // Variable 6 is free (never quantified) and survives the trip via
        // the header count.
        assert_eq!(again.matrix.num_vars(), 6);
    }

    #[test]
    fn parse_errors_display_their_location() {
        // The typed errors render with their 1-based line for diagnostics.
        let err = parse_dqdimacs("p cnf 2 0\na 1 0\nd 2 7 0\n").unwrap_err();
        assert_eq!(err.to_string(), "line 3: variable 7 exceeds header count");
        let err = parse_dimacs("p cnf 1 1\n1 oops 0\n").unwrap_err();
        assert!(err.to_string().contains("oops"));
    }
}
