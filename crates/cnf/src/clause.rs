//! Clauses: normalised disjunctions of literals.

use hqs_base::{Assignment, Lit, TruthValue, Var, VarSet};
use std::fmt;

/// A clause — a disjunction of literals.
///
/// Clauses are kept *normalised*: literals are sorted by code and duplicate
/// literals are removed. A clause containing both a literal and its negation
/// is a *tautology* (see [`Clause::is_tautology`]); tautologies are kept
/// representable so parsers can report them, but formula-level code usually
/// drops them.
///
/// # Examples
///
/// ```
/// use hqs_base::{Lit, Var};
/// use hqs_cnf::Clause;
///
/// let x = Var::new(0);
/// let c = Clause::from_lits([Lit::negative(x), Lit::positive(x), Lit::negative(x)]);
/// assert!(c.is_tautology());
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates the empty clause (which is unsatisfiable).
    #[must_use]
    pub fn empty() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from literals, sorting and deduplicating them.
    #[must_use]
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        Clause { lits }
    }

    /// Creates a unit clause.
    #[must_use]
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// Creates a binary clause.
    #[must_use]
    pub fn binary(a: Lit, b: Lit) -> Self {
        Clause::from_lits([a, b])
    }

    /// Returns the literals, sorted by code.
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of literals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if this is the empty clause.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains `lit`.
    #[must_use]
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Returns `true` if the clause contains some literal together with its
    /// negation, i.e. is trivially true.
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        self.lits.windows(2).any(|w| w[0].var() == w[1].var())
    }

    /// Returns the set of variables occurring in the clause.
    #[must_use]
    pub fn vars(&self) -> VarSet {
        self.lits.iter().map(|l| l.var()).collect()
    }

    /// Iterates over the variables of the clause (ascending, may repeat for
    /// tautologies).
    pub fn iter_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.lits.iter().map(|l| l.var())
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// Returns [`TruthValue::True`] if some literal is satisfied,
    /// [`TruthValue::False`] if all literals are falsified, and
    /// [`TruthValue::Unassigned`] otherwise.
    #[must_use]
    pub fn evaluate(&self, assignment: &Assignment) -> TruthValue {
        let mut all_false = true;
        for &lit in &self.lits {
            match assignment.lit_value(lit) {
                TruthValue::True => return TruthValue::True,
                TruthValue::False => {}
                TruthValue::Unassigned => all_false = false,
            }
        }
        if all_false {
            TruthValue::False
        } else {
            TruthValue::Unassigned
        }
    }

    /// Returns the clause with `lit` removed (used by resolution and
    /// universal reduction). Returns a clone if `lit` does not occur.
    #[must_use]
    pub fn without(&self, lit: Lit) -> Clause {
        Clause {
            lits: self.lits.iter().copied().filter(|&l| l != lit).collect(),
        }
    }

    /// Returns the resolvent of `self` and `other` on pivot variable `pivot`.
    ///
    /// `self` must contain the positive and `other` the negative pivot
    /// literal (or vice versa); returns `None` if the pivot does not occur in
    /// opposite phases.
    #[must_use]
    pub fn resolve(&self, other: &Clause, pivot: Var) -> Option<Clause> {
        let pos = Lit::positive(pivot);
        let neg = Lit::negative(pivot);
        let (with_pos, with_neg) = if self.contains(pos) && other.contains(neg) {
            (self, other)
        } else if self.contains(neg) && other.contains(pos) {
            (other, self)
        } else {
            return None;
        };
        let lits = with_pos
            .lits
            .iter()
            .copied()
            .filter(|&l| l != pos)
            .chain(with_neg.lits.iter().copied().filter(|&l| l != neg));
        Some(Clause::from_lits(lits))
    }

    /// Returns `true` if every literal of `self` occurs in `other`
    /// (i.e. `self` subsumes `other`).
    #[must_use]
    pub fn subsumes(&self, other: &Clause) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.lits.iter().all(|&l| other.contains(l))
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, lit) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    #[test]
    fn normalisation_sorts_and_dedups() {
        let c = Clause::from_lits([lit(3), lit(-1), lit(3), lit(2)]);
        assert_eq!(c.lits().len(), 3);
        let codes: Vec<u32> = c.lits().iter().map(|l| l.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_lits([lit(1), lit(-1)]).is_tautology());
        assert!(!Clause::from_lits([lit(1), lit(2)]).is_tautology());
        assert!(!Clause::empty().is_tautology());
    }

    #[test]
    fn evaluation() {
        let c = Clause::from_lits([lit(1), lit(-2)]);
        let mut a = Assignment::new();
        assert_eq!(c.evaluate(&a), TruthValue::Unassigned);
        a.assign(Var::new(0), false);
        assert_eq!(c.evaluate(&a), TruthValue::Unassigned);
        a.assign(Var::new(1), true);
        assert_eq!(c.evaluate(&a), TruthValue::False);
        a.assign(Var::new(1), false);
        assert_eq!(c.evaluate(&a), TruthValue::True);
        assert_eq!(
            Clause::empty().evaluate(&Assignment::new()),
            TruthValue::False
        );
    }

    #[test]
    fn resolution() {
        let c1 = Clause::from_lits([lit(1), lit(2)]);
        let c2 = Clause::from_lits([lit(-1), lit(3)]);
        let r = c1.resolve(&c2, Var::new(0)).unwrap();
        assert_eq!(r, Clause::from_lits([lit(2), lit(3)]));
        assert!(c1.resolve(&c2, Var::new(1)).is_none());
        // symmetric
        assert_eq!(c2.resolve(&c1, Var::new(0)).unwrap(), r);
    }

    #[test]
    fn subsumption() {
        let small = Clause::from_lits([lit(1)]);
        let big = Clause::from_lits([lit(1), lit(2)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(Clause::empty().subsumes(&small));
    }

    #[test]
    fn without_removes_lit() {
        let c = Clause::from_lits([lit(1), lit(2)]);
        assert_eq!(c.without(lit(1)), Clause::from_lits([lit(2)]));
        assert_eq!(c.without(lit(5)), c);
    }
}
