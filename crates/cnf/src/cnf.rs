//! CNF formulas.

use crate::Clause;
use hqs_base::{Assignment, Lit, TruthValue, Var, VarSet};
use std::fmt;

/// A formula in conjunctive normal form together with a variable budget.
///
/// `num_vars` is the number of allocated variables `0..num_vars`; clauses
/// may only mention those. New variables (e.g. Tseitin auxiliaries) are
/// allocated with [`Cnf::fresh_var`].
///
/// # Examples
///
/// ```
/// use hqs_base::{Lit, Var};
/// use hqs_cnf::{Clause, Cnf};
///
/// let mut cnf = Cnf::new(1);
/// let x = Var::new(0);
/// let t = cnf.fresh_var();
/// cnf.add_clause(Clause::binary(Lit::positive(x), Lit::positive(t)));
/// assert_eq!(cnf.num_vars(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty CNF over variables `0..num_vars`.
    #[must_use]
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Returns the number of allocated variables.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let var = Var::new(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Raises the variable budget to at least `n`.
    pub fn ensure_num_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause. The variable budget is extended if the clause mentions
    /// variables beyond it.
    pub fn add_clause(&mut self, clause: Clause) {
        for var in clause.iter_vars() {
            self.num_vars = self.num_vars.max(var.bound());
        }
        self.clauses.push(clause);
    }

    /// Convenience: adds a clause built from `lits`.
    pub fn add_lits<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.add_clause(Clause::from_lits(lits));
    }

    /// Returns the clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Returns a mutable handle on the clause vector.
    ///
    /// Callers must not introduce variables beyond
    /// [`num_vars`](Cnf::num_vars); use [`add_clause`](Cnf::add_clause) for
    /// that.
    pub fn clauses_mut(&mut self) -> &mut Vec<Clause> {
        &mut self.clauses
    }

    /// Returns `true` if the formula has no clauses (and is thus trivially
    /// true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Returns `true` if the formula contains the empty clause (and is thus
    /// trivially false).
    #[must_use]
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// Returns the set of variables that actually occur in some clause.
    #[must_use]
    pub fn support(&self) -> VarSet {
        let mut set = VarSet::with_capacity(self.num_vars);
        for clause in &self.clauses {
            set.extend(clause.iter_vars());
        }
        set
    }

    /// Evaluates the formula under a partial assignment.
    #[must_use]
    pub fn evaluate(&self, assignment: &Assignment) -> TruthValue {
        let mut all_true = true;
        for clause in &self.clauses {
            match clause.evaluate(assignment) {
                TruthValue::False => return TruthValue::False,
                TruthValue::True => {}
                TruthValue::Unassigned => all_true = false,
            }
        }
        if all_true {
            TruthValue::True
        } else {
            TruthValue::Unassigned
        }
    }

    /// Removes tautological clauses and duplicate clauses, preserving order
    /// of first occurrence.
    pub fn remove_trivial(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.clauses
            .retain(|c| !c.is_tautology() && seen.insert(c.clone()));
    }

    /// Applies a partial assignment: satisfied clauses are dropped and
    /// falsified literals removed from the remaining clauses.
    pub fn apply_assignment(&mut self, assignment: &Assignment) {
        let mut new_clauses = Vec::with_capacity(self.clauses.len());
        for clause in self.clauses.drain(..) {
            match clause.evaluate(assignment) {
                TruthValue::True => {}
                _ => {
                    let lits = clause
                        .lits()
                        .iter()
                        .copied()
                        .filter(|&l| assignment.lit_value(l) == TruthValue::Unassigned)
                        .collect::<Vec<_>>();
                    new_clauses.push(Clause::from_lits(lits));
                }
            }
        }
        self.clauses = new_clauses;
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new(0);
        for clause in iter {
            cnf.add_clause(clause);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )?;
        for clause in &self.clauses {
            writeln!(f, "  {clause}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    #[test]
    fn budget_tracks_clauses() {
        let mut cnf = Cnf::new(0);
        cnf.add_lits([lit(5)]);
        assert_eq!(cnf.num_vars(), 5);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 5);
        assert_eq!(cnf.num_vars(), 6);
    }

    #[test]
    fn evaluation_and_empty_clause() {
        let mut cnf = Cnf::new(2);
        cnf.add_lits([lit(1), lit(2)]);
        cnf.add_lits([lit(-1)]);
        let mut a = Assignment::new();
        assert_eq!(cnf.evaluate(&a), TruthValue::Unassigned);
        a.assign(Var::new(0), false);
        a.assign(Var::new(1), true);
        assert_eq!(cnf.evaluate(&a), TruthValue::True);
        a.assign(Var::new(0), true);
        assert_eq!(cnf.evaluate(&a), TruthValue::False);

        let mut bad = Cnf::new(0);
        bad.add_clause(Clause::empty());
        assert!(bad.has_empty_clause());
        assert_eq!(bad.evaluate(&Assignment::new()), TruthValue::False);
    }

    #[test]
    fn remove_trivial_dedups_and_drops_tautologies() {
        let mut cnf = Cnf::new(2);
        cnf.add_lits([lit(1), lit(-1)]);
        cnf.add_lits([lit(1), lit(2)]);
        cnf.add_lits([lit(2), lit(1)]);
        cnf.remove_trivial();
        assert_eq!(cnf.clauses().len(), 1);
    }

    #[test]
    fn apply_assignment_simplifies() {
        let mut cnf = Cnf::new(3);
        cnf.add_lits([lit(1), lit(2)]);
        cnf.add_lits([lit(-1), lit(3)]);
        let mut a = Assignment::new();
        a.assign(Var::new(0), true);
        cnf.apply_assignment(&a);
        assert_eq!(cnf.clauses().len(), 1);
        assert_eq!(cnf.clauses()[0], Clause::from_lits([lit(3)]));
    }

    #[test]
    fn support_ignores_unused_vars() {
        let mut cnf = Cnf::new(10);
        cnf.add_lits([lit(2), lit(7)]);
        let sup = cnf.support();
        assert_eq!(sup.len(), 2);
        assert!(sup.contains(Var::new(1)));
        assert!(sup.contains(Var::new(6)));
    }
}
