//! Benchmarks of the DQBF-specific pipeline stages (preprocessing,
//! Theorem-1 elimination, the full main loop) and the ablations DESIGN.md
//! calls out: MaxSAT-minimal vs eliminate-all strategy, unit/pure on/off,
//! gate detection on/off.

use hqs_base::Budget;
use hqs_bench::micro::{BenchmarkId, Criterion};
use hqs_bench::{criterion_group, criterion_main};
use hqs_core::elim::AigDqbf;
use hqs_core::preprocess::preprocess;
use hqs_core::{Dqbf, ElimStrategy, HqsConfig, Session};
use hqs_pec::families::generate;
use hqs_pec::Family;
use std::time::Duration;

fn instance(family: Family, size: u32, boxes: u32) -> Dqbf {
    generate(family, size, boxes, 0, true).dqbf
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqbf/preprocess");
    for (family, size) in [(Family::Adder, 6), (Family::Comp, 5), (Family::C432, 6)] {
        let dqbf = instance(family, size, 2);
        group.bench_with_input(
            BenchmarkId::new("pipeline", format!("{family}_{size}")),
            &dqbf,
            |b, dqbf| b.iter(|| preprocess(dqbf)),
        );
    }
    group.finish();
}

fn bench_universal_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqbf/theorem1");
    for size in [4u32, 6] {
        let dqbf = instance(Family::Adder, size, 2);
        group.bench_with_input(
            BenchmarkId::new("eliminate_universal", size),
            &dqbf,
            |b, dqbf| {
                b.iter(|| {
                    let mut state = AigDqbf::from_dqbf(dqbf);
                    let x = state.universals()[0];
                    state.eliminate_universal(x);
                    state.aig.num_nodes()
                });
            },
        );
    }
    group.finish();
}

fn bench_strategy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqbf/ablation");
    group.sample_size(10);
    let dqbf = instance(Family::Bitcell, 6, 2);
    let configs: [(&str, HqsConfig); 4] = [
        ("paper_default", HqsConfig::default()),
        (
            "eliminate_all",
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..HqsConfig::default()
            },
        ),
        (
            "no_unit_pure",
            HqsConfig {
                unit_pure: false,
                ..HqsConfig::default()
            },
        ),
        (
            "no_preprocess",
            HqsConfig {
                preprocess: false,
                gate_detection: false,
                ..HqsConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::new("hqs", name), &dqbf, |b, dqbf| {
            b.iter(|| {
                // Budget every solve so a pathological configuration cannot
                // hang the benchmark run; Limit outcomes still measure the
                // (bounded) work done.
                let bounded = HqsConfig {
                    budget: Budget::new()
                        .with_timeout(Duration::from_secs(5))
                        .with_node_limit(2_000_000),
                    ..config
                };
                Session::builder()
                    .config(bounded)
                    .build()
                    .expect("bench config is valid")
                    .solve(dqbf)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_universal_elimination,
    bench_strategy_ablation
);
criterion_main!(benches);
