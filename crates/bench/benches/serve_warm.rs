//! Warm-state benchmark of the serve subsystem: one PEC mini-corpus
//! driven twice through a live [`hqs_serve::Server`]. The first pass
//! is cold (every cache empty), the second replays the identical
//! requests against the now-warm verdict/preprocessing/FRAIG caches.
//!
//! Like `engine_batch` this bypasses the Criterion shim: the quantity
//! of interest is the per-request round-trip latency distribution, so
//! the bench reports the cold and warm p50/p95 plus the p50 speedup.
//! Results are written as `BENCH_serve.json` (override the path with
//! the `BENCH_SERVE_JSON` environment variable) so CI can archive and
//! compare them.

use hqs_cnf::dimacs::write_dqdimacs;
use hqs_pec::families::generate;
use hqs_pec::Family;
use hqs_serve::{escape_json, ServeOptions, Server};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engine_batch mini-corpus, rendered to inline DQDIMACS: a spread
/// of families and sizes whose solves are fast enough to sample many
/// round trips but slow enough that a verdict-cache hit is measurable.
fn corpus() -> Vec<(String, String)> {
    let plan = [
        (Family::Adder, 4u32, 2u32),
        (Family::Bitcell, 6, 2),
        (Family::Lookahead, 8, 2),
        (Family::PecXor, 12, 3),
        (Family::Z4, 2, 2),
        (Family::Comp, 4, 2),
        (Family::C432, 4, 2),
    ];
    let mut requests = Vec::new();
    for (family, size, boxes) in plan {
        for (seed, fault) in [(0u64, false), (1, true)] {
            let instance = generate(family, size, boxes, seed, fault);
            let name = format!(
                "{}_n{size}_b{boxes}_s{seed}{}",
                family.name(),
                if fault { "_fault" } else { "" }
            );
            let text = write_dqdimacs(&instance.dqbf.to_file());
            requests.push((name, text));
        }
    }
    requests
}

/// One synchronous round trip: submit the request line, block until
/// the response arrives. Sequential submission keeps latencies clean.
fn round_trip(server: &Server, line: &str) -> Duration {
    let (tx, rx) = mpsc::channel::<()>();
    let sink: hqs_serve::ResponseSink = Arc::new(move |_response: &str| {
        let _ = tx.send(());
    });
    let started = Instant::now();
    server.handle_line(line, &sink);
    rx.recv_timeout(Duration::from_secs(120))
        .expect("serve response within 120 s");
    started.elapsed()
}

fn percentile(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * pct).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

fn pass(server: &Server, requests: &[(String, String)], label: &str) -> (f64, f64) {
    let mut latencies: Vec<Duration> = requests
        .iter()
        .map(|(name, text)| {
            let line = format!(
                "{{\"id\":\"{name}\",\"dqdimacs\":\"{}\",\"timeout_ms\":60000}}",
                escape_json(text)
            );
            round_trip(server, &line)
        })
        .collect();
    latencies.sort();
    let p50 = percentile(&latencies, 0.50);
    let p95 = percentile(&latencies, 0.95);
    println!("  {label}: p50 {p50:.3} ms, p95 {p95:.3} ms");
    (p50, p95)
}

fn main() {
    let requests = corpus();
    println!("serve_warm: {} requests per pass", requests.len());

    let server = Server::start(ServeOptions::default(), None);

    // Warm-up request on a throwaway formula so first-touch effects
    // (page faults, lazy init) don't land on the cold measurement.
    round_trip(
        &server,
        "{\"id\":\"warmup\",\"dqdimacs\":\"p cnf 1 1\\n1 0\\n\"}",
    );

    let (cold_p50, cold_p95) = pass(&server, &requests, "cold");
    let (warm_p50, warm_p95) = pass(&server, &requests, "warm");
    server.shutdown(false);

    let speedup = if warm_p50 > 0.0 {
        cold_p50 / warm_p50
    } else {
        0.0
    };
    println!("  p50 speedup: {speedup:.2}x");

    let mut json = String::new();
    let _ = writeln!(
        json,
        "{{\"bench\":\"serve_warm\",\"requests\":{},\
         \"cold\":{{\"p50_ms\":{cold_p50:.4},\"p95_ms\":{cold_p95:.4}}},\
         \"warm\":{{\"p50_ms\":{warm_p50:.4},\"p95_ms\":{warm_p95:.4}}},\
         \"speedup_p50\":{speedup:.2}}}",
        requests.len()
    );
    let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("warning: cannot write {path}: {err}"),
    }
}
