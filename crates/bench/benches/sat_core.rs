//! SAT-core throughput benchmark: raw CDCL propagations/sec and
//! conflicts/sec on the elimination-style corpus (PEC matrices, i.e. the
//! CNFs the quantifier-elimination checks actually issue, plus classic
//! search-heavy instances), measured cold (fresh solver per instance) and
//! incremental (one warm solver, a stream of assumption queries).
//!
//! Like `engine_batch`, this bypasses the Criterion shim: the quantity of
//! interest is corpus-level throughput, not per-call latency. Results are
//! written as `BENCH_sat.json` (override with `BENCH_SAT_JSON`) so CI can
//! gate on regressions against the committed copy.

use hqs_base::{Lit, Rng, Var};
use hqs_cnf::Cnf;
use hqs_pec::families::generate;
use hqs_pec::Family;
use hqs_sat::Solver;
use std::fmt::Write as _;
use std::time::Instant;

/// Propagations/sec of the pre-arena solver (PR 10 tree: per-clause
/// `Vec<Lit>` heap clauses, vec-of-vecs watch lists, Luby-only restarts)
/// on this exact corpus, measured on the same container that produced
/// the committed `BENCH_sat.json`. Kept so the speedup of the arena
/// rewrite stays visible in the committed artifact; CI gates on the
/// *fresh vs committed* ratio instead, which is machine-independent.
const PRE_ARENA_COLD_PROPS_PER_SEC: f64 = PRE_ARENA[0];
const PRE_ARENA_INCR_PROPS_PER_SEC: f64 = PRE_ARENA[1];
/// `[cold props/s, incremental props/s]`, measured pre-rewrite.
const PRE_ARENA: [f64; 2] = [1.85e6, 1.65e6];

fn pigeonhole(pigeons: i64, holes: i64) -> Cnf {
    let var = |p: i64, h: i64| (p - 1) * holes + h;
    let lit = |v: i64| Lit::from_dimacs(v).expect("non-zero literal");
    let mut cnf = Cnf::new((pigeons * holes) as u32);
    for p in 1..=pigeons {
        cnf.add_lits((1..=holes).map(|h| lit(var(p, h))));
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                cnf.add_lits([lit(-var(p1, h)), lit(-var(p2, h))]);
            }
        }
    }
    cnf
}

fn random_3sat(num_vars: u32, num_clauses: usize, seed: u64) -> Cnf {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cnf = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        cnf.add_lits(
            (0..3).map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))),
        );
    }
    cnf
}

/// The corpus: PEC-family matrices (exactly the CNF shape the
/// elimination loop's SAT checks see) plus pigeonhole and
/// near-threshold random 3-SAT for conflict-heavy search.
fn corpus() -> Vec<(String, Cnf)> {
    let mut instances = Vec::new();
    let plan = [
        (Family::Adder, 6u32, 2u32),
        (Family::Bitcell, 8, 2),
        (Family::Lookahead, 8, 2),
        (Family::Comp, 5, 2),
        (Family::C432, 6, 2),
    ];
    for (family, size, boxes) in plan {
        for (seed, fault) in [(0u64, false), (1, true)] {
            let instance = generate(family, size, boxes, seed, fault);
            instances.push((
                format!(
                    "pec_{}_{size}{}",
                    family.name(),
                    if fault { "_fault" } else { "" }
                ),
                instance.dqbf.matrix().clone(),
            ));
        }
    }
    instances.push(("php_7_6".to_string(), pigeonhole(7, 6)));
    instances.push(("php_8_7".to_string(), pigeonhole(8, 7)));
    for seed in 0..6u64 {
        instances.push((
            format!("rand3sat_140_s{seed}"),
            random_3sat(140, 595, 0xC0FFEE + seed),
        ));
    }
    instances
}

#[derive(Default)]
struct Tally {
    propagations: u64,
    conflicts: u64,
    wall_seconds: f64,
    solved: usize,
}

impl Tally {
    fn props_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.propagations as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn conflicts_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.conflicts as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

fn solver_for(cnf: &Cnf) -> Solver {
    let mut solver = Solver::new();
    solver.add_cnf(cnf);
    solver
}

/// Cold pass: a fresh solver per instance, no assumptions.
fn run_cold(instances: &[(String, Cnf)]) -> Tally {
    let mut tally = Tally::default();
    for (name, cnf) in instances {
        let mut solver = solver_for(cnf);
        let start = Instant::now();
        let result = solver.solve(&[]);
        let wall = start.elapsed().as_secs_f64();
        tally.wall_seconds += wall;
        let stats = solver.stats();
        if std::env::var("BENCH_SAT_VERBOSE").is_ok() {
            println!(
                "    {name}: {:.4}s {} props ({:.2e}/s) {} conflicts",
                wall,
                stats.propagations,
                stats.propagations as f64 / wall,
                stats.conflicts
            );
        }
        tally.propagations += stats.propagations;
        tally.conflicts += stats.conflicts;
        tally.solved += usize::from(result != hqs_sat::SolveResult::Unknown);
    }
    tally
}

/// Incremental pass: one warm solver per instance answering a stream of
/// assumption queries — the `hqs serve` / elimination-check usage
/// profile, where learnt clauses and phases survive between queries.
fn run_incremental(instances: &[(String, Cnf)]) -> Tally {
    const QUERIES: usize = 12;
    let mut tally = Tally::default();
    for (name, cnf) in instances {
        let mut solver = solver_for(cnf);
        let mut rng = Rng::seed_from_u64(0x5EED ^ name.len() as u64);
        let num_vars = cnf.num_vars().max(1);
        for _ in 0..QUERIES {
            let assumptions: Vec<Lit> = (0..3)
                .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
                .collect();
            let before = solver.stats();
            let start = Instant::now();
            let result = solver.solve(&assumptions);
            tally.wall_seconds += start.elapsed().as_secs_f64();
            let stats = solver.stats();
            tally.propagations += stats.propagations - before.propagations;
            tally.conflicts += stats.conflicts - before.conflicts;
            tally.solved += usize::from(result != hqs_sat::SolveResult::Unknown);
        }
    }
    tally
}

fn main() {
    let instances = corpus();
    println!("sat_core: {} instances", instances.len());

    // Warm-up pass so first-touch effects don't land on the measurement.
    let _ = run_cold(&instances);

    let cold = run_cold(&instances);
    let incremental = run_incremental(&instances);

    let mut entries = String::new();
    for (mode, tally, pre) in [
        ("cold", &cold, PRE_ARENA_COLD_PROPS_PER_SEC),
        ("incremental", &incremental, PRE_ARENA_INCR_PROPS_PER_SEC),
    ] {
        println!(
            "  {mode}: {:.3} s wall, {} props ({:.2e}/s), {} conflicts ({:.2e}/s), {} solved",
            tally.wall_seconds,
            tally.propagations,
            tally.props_per_sec(),
            tally.conflicts,
            tally.conflicts_per_sec(),
            tally.solved,
        );
        if !entries.is_empty() {
            entries.push(',');
        }
        let _ = write!(
            entries,
            "{{\"mode\":\"{mode}\",\"wall_s\":{:.6},\"propagations\":{},\
             \"conflicts\":{},\"props_per_sec\":{:.1},\"conflicts_per_sec\":{:.1},\
             \"solved\":{},\"speedup_vs_prearena\":{:.4}}}",
            tally.wall_seconds,
            tally.propagations,
            tally.conflicts,
            tally.props_per_sec(),
            tally.conflicts_per_sec(),
            tally.solved,
            tally.props_per_sec() / pre,
        );
    }
    let json = format!(
        "{{\"schema\":\"hqs-bench-sat/1\",\"instances\":{},\
         \"prearena_cold_props_per_sec\":{PRE_ARENA_COLD_PROPS_PER_SEC:.1},\
         \"prearena_incremental_props_per_sec\":{PRE_ARENA_INCR_PROPS_PER_SEC:.1},\
         \"runs\":[{entries}]}}\n",
        instances.len()
    );
    let path = std::env::var("BENCH_SAT_JSON").unwrap_or_else(|_| "BENCH_sat.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("warning: cannot write {path}: {err}"),
    }
}
