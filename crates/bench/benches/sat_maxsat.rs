//! Micro-benchmarks of the SAT and MaxSAT substrates: CDCL on classic
//! hard/easy instances, and the Eq. (1)/(2)-style elimination-set MaxSAT
//! problems (the paper reports those always solved in < 0.06 s).

use hqs_base::Rng;
use hqs_base::{Lit, Var, VarSet};
use hqs_bench::micro::{BenchmarkId, Criterion};
use hqs_bench::{criterion_group, criterion_main};
use hqs_core::depgraph::DepGraph;
use hqs_core::elimset::minimal_elimination_set;
use hqs_sat::Solver;

fn pigeonhole(pigeons: i64, holes: i64) -> Vec<Vec<i64>> {
    let var = |p: i64, h: i64| (p - 1) * holes + h;
    let mut clauses = Vec::new();
    for p in 1..=pigeons {
        clauses.push((1..=holes).map(|h| var(p, h)).collect());
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    clauses
}

fn random_3sat(num_vars: u32, num_clauses: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let v = rng.gen_range(1..=num_vars) as i64;
                    if rng.gen_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

fn solve(clauses: &[Vec<i64>]) -> hqs_sat::SolveResult {
    let mut solver = Solver::new();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&v| Lit::from_dimacs(v).unwrap()));
    }
    solver.solve(&[])
}

fn bench_cdcl(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/cdcl");
    group.sample_size(20);
    let php = pigeonhole(7, 6);
    group.bench_function("pigeonhole_7_6_unsat", |b| b.iter(|| solve(&php)));
    // Under-constrained (easy SAT) and near-threshold random 3-SAT.
    let easy = random_3sat(150, 450, 1);
    group.bench_function("random3sat_150v_3.0", |b| b.iter(|| solve(&easy)));
    let threshold = random_3sat(100, 426, 2);
    group.bench_function("random3sat_100v_4.26", |b| b.iter(|| solve(&threshold)));
    group.finish();
}

/// Random dependency structures like the PEC instances produce: many
/// existentials with overlapping partial views.
fn elimination_instance(
    num_universals: u32,
    num_existentials: u32,
    seed: u64,
) -> (Vec<Var>, Vec<(Var, VarSet)>) {
    let mut rng = Rng::seed_from_u64(seed);
    let universals: Vec<Var> = (0..num_universals).map(Var::new).collect();
    let existentials: Vec<(Var, VarSet)> = (0..num_existentials)
        .map(|i| {
            let deps: VarSet = universals
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.4))
                .collect();
            (Var::new(num_universals + i), deps)
        })
        .collect();
    (universals, existentials)
}

fn bench_elimination_set_maxsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxsat/elimination_set");
    for (nu, ne) in [(10u32, 6u32), (20, 10), (40, 16)] {
        let (universals, existentials) = elimination_instance(nu, ne, 99);
        let graph = DepGraph::new(&existentials);
        let cycles = graph.binary_cycles();
        group.bench_with_input(
            BenchmarkId::new("minimal_set", format!("{nu}u_{ne}e")),
            &cycles,
            |b, cycles| {
                b.iter(|| minimal_elimination_set(&universals, cycles, |_| 1));
            },
        );
    }
    group.finish();
}

fn bench_totalizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxsat/totalizer");
    for n in [16u32, 64] {
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = Solver::new();
                let inputs: Vec<Lit> = (0..n).map(|_| Lit::positive(solver.new_var())).collect();
                hqs_maxsat::Totalizer::encode(&mut solver, &inputs)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cdcl,
    bench_elimination_set_maxsat,
    bench_totalizer
);
criterion_main!(benches);
