//! End-to-end solver benchmarks per PEC family — the micro-bench view of
//! the Table I comparison: HQS vs the instantiation baseline on one
//! representative instance per family (sizes kept small enough that the
//! baseline finishes, so both sides measure actual work).

use hqs_base::Budget;
use hqs_bench::micro::{BenchmarkId, Criterion};
use hqs_bench::{criterion_group, criterion_main};
use hqs_core::{HqsConfig, Session};
use hqs_idq::InstantiationSolver;
use std::time::Duration;

fn budget() -> Budget {
    Budget::new()
        .with_timeout(Duration::from_secs(5))
        .with_node_limit(2_000_000)
}

fn bounded_hqs() -> Session {
    Session::builder()
        .config(HqsConfig {
            budget: budget(),
            ..HqsConfig::default()
        })
        .build()
        .expect("bench config is valid")
}
use hqs_pec::families::generate;
use hqs_pec::Family;

fn bench_families_hqs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pec/hqs");
    group.sample_size(10);
    let plan = [
        (Family::Adder, 4u32, 2u32),
        (Family::Bitcell, 6, 2),
        (Family::Lookahead, 8, 2),
        (Family::PecXor, 12, 3),
        (Family::Z4, 2, 2),
        (Family::Comp, 4, 2),
        (Family::C432, 4, 2),
    ];
    for (family, size, boxes) in plan {
        let sat = generate(family, size, boxes, 0, false).dqbf;
        let unsat = generate(family, size, boxes, 1, true).dqbf;
        group.bench_with_input(
            BenchmarkId::new(family.name(), "carved"),
            &sat,
            |b, dqbf| b.iter(|| bounded_hqs().solve(dqbf)),
        );
        group.bench_with_input(
            BenchmarkId::new(family.name(), "faulted"),
            &unsat,
            |b, dqbf| b.iter(|| bounded_hqs().solve(dqbf)),
        );
    }
    group.finish();
}

fn bench_head_to_head(c: &mut Criterion) {
    // Small instances where the baseline still terminates: the per-family
    // gap here is the micro version of Fig. 4.
    let mut group = c.benchmark_group("pec/head_to_head");
    group.sample_size(10);
    let plan = [
        (Family::Adder, 2u32, 1u32),
        (Family::PecXor, 6, 2),
        (Family::Comp, 2, 1),
    ];
    for (family, size, boxes) in plan {
        let dqbf = generate(family, size, boxes, 0, true).dqbf;
        group.bench_with_input(BenchmarkId::new(family.name(), "hqs"), &dqbf, |b, dqbf| {
            b.iter(|| bounded_hqs().solve(dqbf))
        });
        group.bench_with_input(
            BenchmarkId::new(family.name(), "idq_style"),
            &dqbf,
            |b, dqbf| {
                b.iter(|| {
                    let mut solver = InstantiationSolver::new();
                    solver.set_budget(budget());
                    solver.solve(dqbf)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_families_hqs, bench_head_to_head);
criterion_main!(benches);
