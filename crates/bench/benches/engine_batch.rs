//! Batch-scheduler scaling benchmark: one PEC mini-corpus driven through
//! `hqs_engine::run_batch` at 1, 2 and 4 workers.
//!
//! Unlike the other bench targets this one measures *throughput scaling*
//! rather than single-kernel latency, so it bypasses the Criterion shim
//! and reports whole-batch wall time per worker count, plus the speedup
//! relative to the single-worker run. Results are written as
//! `BENCH_engine.json` (override the path with the `BENCH_ENGINE_JSON`
//! environment variable) so CI can archive and compare them.

use hqs_base::CancelToken;
use hqs_engine::{run_batch, BatchJob, BatchOptions};
use hqs_pec::families::generate;
use hqs_pec::Family;
use std::fmt::Write as _;
use std::time::Duration;

/// One representative mini-corpus: a spread of families and sizes whose
/// individual solve times are large enough (milliseconds) that worker
/// scaling, not scheduler overhead, dominates the measurement.
fn corpus() -> Vec<BatchJob> {
    let plan = [
        (Family::Adder, 4u32, 2u32),
        (Family::Bitcell, 6, 2),
        (Family::Lookahead, 8, 2),
        (Family::PecXor, 12, 3),
        (Family::Z4, 2, 2),
        (Family::Comp, 4, 2),
        (Family::C432, 4, 2),
    ];
    let mut jobs = Vec::new();
    for (family, size, boxes) in plan {
        for (seed, fault) in [(0u64, false), (1, true)] {
            let instance = generate(family, size, boxes, seed, fault);
            jobs.push(BatchJob {
                name: format!(
                    "{}_n{size}_b{boxes}_s{seed}{}",
                    family.name(),
                    if fault { "_fault" } else { "" }
                ),
                dqbf: instance.dqbf,
            });
        }
    }
    jobs
}

struct Run {
    workers: usize,
    wall_seconds: f64,
    cpu_seconds: f64,
    solved: usize,
    unsolved: usize,
}

fn run_at(jobs: &[BatchJob], workers: usize) -> Run {
    let opts = BatchOptions {
        workers,
        job_timeout: Some(Duration::from_secs(10)),
        node_limit: Some(2_000_000),
        cancel: CancelToken::new(),
        ..BatchOptions::default()
    };
    let summary = run_batch(jobs, &opts, &|_| {});
    Run {
        workers,
        wall_seconds: summary.wall_seconds,
        cpu_seconds: summary.records.iter().filter_map(|r| r.cpu_seconds).sum(),
        solved: summary.sat + summary.unsat,
        unsolved: summary.unsolved + summary.failed,
    }
}

fn main() {
    let jobs = corpus();
    println!("engine_batch: {} jobs", jobs.len());

    // Warm-up pass so first-touch effects (page faults, lazy init) don't
    // land on the single-worker measurement.
    let _ = run_at(&jobs, 1);

    let runs: Vec<Run> = [1usize, 2, 4].iter().map(|&w| run_at(&jobs, w)).collect();
    let base = runs.first().map_or(0.0, |r| r.wall_seconds);

    let mut entries = String::new();
    for run in &runs {
        let speedup = if run.wall_seconds > 0.0 {
            base / run.wall_seconds
        } else {
            0.0
        };
        println!(
            "  {} worker(s): {:.3} s wall, {:.3} s cpu, {} solved, {} unsolved ({speedup:.2}x)",
            run.workers, run.wall_seconds, run.cpu_seconds, run.solved, run.unsolved
        );
        if !entries.is_empty() {
            entries.push(',');
        }
        let _ = write!(
            entries,
            "{{\"workers\":{},\"wall_s\":{:.6},\"cpu_s\":{:.6},\"solved\":{},\
             \"unsolved\":{},\"speedup\":{speedup:.4}}}",
            run.workers, run.wall_seconds, run.cpu_seconds, run.solved, run.unsolved
        );
    }
    let json = format!(
        "{{\"bench\":\"engine_batch\",\"jobs\":{},\"runs\":[{entries}]}}\n",
        jobs.len()
    );
    let path =
        std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("warning: cannot write {path}: {err}"),
    }
}
