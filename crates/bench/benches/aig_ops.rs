//! Micro-benchmarks of the AIG primitives HQS's speed rests on:
//! construction, cofactor/compose, quantification and the Theorem-6
//! unit/pure traversal.

use hqs_aig::{Aig, AigEdge};
use hqs_base::Var;
use hqs_bench::micro::{BenchmarkId, Criterion};
use hqs_bench::{criterion_group, criterion_main};

/// Builds the AIG of an n-bit ripple-carry adder's final carry — a cone
/// with realistic reconvergence.
fn adder_carry(aig: &mut Aig, bits: u32) -> AigEdge {
    let mut carry = aig.input(Var::new(0));
    for i in 0..bits {
        let a = aig.input(Var::new(1 + 2 * i));
        let b = aig.input(Var::new(2 + 2 * i));
        let ab = aig.xor(a, b);
        let g1 = aig.and(a, b);
        let g2 = aig.and(ab, carry);
        carry = aig.or(g1, g2);
    }
    carry
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("aig/construction");
    for bits in [16u32, 64, 256] {
        group.bench_with_input(BenchmarkId::new("adder_carry", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut aig = Aig::new();
                adder_carry(&mut aig, bits)
            });
        });
    }
    group.finish();
}

fn bench_cofactor_and_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("aig/substitution");
    for bits in [16u32, 64] {
        let mut aig = Aig::new();
        let root = adder_carry(&mut aig, bits);
        let mid = Var::new(bits); // a middle input
        group.bench_with_input(BenchmarkId::new("cofactor", bits), &bits, |b, _| {
            b.iter(|| {
                let (r, mut aig) = aig_clone(&aig, root);
                aig.cofactor(r, mid, true)
            });
        });
        group.bench_with_input(BenchmarkId::new("compose", bits), &bits, |b, _| {
            b.iter(|| {
                let (r, mut aig) = aig_clone(&aig, root);
                let x = aig.input(Var::new(1));
                let y = aig.input(Var::new(2));
                let g = aig.xor(x, y);
                aig.compose(r, mid, g)
            });
        });
    }
    group.finish();
}

fn bench_quantification(c: &mut Criterion) {
    let mut group = c.benchmark_group("aig/quantification");
    for bits in [16u32, 64] {
        let mut aig = Aig::new();
        let root = adder_carry(&mut aig, bits);
        let mid = Var::new(bits);
        group.bench_with_input(BenchmarkId::new("exists", bits), &bits, |b, _| {
            b.iter(|| {
                let (r, mut aig) = aig_clone(&aig, root);
                aig.exists(r, mid)
            });
        });
        group.bench_with_input(BenchmarkId::new("forall", bits), &bits, |b, _| {
            b.iter(|| {
                let (r, mut aig) = aig_clone(&aig, root);
                aig.forall(r, mid)
            });
        });
    }
    group.finish();
}

fn bench_unit_pure(c: &mut Criterion) {
    // The paper reports the syntactic check at <4% of runtime; it must be
    // linear and fast.
    let mut group = c.benchmark_group("aig/unit_pure");
    for bits in [16u32, 64, 256] {
        let mut aig = Aig::new();
        let root = adder_carry(&mut aig, bits);
        group.bench_with_input(BenchmarkId::new("traversal", bits), &bits, |b, _| {
            b.iter(|| aig.unit_pure(root));
        });
    }
    group.finish();
}

fn bench_fraig(c: &mut Criterion) {
    let mut group = c.benchmark_group("aig/fraig");
    group.sample_size(20);
    for bits in [8u32, 16] {
        let mut aig = Aig::new();
        let root = adder_carry(&mut aig, bits);
        group.bench_with_input(BenchmarkId::new("sweep", bits), &bits, |b, _| {
            b.iter(|| {
                let (r, mut aig) = aig_clone(&aig, root);
                aig.fraig(r, 1, 100)
            });
        });
    }
    group.finish();
}

/// Clones the cone of `root` into a fresh manager (benchmarks must not
/// mutate the shared template). Returns `(new_root, new_manager)`.
fn aig_clone(aig: &Aig, root: AigEdge) -> (AigEdge, Aig) {
    let mut fresh = Aig::new();
    let mut map = std::collections::HashMap::new();
    for idx in aig.topo_order(root) {
        let edge = AigEdge::new(idx, false);
        let new_edge = match aig.node(edge) {
            hqs_aig::AigNode::True => Aig::TRUE,
            hqs_aig::AigNode::Input(v) => fresh.input(v),
            hqs_aig::AigNode::And(f0, f1) => {
                let m0: AigEdge = map[&f0.node()];
                let m1: AigEdge = map[&f1.node()];
                fresh.and(
                    m0.xor_complement(f0.is_complemented()),
                    m1.xor_complement(f1.is_complemented()),
                )
            }
        };
        map.insert(idx, new_edge);
    }
    let new_root = map[&root.node()].xor_complement(root.is_complemented());
    (new_root, fresh)
}

criterion_group!(
    benches,
    bench_construction,
    bench_cofactor_and_compose,
    bench_quantification,
    bench_unit_pure,
    bench_fraig
);
criterion_main!(benches);
