//! Micro-benchmarks of the certification layer: DRAT emission from the
//! proof-logging CDCL solver, forward/backward checking in `hqs-proof`,
//! and the proof-format round-trips.

use hqs_base::Lit;
use hqs_bench::micro::{BenchmarkId, Criterion};
use hqs_bench::{criterion_group, criterion_main};
use hqs_cnf::Cnf;
use hqs_proof::{
    check_proof, parse_binary_drat, parse_text_drat, write_binary_drat, write_text_drat, CheckMode,
    Proof,
};
use hqs_sat::{ProofBuffer, SolveResult, Solver, TextDratLogger};

fn pigeonhole(pigeons: i64, holes: i64) -> Cnf {
    let var = |p: i64, h: i64| (p - 1) * holes + h;
    let lit = |v: i64| Lit::from_dimacs(v).expect("non-zero literal");
    let mut cnf = Cnf::new((pigeons * holes) as u32);
    for p in 1..=pigeons {
        cnf.add_lits((1..=holes).map(|h| lit(var(p, h))));
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                cnf.add_lits([lit(-var(p1, h)), lit(-var(p2, h))]);
            }
        }
    }
    cnf
}

/// Solves `cnf` with proof logging and returns the emitted refutation.
fn refute(cnf: &Cnf) -> Proof {
    let buffer = ProofBuffer::new();
    let mut solver = Solver::builder()
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");
    solver.ensure_vars(cnf.num_vars());
    for clause in cnf.clauses() {
        solver.add_clause(clause.lits().iter().copied());
    }
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let text = String::from_utf8(buffer.contents()).expect("utf-8 proof");
    parse_text_drat(&text).expect("well-formed proof")
}

fn solve_logged(cnf: &Cnf, logged: bool) -> SolveResult {
    let mut builder = Solver::builder();
    if logged {
        builder = builder.proof_logger(Box::new(TextDratLogger::new(ProofBuffer::new())));
    }
    let mut solver = builder.build().expect("valid");
    solver.ensure_vars(cnf.num_vars());
    for clause in cnf.clauses() {
        solver.add_clause(clause.lits().iter().copied());
    }
    solver.solve(&[])
}

fn bench_emission(c: &mut Criterion) {
    let mut group = c.benchmark_group("proof/emission");
    group.sample_size(20);
    let php = pigeonhole(7, 6);
    // The price of proof logging itself: the same refutation with the
    // logger detached vs. attached.
    group.bench_function("pigeonhole_7_6_unlogged", |b| {
        b.iter(|| solve_logged(&php, false))
    });
    group.bench_function("pigeonhole_7_6_logged", |b| {
        b.iter(|| solve_logged(&php, true))
    });
    group.finish();
}

fn bench_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("proof/check");
    group.sample_size(20);
    for (pigeons, holes) in [(6i64, 5i64), (7, 6)] {
        let cnf = pigeonhole(pigeons, holes);
        let proof = refute(&cnf);
        let id = format!("pigeonhole_{pigeons}_{holes}");
        group.bench_with_input(BenchmarkId::new("forward", &id), &proof, |b, proof| {
            b.iter(|| check_proof(&cnf, proof, CheckMode::Forward).expect("valid proof"));
        });
        group.bench_with_input(BenchmarkId::new("backward", &id), &proof, |b, proof| {
            b.iter(|| check_proof(&cnf, proof, CheckMode::Backward).expect("valid proof"));
        });
    }
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("proof/format");
    let proof = refute(&pigeonhole(7, 6));
    let text = write_text_drat(&proof);
    let binary = write_binary_drat(&proof);
    group.bench_function("write_text", |b| b.iter(|| write_text_drat(&proof)));
    group.bench_function("parse_text", |b| {
        b.iter(|| parse_text_drat(&text).expect("round-trip"))
    });
    group.bench_function("write_binary", |b| b.iter(|| write_binary_drat(&proof)));
    group.bench_function("parse_binary", |b| {
        b.iter(|| parse_binary_drat(&binary).expect("round-trip"))
    });
    group.finish();
}

criterion_group!(benches, bench_emission, bench_checking, bench_formats);
criterion_main!(benches);
