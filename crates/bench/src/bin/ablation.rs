//! Ablation study over HQS's design choices (the knobs Section III
//! introduces): each configuration runs the same PEC instance set and the
//! table shows what every ingredient buys.
//!
//! Configurations:
//!
//! * `paper`        — HQS as evaluated in the paper (all optimisations),
//! * `all-univ` — eliminate *all* universals (\[10\]'s strategy) instead of
//!   the MaxSAT-minimal set,
//! * `no-unitpure`  — without Theorem-5/6 elimination in the main loop,
//! * `no-gates`     — without Tseitin gate detection,
//! * `no-preproc`   — without any CNF preprocessing,
//! * `initial-sat`  — plus the extended version's up-front SAT call.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin ablation -- --scale smoke --timeout 5
//! ```

#![forbid(unsafe_code)]

use hqs_base::Budget;
use hqs_bench::{parse_args, HQS_NODE_LIMIT};
use hqs_core::{ElimStrategy, HqsConfig, Outcome, Session};
use hqs_pec::benchmark_suite;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, timeout, _) = parse_args(&args);
    let configs: [(&str, HqsConfig); 8] = [
        ("paper", HqsConfig::default()),
        (
            "all-univ",
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..HqsConfig::default()
            },
        ),
        (
            "no-unitpure",
            HqsConfig {
                unit_pure: false,
                ..HqsConfig::default()
            },
        ),
        (
            "no-gates",
            HqsConfig {
                gate_detection: false,
                ..HqsConfig::default()
            },
        ),
        (
            "no-preproc",
            HqsConfig {
                preprocess: false,
                gate_detection: false,
                ..HqsConfig::default()
            },
        ),
        (
            "initial-sat",
            HqsConfig {
                initial_sat_check: true,
                ..HqsConfig::default()
            },
        ),
        (
            "subsume",
            HqsConfig {
                subsumption: true,
                ..HqsConfig::default()
            },
        ),
        (
            "dyn-order",
            HqsConfig {
                dynamic_order: true,
                ..HqsConfig::default()
            },
        ),
    ];
    let instances = benchmark_suite(scale);
    eprintln!(
        "ablation over {} instances at {scale:?} scale, {}s timeout",
        instances.len(),
        timeout.as_secs()
    );
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>10} {:>12}",
        "config", "solved", "SAT", "UNSAT", "unsolved", "time[s]"
    );
    println!("{}", "-".repeat(60));
    let mut verdicts: Vec<Vec<Outcome>> = Vec::new();
    for (name, config) in configs {
        let mut solved = 0usize;
        let mut sat = 0usize;
        let mut unsat = 0usize;
        let mut total = 0.0f64;
        let mut row = Vec::with_capacity(instances.len());
        for instance in &instances {
            let start = Instant::now();
            let mut session = Session::builder()
                .config(HqsConfig {
                    budget: Budget::new()
                        .with_timeout(timeout)
                        .with_node_limit(HQS_NODE_LIMIT),
                    ..config
                })
                .build()
                .unwrap_or_else(|error| panic!("invalid config {name}: {error}"));
            let verdict = session.solve(&instance.dqbf);
            total += start.elapsed().as_secs_f64();
            match verdict {
                Outcome::Sat => {
                    solved += 1;
                    sat += 1;
                }
                Outcome::Unsat => {
                    solved += 1;
                    unsat += 1;
                }
                Outcome::Unknown(_) => {}
            }
            row.push(verdict);
        }
        verdicts.push(row);
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>10} {:>12.2}",
            name,
            solved,
            sat,
            unsat,
            instances.len() - solved,
            total
        );
    }
    // Cross-configuration consistency: no two configs may contradict.
    for i in 0..instances.len() {
        let mut decided: Option<Outcome> = None;
        for row in &verdicts {
            if let v @ (Outcome::Sat | Outcome::Unsat) = row[i] {
                match decided {
                    None => decided = Some(v),
                    Some(prev) => assert_eq!(prev, v, "disagreement on {}", instances[i].name),
                }
            }
        }
    }
    println!("\nall configurations agree on every decided instance ✓");
}
