//! Emits the regenerated PEC benchmark suite as DQDIMACS files, so the
//! instances can be fed to other DQBF solvers (iDQ, DQBDD, …) or archived.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin gen_corpus -- --scale ci --out corpus/
//! ```

#![forbid(unsafe_code)]

use hqs_cnf::dimacs;
use hqs_pec::{benchmark_suite, Scale};
use std::path::PathBuf;

fn main() {
    let mut scale = Scale::Smoke;
    let mut out_dir = PathBuf::from("corpus");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("ci") => Scale::Ci,
                    Some("paper") => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                }
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out takes a path")),
            other => panic!("unknown option {other} (--scale, --out)"),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let instances = benchmark_suite(scale);
    let mut index = String::from("name,family,size,boxes,fault,universals,existentials,clauses\n");
    for instance in &instances {
        let path = out_dir.join(format!("{}.dqdimacs", instance.name));
        let text = dimacs::write_dqdimacs(&instance.dqbf.to_file());
        std::fs::write(&path, text).expect("write instance");
        index.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            instance.name,
            instance.family,
            instance.size,
            instance.num_boxes,
            instance.fault,
            instance.dqbf.universals().len(),
            instance.dqbf.existentials().len(),
            instance.dqbf.matrix().clauses().len(),
        ));
    }
    std::fs::write(out_dir.join("index.csv"), index).expect("write index");
    println!(
        "wrote {} instances to {}",
        instances.len(),
        out_dir.display()
    );
}
