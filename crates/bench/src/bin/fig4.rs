//! Regenerates Fig. 4 of the HQS paper: a log-log scatter of per-instance
//! runtimes, baseline vs HQS, with TO/MO rails.
//!
//! Emits the raw data as CSV on stdout (redirect to a file for plotting)
//! and an ASCII rendition of the scatter on stderr.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin fig4 -- --scale ci > fig4.csv
//! ```

#![forbid(unsafe_code)]

use hqs_bench::{parse_args, render_csv, render_scatter, run_suite_with};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, timeout, initial_sat) = parse_args(&args);
    eprintln!(
        "running PEC suite at {scale:?} scale, {}s per solver per instance",
        timeout.as_secs()
    );
    let runs = run_suite_with(scale, timeout, true, initial_sat);
    print!("{}", render_csv(&runs));
    eprintln!("\nFIG. 4 (regenerated)\n");
    eprintln!("{}", render_scatter(&runs, timeout));
}
