//! Regenerates Table I of the HQS paper: per-family solved/unsolved counts
//! and accumulated runtimes for HQS vs the instantiation-based baseline.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin table1 -- --scale ci --timeout 10
//! ```

#![forbid(unsafe_code)]

use hqs_bench::{parse_args, render_claims, render_table, run_suite_with, tabulate};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, timeout, initial_sat) = parse_args(&args);
    eprintln!(
        "running PEC suite at {scale:?} scale, {}s per solver per instance\
         {}",
        timeout.as_secs(),
        if initial_sat {
            ", with HQS's up-front SAT call"
        } else {
            ""
        }
    );
    let start = std::time::Instant::now();
    let runs = run_suite_with(scale, timeout, true, initial_sat);
    println!("\nTABLE I (regenerated, scaled-down instances — see DESIGN.md)\n");
    println!("{}", render_table(&tabulate(&runs)));
    println!("{}", render_claims(&runs));
    println!(
        "suite wall-clock: {:.1}s for {} instances",
        start.elapsed().as_secs_f64(),
        runs.len()
    );
}
