//! Differential soundness fuzzer: random DQBFs through every decision
//! procedure in the workspace, cross-checked against the exhaustive
//! expansion oracle. Any disagreement is a bug and aborts with a
//! reproducer seed.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin fuzz_dqbf -- --rounds 500 --seed 1
//! ```

#![forbid(unsafe_code)]

use hqs_core::expand::is_satisfiable_by_expansion;
use hqs_core::random::RandomDqbf;
use hqs_core::{DqbfResult, ElimStrategy, HqsConfig, HqsSolver, QbfBackend};
use hqs_idq::InstantiationSolver;

fn main() {
    let mut rounds = 200u64;
    let mut base_seed = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--seed" => base_seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown option {other} (--rounds, --seed)"),
        }
    }
    let configs: Vec<(&str, HqsConfig)> = vec![
        ("paper", HqsConfig::default()),
        (
            "bare",
            HqsConfig {
                preprocess: false,
                gate_detection: false,
                unit_pure: false,
                ..HqsConfig::default()
            },
        ),
        (
            "all-univ",
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..HqsConfig::default()
            },
        ),
        (
            "search-backend",
            HqsConfig {
                qbf_backend: QbfBackend::Search,
                ..HqsConfig::default()
            },
        ),
        (
            "kitchen-sink",
            HqsConfig {
                initial_sat_check: true,
                subsumption: true,
                dynamic_order: true,
                fraig_threshold: 64,
                ..HqsConfig::default()
            },
        ),
    ];
    let mut sat = 0u64;
    let mut unsat = 0u64;
    for round in 0..rounds {
        let seed = base_seed.wrapping_add(round);
        // Vary the distribution with the round for coverage.
        let shape = RandomDqbf {
            num_universals: 1 + (round % 4) as u32,
            num_existentials: 1 + (round % 5) as u32,
            dependency_density: 0.25 + 0.5 * ((round % 3) as f64) / 2.0,
            num_clauses: 2 + (round % 11) as usize,
            max_clause_len: 1 + (round % 3) as usize,
        };
        let dqbf = shape.generate(seed);
        let expected = if is_satisfiable_by_expansion(&dqbf) {
            sat += 1;
            DqbfResult::Sat
        } else {
            unsat += 1;
            DqbfResult::Unsat
        };
        for (name, config) in &configs {
            let got = HqsSolver::with_config(*config).solve(&dqbf);
            assert_eq!(
                got, expected,
                "HQS[{name}] disagrees with the oracle: seed {seed}, shape {shape:?}"
            );
        }
        let got = InstantiationSolver::new().solve(&dqbf);
        assert_eq!(
            got, expected,
            "instantiation baseline disagrees: seed {seed}, shape {shape:?}"
        );
        if (round + 1) % 50 == 0 {
            eprintln!("fuzzed {} instances ({sat} SAT / {unsat} UNSAT)", round + 1);
        }
    }
    println!(
        "fuzzing clean: {rounds} instances, {sat} SAT / {unsat} UNSAT, \
         {} procedures agree with the oracle on all of them",
        configs.len() + 1
    );
}
