//! Differential soundness fuzzer: random DQBFs through every decision
//! procedure in the workspace, cross-checked against the exhaustive
//! expansion oracle. Any disagreement is a bug and aborts with a
//! reproducer seed.
//!
//! ```text
//! cargo run -p hqs-bench --release --bin fuzz_dqbf -- --rounds 500 --seed 1
//! ```
//!
//! With `--certify`, every round additionally runs the certified pipeline
//! ([`Session::solve_certified`](hqs_core::Session::solve_certified)): each
//! SAT verdict must ship a
//! verifying Skolem certificate and each UNSAT verdict a DRAT refutation
//! accepted by the independent `hqs-proof` checker; verdicts are
//! cross-checked against the reference DPLL solver on the expansion CNF
//! and — when the dependency sets form an inclusion chain — against the
//! brute-force QBF evaluator on an equivalent linearised prefix. Every
//! tenth round also corrupts the fresh certificate and asserts rejection.

#![forbid(unsafe_code)]

use hqs_base::Var;
use hqs_cnf::{QdimacsFile, QuantBlock, Quantifier};
use hqs_core::expand::{expand_to_cnf, is_satisfiable_by_expansion};
use hqs_core::random::RandomDqbf;
use hqs_core::{CertifiedOutcome, Dqbf, ElimStrategy, HqsConfig, Outcome, QbfBackend, Session};
use hqs_idq::InstantiationSolver;

fn main() {
    let mut rounds = 200u64;
    let mut base_seed = 0u64;
    let mut certify = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--seed" => base_seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--certify" => certify = true,
            other => panic!("unknown option {other} (--rounds, --seed, --certify)"),
        }
    }
    let configs: Vec<(&str, HqsConfig)> = vec![
        ("paper", HqsConfig::default()),
        (
            "bare",
            HqsConfig {
                preprocess: false,
                gate_detection: false,
                unit_pure: false,
                ..HqsConfig::default()
            },
        ),
        (
            "all-univ",
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..HqsConfig::default()
            },
        ),
        (
            "search-backend",
            HqsConfig {
                qbf_backend: QbfBackend::Search,
                ..HqsConfig::default()
            },
        ),
        (
            "kitchen-sink",
            HqsConfig {
                initial_sat_check: true,
                subsumption: true,
                dynamic_order: true,
                fraig_threshold: 64,
                ..HqsConfig::default()
            },
        ),
    ];
    let mut sat = 0u64;
    let mut unsat = 0u64;
    for round in 0..rounds {
        let seed = base_seed.wrapping_add(round);
        // Vary the distribution with the round for coverage.
        let shape = RandomDqbf {
            num_universals: 1 + (round % 4) as u32,
            num_existentials: 1 + (round % 5) as u32,
            dependency_density: 0.25 + 0.5 * ((round % 3) as f64) / 2.0,
            num_clauses: 2 + (round % 11) as usize,
            max_clause_len: 1 + (round % 3) as usize,
        };
        let dqbf = shape.generate(seed);
        let expected = if is_satisfiable_by_expansion(&dqbf) {
            sat += 1;
            Outcome::Sat
        } else {
            unsat += 1;
            Outcome::Unsat
        };
        for (name, config) in &configs {
            let mut session = Session::builder()
                .config(config.clone())
                .build()
                .unwrap_or_else(|error| panic!("invalid config {name}: {error}"));
            let got = session.solve(&dqbf);
            assert_eq!(
                got, expected,
                "HQS[{name}] disagrees with the oracle: seed {seed}, shape {shape:?}"
            );
        }
        let got = Outcome::from(InstantiationSolver::new().solve(&dqbf));
        assert_eq!(
            got, expected,
            "instantiation baseline disagrees: seed {seed}, shape {shape:?}"
        );
        if certify {
            certify_round(&dqbf, expected, seed, round);
        }
        if (round + 1) % 50 == 0 {
            eprintln!("fuzzed {} instances ({sat} SAT / {unsat} UNSAT)", round + 1);
        }
    }
    println!(
        "fuzzing clean: {rounds} instances, {sat} SAT / {unsat} UNSAT, \
         {} procedures agree with the oracle on all of them{}",
        configs.len() + 1,
        if certify {
            ", every verdict certified and cross-checked"
        } else {
            ""
        }
    );
}

/// Certifies one fuzzed instance end-to-end and cross-checks the verdict
/// against the reference solvers.
fn certify_round(dqbf: &Dqbf, expected: Outcome, seed: u64, round: u64) {
    let mut session = Session::builder()
        .config(HqsConfig {
            certify: true,
            initial_sat_check: round.is_multiple_of(2),
            ..HqsConfig::default()
        })
        .build()
        .unwrap_or_else(|error| panic!("invalid certify config: {error}"));
    let outcome = session
        .solve_certified(dqbf)
        .unwrap_or_else(|err| panic!("certification failed: seed {seed}: {err}"));

    // Reference cross-check 1: DPLL on the expansion CNF.
    let mut bound = dqbf.clone();
    bound.bind_free_vars();
    let (expansion, _) = expand_to_cnf(&bound);
    let dpll_sat = hqs_sat::reference::dpll(&expansion).is_some();
    assert_eq!(
        dpll_sat,
        expected == Outcome::Sat,
        "reference DPLL disagrees on the expansion: seed {seed}"
    );

    // Reference cross-check 2: when the dependency sets form an inclusion
    // chain the DQBF is equivalent to a linear-prefix QBF; evaluate it by
    // brute force.
    if let Some(qbf) = linearise(&bound) {
        assert_eq!(
            hqs_qbf::reference::eval_qdimacs(&qbf),
            expected == Outcome::Sat,
            "reference QBF evaluation disagrees: seed {seed}"
        );
    }

    match outcome {
        CertifiedOutcome::Sat(cert) => {
            assert_eq!(
                expected,
                Outcome::Sat,
                "certified SAT is wrong: seed {seed}"
            );
            // Deliberate corruption must be rejected: a certificate with a
            // missing Skolem function never verifies.
            if round.is_multiple_of(10) && !cert.functions.is_empty() {
                let mut tampered = cert;
                tampered.functions.pop();
                assert!(
                    dqbf.existentials().is_empty() || !tampered.verify(dqbf),
                    "corrupted Skolem certificate accepted: seed {seed}"
                );
            }
        }
        CertifiedOutcome::Unsat(cert) => {
            assert_eq!(
                expected,
                Outcome::Unsat,
                "certified UNSAT is wrong: seed {seed}"
            );
            // Deliberate corruption must be rejected: a wrong universal
            // count never matches the recomputed expansion.
            if round.is_multiple_of(10) {
                let mut tampered = cert;
                tampered.num_universals += 1;
                assert!(
                    !tampered.verify(dqbf),
                    "corrupted refutation certificate accepted: seed {seed}"
                );
            }
        }
        CertifiedOutcome::Limit(e) => {
            panic!("unbudgeted certification hit a limit: seed {seed}: {e:?}")
        }
    }
}

/// Linearises a DQBF with chain-ordered dependency sets into an
/// equivalent QBF prefix; `None` when the sets are incomparable.
fn linearise(dqbf: &Dqbf) -> Option<QdimacsFile> {
    let mut existentials: Vec<Var> = dqbf.existentials().to_vec();
    existentials.sort_by_key(|&y| dqbf.dependencies(y).map_or(0, hqs_base::VarSet::len));
    for pair in existentials.windows(2) {
        let smaller = dqbf.dependencies(pair[0])?;
        let larger = dqbf.dependencies(pair[1])?;
        if !smaller.is_subset(larger) {
            return None;
        }
    }
    // ∀(D₁) ∃Y₁ ∀(D₂∖D₁) ∃Y₂ … ∀(rest): introduce each universal right
    // before the first existential that depends on it.
    let mut blocks: Vec<QuantBlock> = Vec::new();
    let mut placed = hqs_base::VarSet::with_capacity(dqbf.num_vars());
    for &y in &existentials {
        let deps = dqbf.dependencies(y)?;
        let fresh: Vec<Var> = deps.iter().filter(|&u| !placed.contains(u)).collect();
        if !fresh.is_empty() {
            for &u in &fresh {
                placed.insert(u);
            }
            blocks.push(QuantBlock {
                quantifier: Quantifier::Universal,
                vars: fresh,
            });
        }
        blocks.push(QuantBlock {
            quantifier: Quantifier::Existential,
            vars: vec![y],
        });
    }
    let rest: Vec<Var> = dqbf
        .universals()
        .iter()
        .copied()
        .filter(|&u| !placed.contains(u))
        .collect();
    if !rest.is_empty() {
        blocks.push(QuantBlock {
            quantifier: Quantifier::Universal,
            vars: rest,
        });
    }
    Some(QdimacsFile {
        blocks,
        matrix: dqbf.matrix().clone(),
    })
}
