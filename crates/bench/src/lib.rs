//! Benchmark harness regenerating the HQS paper's evaluation
//! (Table I and Fig. 4) plus std-only micro-benchmarks.
//!
//! The binaries:
//!
//! * `table1` — runs HQS and the iDQ-style baseline over the PEC suite and
//!   prints Table I (per-family solved/unsolved/total-time rows) together
//!   with the paper's headline claims (solved superset, <1 s fraction,
//!   speed-up factors).
//! * `fig4` — emits per-instance runtime pairs as CSV and an ASCII
//!   log-log scatter in the style of Fig. 4.
//!
//! Both accept `--scale smoke|ci|paper` and `--timeout <seconds>`;
//! instance sizes are scaled-down regenerations (see `DESIGN.md`), so the
//! *shape* of the results — who solves what, and by what kind of margin —
//! is the reproduction target, not absolute numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

use hqs_base::{Budget, Exhaustion};
use hqs_core::Session;
use hqs_idq::InstantiationSolver;
use hqs_pec::{benchmark_suite, Family, PecInstance, Scale};
use std::time::{Duration, Instant};

/// Outcome of one solver on one instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Solved: satisfiable.
    Sat,
    /// Solved: unsatisfiable.
    Unsat,
    /// Timed out (paper: TO).
    Timeout,
    /// Hit the memory/node ceiling (paper: MO).
    Memout,
}

impl Outcome {
    /// `true` for Sat/Unsat.
    #[must_use]
    pub fn solved(self) -> bool {
        matches!(self, Outcome::Sat | Outcome::Unsat)
    }

    fn from_verdict(result: hqs_core::Outcome) -> Self {
        match result {
            hqs_core::Outcome::Sat => Outcome::Sat,
            hqs_core::Outcome::Unsat => Outcome::Unsat,
            // Cancellation only occurs under the portfolio engine; the
            // sequential harness buckets it with timeouts for Table I.
            hqs_core::Outcome::Unknown(Exhaustion::Timeout | Exhaustion::Cancelled) => {
                Outcome::Timeout
            }
            hqs_core::Outcome::Unknown(Exhaustion::Memout) => Outcome::Memout,
        }
    }
}

/// Timing and outcome of both solvers on one instance.
#[derive(Clone, Debug)]
pub struct InstanceRun {
    /// Instance name.
    pub name: String,
    /// Family.
    pub family: Family,
    /// HQS outcome.
    pub hqs: Outcome,
    /// HQS wall-clock seconds.
    pub hqs_seconds: f64,
    /// Baseline outcome.
    pub idq: Outcome,
    /// Baseline wall-clock seconds.
    pub idq_seconds: f64,
}

/// Node ceiling used as the "8 GB" analogue for HQS (AIG nodes).
pub const HQS_NODE_LIMIT: usize = 3_000_000;
/// Ground-clause ceiling for the instantiation baseline.
pub const IDQ_CLAUSE_LIMIT: usize = 3_000_000;

/// Runs both solvers on one instance under the given per-solver timeout.
/// `initial_sat` enables HQS's up-front SAT call (the extended-version
/// optimisation; off reproduces Table I's configuration).
#[must_use]
pub fn run_instance(instance: &PecInstance, timeout: Duration, initial_sat: bool) -> InstanceRun {
    let start = Instant::now();
    let mut hqs = Session::builder()
        .config(hqs_core::HqsConfig {
            budget: Budget::new()
                .with_timeout(timeout)
                .with_node_limit(HQS_NODE_LIMIT),
            initial_sat_check: initial_sat,
            ..hqs_core::HqsConfig::default()
        })
        .build()
        .expect("benchmark config is valid");
    let hqs_result = hqs.solve(&instance.dqbf);
    let hqs_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut idq = InstantiationSolver::new();
    idq.set_budget(
        Budget::new()
            .with_timeout(timeout)
            .with_node_limit(IDQ_CLAUSE_LIMIT),
    );
    let idq_result = idq.solve(&instance.dqbf);
    let idq_seconds = start.elapsed().as_secs_f64();

    InstanceRun {
        name: instance.name.clone(),
        family: instance.family,
        hqs: Outcome::from_verdict(hqs_result),
        hqs_seconds,
        idq: Outcome::from_verdict(idq_result.into()),
        idq_seconds,
    }
}

/// Runs the whole suite at `scale`; prints one progress dot per instance
/// to stderr when `progress` is set.
#[must_use]
pub fn run_suite(scale: Scale, timeout: Duration, progress: bool) -> Vec<InstanceRun> {
    run_suite_with(scale, timeout, progress, false)
}

/// [`run_suite`] with HQS's up-front SAT call switchable.
#[must_use]
pub fn run_suite_with(
    scale: Scale,
    timeout: Duration,
    progress: bool,
    initial_sat: bool,
) -> Vec<InstanceRun> {
    let instances = benchmark_suite(scale);
    let mut runs = Vec::with_capacity(instances.len());
    for instance in &instances {
        let run = run_instance(instance, timeout, initial_sat);
        if progress {
            let marker = match (run.hqs.solved(), run.idq.solved()) {
                (true, true) => ".",
                (true, false) => "+",
                (false, true) => "-",
                (false, false) => "!",
            };
            eprint!("{marker}");
        }
        // Consistency guard: two solvers may never disagree on a verdict.
        if run.hqs.solved() && run.idq.solved() {
            assert_eq!(run.hqs, run.idq, "solver disagreement on {}", run.name);
        }
        runs.push(run);
    }
    if progress {
        eprintln!();
    }
    runs
}

/// Aggregated per-family row of Table I for one solver.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverRow {
    /// Solved instances.
    pub solved: usize,
    /// … of which satisfiable.
    pub sat: usize,
    /// … of which unsatisfiable.
    pub unsat: usize,
    /// Unsolved instances.
    pub unsolved: usize,
    /// … of which timeouts.
    pub timeouts: usize,
    /// … of which memouts.
    pub memouts: usize,
    /// Accumulated seconds on instances solved by *both* solvers.
    pub total_time_common: f64,
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The family (or "total").
    pub label: String,
    /// Number of instances.
    pub instances: usize,
    /// HQS aggregate.
    pub hqs: SolverRow,
    /// Baseline aggregate.
    pub idq: SolverRow,
}

/// Builds Table I rows (one per family plus a total row).
#[must_use]
pub fn tabulate(runs: &[InstanceRun]) -> Vec<TableRow> {
    let mut rows: Vec<TableRow> = Vec::new();
    for family in Family::ALL {
        let subset: Vec<&InstanceRun> = runs.iter().filter(|r| r.family == family).collect();
        if subset.is_empty() {
            continue;
        }
        rows.push(aggregate(family.name(), &subset));
    }
    let all: Vec<&InstanceRun> = runs.iter().collect();
    rows.push(aggregate("total", &all));
    rows
}

fn aggregate(label: &str, runs: &[&InstanceRun]) -> TableRow {
    let mut hqs = SolverRow::default();
    let mut idq = SolverRow::default();
    for run in runs {
        tally(&mut hqs, run.hqs);
        tally(&mut idq, run.idq);
        if run.hqs.solved() && run.idq.solved() {
            hqs.total_time_common += run.hqs_seconds;
            idq.total_time_common += run.idq_seconds;
        }
    }
    TableRow {
        label: label.to_string(),
        instances: runs.len(),
        hqs,
        idq,
    }
}

fn tally(row: &mut SolverRow, outcome: Outcome) {
    match outcome {
        Outcome::Sat => {
            row.solved += 1;
            row.sat += 1;
        }
        Outcome::Unsat => {
            row.solved += 1;
            row.unsat += 1;
        }
        Outcome::Timeout => {
            row.unsolved += 1;
            row.timeouts += 1;
        }
        Outcome::Memout => {
            row.unsolved += 1;
            row.memouts += 1;
        }
    }
}

/// Renders Table I in the paper's layout.
#[must_use]
pub fn render_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>6} | {:>6} {:>11} {:>8} {:>9} {:>11} | {:>6} {:>11} {:>8} {:>9} {:>11}\n",
        "", "", "HQS", "", "", "", "", "iDQ-style", "", "", "", ""
    ));
    out.push_str(&format!(
        "{:<10} {:>6} | {:>6} {:>11} {:>8} {:>9} {:>11} | {:>6} {:>11} {:>8} {:>9} {:>11}\n",
        "benchmark",
        "#inst",
        "solved",
        "(SAT/UNSAT)",
        "unsolved",
        "(TO/MO)",
        "time[s]",
        "solved",
        "(SAT/UNSAT)",
        "unsolved",
        "(TO/MO)",
        "time[s]",
    ));
    out.push_str(&"-".repeat(132));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>6} | {:>6} {:>11} {:>8} {:>9} {:>11.2} | {:>6} {:>11} {:>8} {:>9} {:>11.2}\n",
            row.label,
            row.instances,
            row.hqs.solved,
            format!("({}/{})", row.hqs.sat, row.hqs.unsat),
            row.hqs.unsolved,
            format!("({}/{})", row.hqs.timeouts, row.hqs.memouts),
            row.hqs.total_time_common,
            row.idq.solved,
            format!("({}/{})", row.idq.sat, row.idq.unsat),
            row.idq.unsolved,
            format!("({}/{})", row.idq.timeouts, row.idq.memouts),
            row.idq.total_time_common,
        ));
    }
    out
}

/// Headline claims of Section IV, computed from the runs.
#[must_use]
pub fn render_claims(runs: &[InstanceRun]) -> String {
    let hqs_solved = runs.iter().filter(|r| r.hqs.solved()).count();
    let idq_solved = runs.iter().filter(|r| r.idq.solved()).count();
    let superset = runs.iter().all(|r| !r.idq.solved() || r.hqs.solved());
    let hqs_sub1s = runs
        .iter()
        .filter(|r| r.hqs.solved() && r.hqs_seconds < 1.0)
        .count();
    let idq_sub1s = runs
        .iter()
        .filter(|r| r.idq.solved() && r.idq_seconds < 1.0)
        .count();
    let common: Vec<&InstanceRun> = runs
        .iter()
        .filter(|r| r.hqs.solved() && r.idq.solved())
        .collect();
    let max_speedup = common
        .iter()
        .map(|r| r.idq_seconds / r.hqs_seconds.max(1e-6))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str("Paper claims, recomputed on this run:\n");
    out.push_str(&format!(
        "  * HQS solves every instance the baseline solves: {superset}\n"
    ));
    out.push_str(&format!(
        "  * solved instances: HQS {hqs_solved}, baseline {idq_solved} (+{:.0}%)\n",
        if idq_solved > 0 {
            100.0 * (hqs_solved as f64 - idq_solved as f64) / idq_solved as f64
        } else {
            f64::INFINITY
        }
    ));
    out.push_str(&format!(
        "  * solved in <1s: HQS {hqs_sub1s}/{hqs_solved} ({:.0}%), baseline {idq_sub1s}/{idq_solved}\n",
        if hqs_solved > 0 {
            100.0 * hqs_sub1s as f64 / hqs_solved as f64
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "  * max per-instance speed-up over the baseline: {max_speedup:.0}x\n"
    ));
    out
}

/// Renders the Fig. 4 scatter as CSV (`name,family,hqs_s,idq_s,hqs,idq`).
#[must_use]
pub fn render_csv(runs: &[InstanceRun]) -> String {
    let mut out = String::from("name,family,hqs_seconds,idq_seconds,hqs_outcome,idq_outcome\n");
    for run in runs {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:?},{:?}\n",
            run.name, run.family, run.hqs_seconds, run.idq_seconds, run.hqs, run.idq
        ));
    }
    out
}

/// ASCII log-log scatter in the style of Fig. 4: x = HQS runtime,
/// y = baseline runtime; markers above the diagonal mean HQS was faster.
#[must_use]
pub fn render_scatter(runs: &[InstanceRun], timeout: Duration) -> String {
    const CELLS: usize = 48;
    let limit = timeout.as_secs_f64();
    let floor = 1e-4f64;
    let coord = |seconds: f64, solved: bool| -> usize {
        if !solved {
            return CELLS - 1; // TO/MO rail
        }
        let clamped = seconds.clamp(floor, limit);
        let t = (clamped / floor).ln() / (limit / floor).ln();
        ((t * (CELLS - 2) as f64) as usize).min(CELLS - 3) + 1
    };
    let mut grid = vec![vec![' '; CELLS]; CELLS];
    for (i, row) in grid.iter_mut().enumerate() {
        row[0] = '|';
        let diag = CELLS - 1 - i;
        if row[diag] == ' ' {
            row[diag] = '\\';
        }
    }
    for c in grid[CELLS - 1].iter_mut() {
        *c = '-';
    }
    for run in runs {
        let x = coord(run.hqs_seconds, run.hqs.solved());
        let y = coord(run.idq_seconds, run.idq.solved());
        let row = CELLS - 1 - y;
        grid[row][x] = match grid[row][x] {
            ' ' | '\\' | '-' | '|' => 'o',
            'o' => 'O',
            _ => '@',
        };
    }
    let mut out = String::new();
    out.push_str("baseline runtime (log, up) vs HQS runtime (log, right);\n");
    out.push_str("top / right rails = TO/MO; markers above the diagonal: HQS faster\n");
    for row in grid {
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out
}

/// Parses `--scale` / `--timeout` / `--initial-sat` command-line options
/// shared by the two binaries. Returns `(scale, timeout, initial_sat)`.
#[must_use]
pub fn parse_args(args: &[String]) -> (Scale, Duration, bool) {
    let mut scale = Scale::Ci;
    let mut timeout = Duration::from_secs(10);
    let mut initial_sat = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--initial-sat" => initial_sat = true,
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("ci") => Scale::Ci,
                    Some("paper") => Scale::Paper,
                    other => panic!("unknown scale {other:?} (smoke|ci|paper)"),
                };
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--timeout takes seconds");
                timeout = Duration::from_secs(secs);
            }
            other => panic!("unknown option {other} (--scale, --timeout, --initial-sat)"),
        }
        i += 1;
    }
    (scale, timeout, initial_sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_pec::families::generate;

    #[test]
    fn run_instance_produces_consistent_verdicts() {
        let instance = generate(Family::PecXor, 4, 2, 1, false);
        let run = run_instance(&instance, Duration::from_secs(30), false);
        assert!(run.hqs.solved());
        assert_eq!(run.hqs, Outcome::Sat);
        if run.idq.solved() {
            assert_eq!(run.idq, Outcome::Sat);
        }
    }

    #[test]
    fn tabulate_counts_add_up() {
        let runs = vec![
            InstanceRun {
                name: "a".into(),
                family: Family::Adder,
                hqs: Outcome::Sat,
                hqs_seconds: 0.1,
                idq: Outcome::Timeout,
                idq_seconds: 5.0,
            },
            InstanceRun {
                name: "b".into(),
                family: Family::Adder,
                hqs: Outcome::Unsat,
                hqs_seconds: 0.2,
                idq: Outcome::Unsat,
                idq_seconds: 1.0,
            },
        ];
        let rows = tabulate(&runs);
        let adder = &rows[0];
        assert_eq!(adder.instances, 2);
        assert_eq!(adder.hqs.solved, 2);
        assert_eq!(adder.hqs.sat, 1);
        assert_eq!(adder.idq.solved, 1);
        assert_eq!(adder.idq.timeouts, 1);
        // Common time only counts instance "b".
        assert!((adder.hqs.total_time_common - 0.2).abs() < 1e-9);
        let total = rows.last().unwrap();
        assert_eq!(total.instances, 2);
    }

    #[test]
    fn rendering_does_not_panic() {
        let runs = vec![InstanceRun {
            name: "x".into(),
            family: Family::Comp,
            hqs: Outcome::Sat,
            hqs_seconds: 0.01,
            idq: Outcome::Memout,
            idq_seconds: 2.0,
        }];
        let rows = tabulate(&runs);
        assert!(render_table(&rows).contains("comp"));
        assert!(render_claims(&runs).contains("HQS"));
        assert!(render_csv(&runs).contains("Memout"));
        let scatter = render_scatter(&runs, Duration::from_secs(10));
        assert!(scatter.contains('o'));
    }

    #[test]
    fn parse_args_defaults_and_overrides() {
        let (scale, timeout, initial_sat) = parse_args(&[]);
        assert_eq!(scale, Scale::Ci);
        assert_eq!(timeout, Duration::from_secs(10));
        assert!(!initial_sat);
        let (scale, timeout, initial_sat) = parse_args(&[
            "--scale".into(),
            "smoke".into(),
            "--timeout".into(),
            "3".into(),
            "--initial-sat".into(),
        ]);
        assert_eq!(scale, Scale::Smoke);
        assert_eq!(timeout, Duration::from_secs(3));
        assert!(initial_sat);
    }
}
