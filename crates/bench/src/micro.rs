//! A minimal micro-benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds hermetically with no third-party crates, so the
//! `benches/` targets use this shim instead of Criterion. It keeps the
//! subset of the API the benchmarks need — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `sample_size`, and a [`Bencher`]
//! whose `iter` times the closure — and prints a min/median/max summary
//! per benchmark. A substring filter can be passed on the command line
//! (`cargo bench -p hqs-bench --bench aig_ops -- cofactor`).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state: the CLI filter and accumulated results.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<(String, Stats)>,
}

#[derive(Clone, Copy)]
struct Stats {
    min: Duration,
    median: Duration,
    max: Duration,
    samples: usize,
}

impl Criterion {
    /// Builds the harness, taking an optional substring filter from the
    /// command line (flag arguments such as `--bench` are ignored).
    #[must_use]
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            results: Vec::new(),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples: 50,
        }
    }

    /// Prints the collected table; call once after all groups ran.
    pub fn report(&self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        println!(
            "\n{:<52} {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "max"
        );
        for (label, stats) in &self.results {
            println!(
                "{:<52} {:>12} {:>12} {:>12}   ({} samples)",
                label,
                format_duration(stats.min),
                format_duration(stats.median),
                format_duration(stats.max),
                stats.samples,
            );
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named benchmark within a group (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part label, rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in this group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), &mut f);
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, &mut |b: &mut Bencher| f(b, input));
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: self.samples,
            stats: None,
        };
        f(&mut bencher);
        if let Some(stats) = bencher.stats {
            self.criterion.results.push((label, stats));
        }
    }

    /// Ends the group (kept for API compatibility; groups report lazily).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `f` over the group's sample count and records
    /// min/median/max. The closure's result is passed through
    /// [`black_box`] so the work is not optimised away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm caches and lazy initialisation outside the timed region.
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.stats = Some(Stats {
            min: times[0],
            median: times[times.len() / 2],
            max: *times.last().expect("at least one sample"),
            samples: times.len(),
        });
    }
}

/// Bundles benchmark functions into a single registration function, like
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::micro::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            let mut c = $crate::micro::Criterion::from_env();
            $name(&mut c);
            c.report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_records_sane_stats() {
        let mut c = Criterion {
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        for (label, stats) in &c.results {
            assert!(
                stats.min <= stats.median && stats.median <= stats.max,
                "{label}"
            );
            assert_eq!(stats.samples, 5, "{label}");
        }
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("spin", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(c.results.is_empty());
    }
}
