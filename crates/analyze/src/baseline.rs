//! The ratchet baseline: the committed set of known findings that CI
//! allows only to shrink.
//!
//! Entries are keyed on `(pass, path, symbol, message)` with a count —
//! deliberately *not* on line numbers, so unrelated edits that shift
//! code down a file don't invalidate the baseline. The check is
//! two-way, matching the audit allowlist's burn-down semantics:
//!
//! * a finding not covered by the baseline (or exceeding its count)
//!   **fails** — no new debt;
//! * a baseline entry no longer matched in full also **fails** — fixed
//!   debt must be deleted from the baseline so it can never silently
//!   come back.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::json::{self, Json};

/// Aggregation key for baseline entries.
pub type Key = (String, String, String, String);

/// The parsed baseline: finding key → allowed count.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Allowed findings and how many of each.
    pub entries: BTreeMap<Key, u32>,
}

fn key_of(d: &Diagnostic) -> Key {
    (
        d.pass.clone(),
        d.path.clone(),
        d.symbol.clone(),
        d.message.clone(),
    )
}

/// Aggregates diagnostics into baseline counts.
#[must_use]
pub fn aggregate(diags: &[Diagnostic]) -> BTreeMap<Key, u32> {
    let mut counts: BTreeMap<Key, u32> = BTreeMap::new();
    for d in diags {
        *counts.entry(key_of(d)).or_insert(0) += 1;
    }
    counts
}

/// The outcome of checking current findings against the baseline.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings over budget: human-readable lines describing each.
    pub regressions: Vec<String>,
    /// Baseline entries now unmatched (stale debt to burn down).
    pub stale: Vec<String>,
}

impl CheckReport {
    /// Did the check pass?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Compares `diags` against the baseline; see the module docs for
    /// the two-way semantics.
    #[must_use]
    pub fn check(&self, diags: &[Diagnostic]) -> CheckReport {
        let current = aggregate(diags);
        let mut report = CheckReport::default();
        for (key, &count) in &current {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if count > allowed {
                let (pass, path, symbol, message) = key;
                let lines: Vec<String> = diags
                    .iter()
                    .filter(|d| &key_of(d) == key)
                    .map(|d| d.line.to_string())
                    .collect();
                report.regressions.push(format!(
                    "[{pass}] {path}:{} {sym}{message} ({count} found, {allowed} allowed by baseline)",
                    lines.join(","),
                    sym = if symbol.is_empty() {
                        String::new()
                    } else {
                        format!("({symbol}) ")
                    },
                ));
            }
        }
        for (key, &allowed) in &self.entries {
            let count = current.get(key).copied().unwrap_or(0);
            if count < allowed {
                let (pass, path, symbol, message) = key;
                report.stale.push(format!(
                    "[{pass}] {path} {sym}{message}: baseline allows {allowed} but only {count} remain — shrink the baseline (run `cargo run -p xtask -- analyze --write-baseline`)",
                    sym = if symbol.is_empty() {
                        String::new()
                    } else {
                        format!("({symbol}) ")
                    },
                ));
            }
        }
        report
    }

    /// Serializes the baseline deterministically.
    #[must_use]
    pub fn emit(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|((pass, path, symbol, message), count)| {
                Json::Object(vec![
                    ("pass".into(), Json::String(pass.clone())),
                    ("path".into(), Json::String(path.clone())),
                    ("symbol".into(), Json::String(symbol.clone())),
                    ("message".into(), Json::String(message.clone())),
                    ("count".into(), Json::Number(f64::from(*count))),
                ])
            })
            .collect();
        json::emit_pretty(&Json::Object(vec![(
            "entries".into(),
            Json::Array(entries),
        )]))
    }

    /// Builds a baseline covering exactly `diags`.
    #[must_use]
    pub fn from_diags(diags: &[Diagnostic]) -> Self {
        Baseline {
            entries: aggregate(diags),
        }
    }

    /// Parses a baseline file.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let entries_json = v
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("baseline missing `entries` array")?;
        let mut entries = BTreeMap::new();
        for e in entries_json {
            let get = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing `{k}`"))
            };
            let count = e
                .get("count")
                .and_then(Json::as_number)
                .ok_or("baseline entry missing `count`")?;
            // JSON numbers are f64; counts fit losslessly.
            let count = count as u32;
            entries.insert(
                (get("pass")?, get("path")?, get("symbol")?, get("message")?),
                count,
            );
        }
        Ok(Baseline { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(pass: &str, path: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            pass: pass.into(),
            path: path.into(),
            line,
            symbol: String::new(),
            message: msg.into(),
        }
    }

    #[test]
    fn empty_baseline_rejects_any_finding() {
        let b = Baseline::default();
        let report = b.check(&[d("panic-path", "a.rs", 1, "unwrap")]);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.stale.is_empty());
        assert!(!report.ok());
    }

    #[test]
    fn exact_match_passes() {
        let diags = [
            d("panic-path", "a.rs", 1, "unwrap"),
            d("panic-path", "a.rs", 9, "unwrap"),
        ];
        let b = Baseline::from_diags(&diags);
        assert!(b.check(&diags).ok());
        // Line drift does not matter.
        let drifted = [
            d("panic-path", "a.rs", 5, "unwrap"),
            d("panic-path", "a.rs", 90, "unwrap"),
        ];
        assert!(b.check(&drifted).ok());
    }

    #[test]
    fn growth_fails_and_shrink_requires_baseline_update() {
        let b = Baseline::from_diags(&[d("x", "a.rs", 1, "m"), d("x", "a.rs", 2, "m")]);
        // Growth.
        let grown = [
            d("x", "a.rs", 1, "m"),
            d("x", "a.rs", 2, "m"),
            d("x", "a.rs", 3, "m"),
        ];
        assert_eq!(b.check(&grown).regressions.len(), 1);
        // Shrink without baseline update = stale entry.
        let shrunk = [d("x", "a.rs", 1, "m")];
        let report = b.check(&shrunk);
        assert!(report.regressions.is_empty());
        assert_eq!(report.stale.len(), 1);
        assert!(!report.ok());
    }

    #[test]
    fn baseline_round_trip() {
        let b = Baseline::from_diags(&[
            d("x", "a.rs", 1, "m1"),
            d("x", "a.rs", 2, "m1"),
            d("y", "b.rs", 3, "m2"),
        ]);
        let text = b.emit();
        let back = Baseline::parse(&text).expect("parse");
        assert_eq!(b.entries, back.entries);
    }
}
