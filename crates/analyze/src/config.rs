//! The `analyze-hot-paths.toml` configuration: which functions the
//! panic-path and hot-loop-allocation passes hold to the stricter
//! standard.
//!
//! Format (a deliberate, tiny TOML subset):
//!
//! ```toml
//! [hot-paths]
//! functions = [
//!     "hqs-sat::Solver::propagate",
//!     "hqs-aig::Aig::and",
//! ]
//! ```
//!
//! Each entry is `<crate-name>::<symbol>` where `<symbol>` matches the
//! tracker's qualified fn name (`Type::fn` or a free `fn`).

/// One declared hot function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotFn {
    /// Package name (e.g. `hqs-sat`).
    pub crate_name: String,
    /// Qualified symbol within the crate (e.g. `Solver::propagate`).
    pub symbol: String,
}

/// The parsed hot-path declaration file.
#[derive(Clone, Debug, Default)]
pub struct HotPaths {
    /// All declared hot functions.
    pub functions: Vec<HotFn>,
}

impl HotPaths {
    /// Is `symbol` in `crate_name` declared hot?
    #[must_use]
    pub fn is_hot(&self, crate_name: &str, symbol: &str) -> bool {
        self.functions
            .iter()
            .any(|f| f.crate_name == crate_name && f.symbol == symbol)
    }
}

/// Parses the hot-paths file. Malformed entries are returned as
/// warnings rather than silently dropped.
pub fn parse(text: &str) -> (HotPaths, Vec<String>) {
    let mut hp = HotPaths::default();
    let mut warnings = Vec::new();
    let mut in_functions = false;
    for raw in text.lines() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("functions") && line.contains('[') {
            in_functions = true;
            continue;
        }
        if !in_functions {
            continue;
        }
        if line.starts_with(']') {
            in_functions = false;
            continue;
        }
        let entry = line.trim_end_matches(',').trim().trim_matches('"');
        if entry.is_empty() {
            continue;
        }
        match entry.split_once("::") {
            Some((crate_name, symbol)) if !crate_name.is_empty() && !symbol.is_empty() => {
                hp.functions.push(HotFn {
                    crate_name: crate_name.to_string(),
                    symbol: symbol.to_string(),
                });
            }
            _ => warnings.push(format!(
                "malformed hot-path entry `{entry}` (expected `crate::Type::fn` or `crate::fn`)"
            )),
        }
    }
    (hp, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let (hp, warnings) = parse(
            r#"
# Hot paths.
[hot-paths]
functions = [
    "hqs-sat::Solver::propagate",  # inner loop
    "hqs-aig::Aig::and",
    "hqs-proof::rup",
]
"#,
        );
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(hp.functions.len(), 3);
        assert!(hp.is_hot("hqs-sat", "Solver::propagate"));
        assert!(hp.is_hot("hqs-proof", "rup"));
        assert!(!hp.is_hot("hqs-sat", "Solver::analyze"));
    }

    #[test]
    fn malformed_entry_warns() {
        let (hp, warnings) = parse("functions = [\n\"no-separator\",\n]\n");
        assert!(hp.functions.is_empty());
        assert_eq!(warnings.len(), 1);
    }
}
