//! The `analyze-hot-paths.toml` configuration: hot-path seeds,
//! cancel-poll entry functions, the atomic-ordering allowlist, and the
//! call-graph resolution-rate floor.
//!
//! Format (a deliberate, tiny TOML subset — `[section]` headers,
//! string arrays, numeric scalars, `#` comments):
//!
//! ```toml
//! [hot-paths]
//! functions = [
//!     "hqs-sat::Solver::propagate",
//!     "hqs-aig::Aig::and",
//! ]
//!
//! [cancel-poll]
//! functions = [
//!     "hqs-core::Solver::main_loop",
//! ]
//!
//! [concurrency]
//! ordering = [
//!     "crates/base/src/budget.rs::CancelToken::cancel::Release",
//! ]
//!
//! [determinism]
//! roots = [
//!     "hqs-engine::arbitrate",
//! ]
//!
//! [callgraph]
//! min-resolution-percent = 90
//! ```
//!
//! Function entries are `<crate-name>::<symbol>` where `<symbol>`
//! matches the tracker's qualified fn name (`Type::fn` or a free
//! `fn`). Ordering entries are `<path>::<symbol>::<Variant>`; a
//! duplicate entry allows two sites of that variant in the same fn.

/// One declared hot (or cancel-entry) function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotFn {
    /// Package name (e.g. `hqs-sat`).
    pub crate_name: String,
    /// Qualified symbol within the crate (e.g. `Solver::propagate`).
    pub symbol: String,
}

/// The parsed hot-path declaration list.
#[derive(Clone, Debug, Default)]
pub struct HotPaths {
    /// All declared hot functions.
    pub functions: Vec<HotFn>,
}

impl HotPaths {
    /// Is `symbol` in `crate_name` declared hot?
    #[must_use]
    pub fn is_hot(&self, crate_name: &str, symbol: &str) -> bool {
        self.functions
            .iter()
            .any(|f| f.crate_name == crate_name && f.symbol == symbol)
    }
}

/// One allowlisted `Ordering::` use site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderingSite {
    /// Workspace-relative file path.
    pub path: String,
    /// Enclosing function (`Type::fn` or `fn`).
    pub symbol: String,
    /// The atomic ordering variant (`Relaxed`, `Acquire`, …).
    pub variant: String,
}

/// The whole parsed configuration file.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeConfig {
    /// `[hot-paths] functions` — panic/alloc discipline seeds.
    pub hot: HotPaths,
    /// `[cancel-poll] functions` — solver-entry fns whose loops must
    /// poll cancellation.
    pub cancel: Vec<HotFn>,
    /// `[concurrency] ordering` — the committed `Ordering::` allowlist.
    pub ordering_allow: Vec<OrderingSite>,
    /// `[determinism] roots` — functions whose callee closure must be
    /// byte-reproducible (arbitration, batch writers, certificate
    /// emission).
    pub determinism_roots: Vec<HotFn>,
    /// `[callgraph] min-resolution-percent` — CI fails below this
    /// call-site resolution rate (0 disables the gate).
    pub min_resolution_percent: f64,
}

/// Parses the configuration. Malformed entries are returned as
/// warnings rather than silently dropped.
pub fn parse(text: &str) -> (AnalyzeConfig, Vec<String>) {
    let mut cfg = AnalyzeConfig::default();
    let mut warnings = Vec::new();
    let mut section = String::new();
    let mut array_key: Option<String> = None;
    for raw in text.lines() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if array_key.is_none() {
            if let Some(rest) = line.strip_prefix('[') {
                if let Some(name) = rest.strip_suffix(']') {
                    section = name.trim().to_string();
                }
                continue;
            }
        }
        if let Some(key) = &array_key {
            if line.starts_with(']') {
                array_key = None;
                continue;
            }
            let entry = line.trim_end_matches(',').trim().trim_matches('"');
            if !entry.is_empty() {
                record_entry(&mut cfg, &mut warnings, &section, key, entry);
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().to_string();
        let value = line[eq + 1..].trim();
        if value.starts_with('[') {
            // Entries may follow on the same line (`functions = [ "a" ]`)
            // or on subsequent lines.
            let inline = value.trim_start_matches('[').trim_end_matches(']').trim();
            for entry in inline.split(',') {
                let entry = entry.trim().trim_matches('"');
                if !entry.is_empty() {
                    record_entry(&mut cfg, &mut warnings, &section, &key, entry);
                }
            }
            if !value.contains(']') {
                array_key = Some(key);
            }
            continue;
        }
        if section == "callgraph" && key == "min-resolution-percent" {
            match value.parse::<f64>() {
                Ok(v) => cfg.min_resolution_percent = v,
                Err(_) => warnings.push(format!("malformed min-resolution-percent `{value}`")),
            }
        }
    }
    (cfg, warnings)
}

fn record_entry(
    cfg: &mut AnalyzeConfig,
    warnings: &mut Vec<String>,
    section: &str,
    key: &str,
    entry: &str,
) {
    match (section, key) {
        ("hot-paths", "functions") => match parse_fn_entry(entry) {
            Some(f) => cfg.hot.functions.push(f),
            None => warnings.push(format!(
                "malformed hot-path entry `{entry}` (expected `crate::Type::fn` or `crate::fn`)"
            )),
        },
        ("cancel-poll", "functions") => match parse_fn_entry(entry) {
            Some(f) => cfg.cancel.push(f),
            None => warnings.push(format!(
                "malformed cancel-poll entry `{entry}` (expected `crate::Type::fn` or `crate::fn`)"
            )),
        },
        ("determinism", "roots") => match parse_fn_entry(entry) {
            Some(f) => cfg.determinism_roots.push(f),
            None => warnings.push(format!(
                "malformed determinism root `{entry}` (expected `crate::Type::fn` or `crate::fn`)"
            )),
        },
        ("concurrency", "ordering") => {
            // `<path>::<symbol>::<Variant>` — the path has no `::`, the
            // symbol may, so split the variant off the right and the
            // path off the left.
            let parsed = entry.split_once("::").and_then(|(path, rest)| {
                rest.rsplit_once("::")
                    .map(|(symbol, variant)| (path, symbol, variant))
            });
            match parsed {
                Some((path, symbol, variant))
                    if !path.is_empty() && !symbol.is_empty() && !variant.is_empty() =>
                {
                    cfg.ordering_allow.push(OrderingSite {
                        path: path.to_string(),
                        symbol: symbol.to_string(),
                        variant: variant.to_string(),
                    });
                }
                _ => warnings.push(format!(
                    "malformed ordering entry `{entry}` (expected `path::Type::fn::Variant`)"
                )),
            }
        }
        _ => warnings.push(format!("unknown config array `[{section}] {key}`")),
    }
}

fn parse_fn_entry(entry: &str) -> Option<HotFn> {
    match entry.split_once("::") {
        Some((crate_name, symbol)) if !crate_name.is_empty() && !symbol.is_empty() => Some(HotFn {
            crate_name: crate_name.to_string(),
            symbol: symbol.to_string(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let (cfg, warnings) = parse(
            r#"
# Hot paths.
[hot-paths]
functions = [
    "hqs-sat::Solver::propagate",  # inner loop
    "hqs-aig::Aig::and",
    "hqs-proof::rup",
]
"#,
        );
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(cfg.hot.functions.len(), 3);
        assert!(cfg.hot.is_hot("hqs-sat", "Solver::propagate"));
        assert!(cfg.hot.is_hot("hqs-proof", "rup"));
        assert!(!cfg.hot.is_hot("hqs-sat", "Solver::analyze"));
    }

    #[test]
    fn malformed_entry_warns() {
        let (cfg, warnings) = parse("[hot-paths]\nfunctions = [\n\"no-separator\",\n]\n");
        assert!(cfg.hot.functions.is_empty());
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn parses_all_sections() {
        let (cfg, warnings) = parse(
            r#"
[hot-paths]
functions = [ "hqs-sat::Solver::propagate" ]

[cancel-poll]
functions = [
    "hqs-core::Solver::main_loop",  # elimination loop
]

[concurrency]
ordering = [
    "crates/base/src/budget.rs::CancelToken::cancel::Release",
    "crates/obs/src/registry.rs::MetricsRegistry::add::Relaxed",
]

[determinism]
roots = [
    "hqs-engine::arbitrate",
    "hqs-core::extract_skolem",
]

[callgraph]
min-resolution-percent = 90
"#,
        );
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(cfg.hot.functions.len(), 1);
        assert_eq!(cfg.cancel.len(), 1);
        assert_eq!(cfg.cancel[0].symbol, "Solver::main_loop");
        assert_eq!(cfg.determinism_roots.len(), 2);
        assert_eq!(cfg.determinism_roots[0].crate_name, "hqs-engine");
        assert_eq!(cfg.determinism_roots[1].symbol, "extract_skolem");
        assert_eq!(cfg.ordering_allow.len(), 2);
        assert_eq!(cfg.ordering_allow[0].path, "crates/base/src/budget.rs");
        assert_eq!(cfg.ordering_allow[0].symbol, "CancelToken::cancel");
        assert_eq!(cfg.ordering_allow[0].variant, "Release");
        // Exact comparison of a parsed literal.
        assert!((cfg.min_resolution_percent - 90.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_ordering_and_scalar_warn() {
        let (cfg, warnings) = parse(
            "[concurrency]\nordering = [ \"nopath\" ]\n[callgraph]\nmin-resolution-percent = abc\n",
        );
        assert!(cfg.ordering_allow.is_empty());
        assert_eq!(warnings.len(), 2, "{warnings:?}");
    }
}
