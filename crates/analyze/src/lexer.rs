//! A hand-rolled Rust lexer.
//!
//! The lexer understands exactly as much of the Rust token grammar as the
//! analysis passes need to be *sound* at the token level: strings (plain,
//! raw with any number of `#`s, byte, byte-raw and C variants), character
//! literals vs lifetimes, nested block comments, line/doc comments,
//! numbers with suffixes, identifiers (including raw `r#idents`), a
//! leading shebang line, and single-character punctuation. Anything the
//! passes match against — `unwrap`, `panic`, `[` indexing, `as` casts —
//! is therefore guaranteed to come from real code, never from a string
//! literal or a comment, which was the defining false-positive class of
//! the earlier line-based audit.
//!
//! The lexer is infallible: malformed input (say, an unterminated string)
//! degrades into a final token stretching to end of file rather than an
//! error, because analysis must never be the reason a build script dies
//! on a file `rustc` itself would reject with a better message.

/// Classification of a lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`s).
    Ident,
    /// A lifetime such as `'a` or `'static` (without a trailing quote).
    Lifetime,
    /// A character literal such as `'a'` or `'\n'`.
    Char,
    /// A byte literal such as `b'x'`.
    ByteChar,
    /// A string literal `"..."`.
    Str,
    /// A raw string literal `r"..."` / `r#"..."#` (any number of hashes),
    /// including byte (`br`) and C (`cr`) raw variants.
    RawStr,
    /// A byte-string literal `b"..."`.
    ByteStr,
    /// A C-string literal `c"..."`.
    CStr,
    /// An integer literal (any base, with or without suffix).
    Int,
    /// A floating-point literal.
    Float,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* ... */` comment, with arbitrary nesting.
    BlockComment,
    /// The `#!...` interpreter line at the very start of a file.
    Shebang,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: classification plus byte span and 1-based line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for comment and shebang tokens, which the item tracker and
    /// most passes skip.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Shebang
        )
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Character cursor with line tracking.
struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.char_indices().collect(),
            src,
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Lexes `src` into tokens. Infallible; see the module docs.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    // A shebang is `#!` at offset 0 not followed by `[` (which would be an
    // inner attribute such as `#![forbid(unsafe_code)]`).
    if src.starts_with("#!") && !src.starts_with("#![") {
        let line = cur.line;
        while cur.peek(0).is_some_and(|c| c != '\n') {
            cur.bump();
        }
        out.push(Token {
            kind: TokenKind::Shebang,
            start: 0,
            end: cur.offset(),
            line,
        });
    }
    while let Some(c) = cur.peek(0) {
        let start = cur.offset();
        let line = cur.line;
        let kind = match c {
            _ if c.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek(1) == Some('/') => {
                while cur.peek(0).is_some_and(|c| c != '\n') {
                    cur.bump();
                }
                TokenKind::LineComment
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            '"' => {
                lex_string_body(&mut cur);
                TokenKind::Str
            }
            '\'' => lex_quote(&mut cur),
            'r' | 'b' | 'c' => match lex_prefixed(&mut cur) {
                Some(kind) => kind,
                None => {
                    cur.bump_while(is_ident_continue);
                    TokenKind::Ident
                }
            },
            _ if c.is_ascii_digit() => lex_number(&mut cur),
            _ if is_ident_start(c) => {
                cur.bump();
                cur.bump_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
        });
    }
    out
}

/// Consumes a `"`-delimited string body including the delimiters,
/// honouring backslash escapes. The cursor sits on the opening quote.
fn lex_string_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body `#*" ... "#*`. The cursor sits on the first
/// `#` or the opening quote.
fn lex_raw_string_body(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for ahead in 0..hashes {
                if cur.peek(ahead) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Distinguishes the `r`/`b`/`c` literal prefixes from plain identifiers.
/// Returns `None` when the cursor sits on an ordinary identifier (which
/// the caller then lexes); otherwise consumes the literal.
fn lex_prefixed(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let c0 = cur.peek(0)?;
    let c1 = cur.peek(1);
    let c2 = cur.peek(2);
    match (c0, c1) {
        // Raw identifier `r#ident` (but `r#"` is a raw string).
        ('r', Some('#')) if c2.is_some_and(is_ident_start) => {
            cur.bump();
            cur.bump();
            cur.bump_while(is_ident_continue);
            Some(TokenKind::Ident)
        }
        ('r', Some('"' | '#')) => {
            cur.bump();
            lex_raw_string_body(cur);
            Some(TokenKind::RawStr)
        }
        ('b', Some('\'')) => {
            cur.bump();
            cur.bump(); // opening quote
            if cur.peek(0) == Some('\\') {
                cur.bump();
                cur.bump();
            } else {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            Some(TokenKind::ByteChar)
        }
        ('b', Some('"')) => {
            cur.bump();
            lex_string_body(cur);
            Some(TokenKind::ByteStr)
        }
        ('b', Some('r')) if matches!(c2, Some('"' | '#')) => {
            cur.bump();
            cur.bump();
            lex_raw_string_body(cur);
            Some(TokenKind::RawStr)
        }
        ('c', Some('"')) => {
            cur.bump();
            lex_string_body(cur);
            Some(TokenKind::CStr)
        }
        ('c', Some('r')) if matches!(c2, Some('"' | '#')) => {
            cur.bump();
            cur.bump();
            lex_raw_string_body(cur);
            Some(TokenKind::RawStr)
        }
        _ => None,
    }
}

/// Disambiguates `'a'` (char), `'\n'` (char) and `'a`/`'static`
/// (lifetime). The cursor sits on the quote.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal; skip the escape (incl. `\u{...}`).
            cur.bump();
            if cur.peek(0) == Some('u') && cur.peek(1) == Some('{') {
                cur.bump();
                while cur.peek(0).is_some_and(|c| c != '}') {
                    cur.bump();
                }
            }
            cur.bump_while(|c| c != '\'');
            cur.bump(); // closing quote
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // Could be `'a'` (char) or `'a` (lifetime): scan the
            // identifier and check for a closing quote.
            let ident_start = cur.pos;
            cur.bump();
            cur.bump_while(is_ident_continue);
            if cur.peek(0) == Some('\'') {
                // Char literal: rewind is unnecessary — just consume the
                // closing quote. (`'ab'` is invalid Rust; we tolerate it.)
                cur.bump();
                TokenKind::Char
            } else {
                let _ = ident_start;
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — invalid, treat as an empty char literal.
            cur.bump();
            TokenKind::Char
        }
        Some(_) => {
            // `'(' `, `'1'` etc: char literal.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

/// Lexes a numeric literal, including base prefixes, `_` separators,
/// float dots/exponents and type suffixes. The cursor sits on a digit.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    let radix_prefix =
        cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        cur.bump();
        cur.bump();
        cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokenKind::Int;
    }
    cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    // A dot makes it a float only when followed by a digit (so `1..2` and
    // `1.max(2)` lex the integer alone).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump();
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(0), Some('+' | '-')) {
            cur.bump();
        }
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Type suffix (`u32`, `f64`, …).
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_is_float = matches!(cur.peek(0), Some('f'));
        cur.bump_while(is_ident_continue);
        if suffix_is_float {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"contains "quotes" and .unwrap()"#; x"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        // The trailing `x` survives as an ident — the raw string ended at
        // the right place.
        assert_eq!(toks.last().map(|(k, _)| *k), Some(TokenKind::Ident));
        // No bare `unwrap` ident leaks out of the string.
        assert!(!code_texts(src).iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn raw_string_two_hashes() {
        let src = r###"r##"inner "# still inside"## + 1"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert!(toks[0].1.contains("still inside"));
        assert_eq!(toks.last().map(|(k, _)| *k), Some(TokenKind::Int));
    }

    #[test]
    fn closing_nested_generics_lex_as_single_gt_tokens() {
        // `>>` in `Vec<Vec<u32>>` must come out as two `>` Puncts, not
        // one shift token — the symbol resolver's generics skipper
        // counts single `>`s.
        let src = "let v: Vec<Vec<u32>> = Vec::new();";
        let texts = code_texts(src);
        assert!(!texts.iter().any(|t| t == ">>"), "{texts:?}");
        assert_eq!(texts.iter().filter(|t| *t == ">").count(), 2);
    }

    #[test]
    fn shift_expression_also_lexes_as_single_gt_tokens() {
        // A real right shift is the same two tokens; disambiguation is
        // the consumer's job, exactly as in rustc's lexer.
        let src = "let x = a >> 2; let y = b >>= 1;";
        let texts = code_texts(src);
        assert!(!texts.iter().any(|t| t == ">>" || t == ">>="), "{texts:?}");
        assert_eq!(texts.iter().filter(|t| *t == ">").count(), 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "&'static str; &'_ u8";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'_"));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"bytes"; let b2 = b'x'; let c = c"cstr"; let r = br#"raw"#;"##;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::ByteStr));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::ByteChar));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::CStr));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("raw")));
    }

    #[test]
    fn shebang_and_inner_attribute() {
        let src = "#!/usr/bin/env run\nfn main() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Shebang);
        assert_eq!(toks[1].1, "fn");
        // `#![...]` is NOT a shebang.
        let src2 = "#![forbid(unsafe_code)]\n";
        let toks2 = kinds(src2);
        assert_eq!(toks2[0].0, TokenKind::Punct);
        assert_eq!(toks2[0].1, "#");
        assert!(toks2
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe_code"));
    }

    #[test]
    fn raw_identifier() {
        let src = "let r#type = 1;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn numbers() {
        let src = "1 1.5 1e3 0xff_u32 1u64 2.5f32 1..2 1.max(2)";
        let toks = kinds(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
            .collect();
        assert_eq!(nums[0], &(TokenKind::Int, "1".to_string()));
        assert_eq!(nums[1], &(TokenKind::Float, "1.5".to_string()));
        assert_eq!(nums[2], &(TokenKind::Float, "1e3".to_string()));
        assert_eq!(nums[3], &(TokenKind::Int, "0xff_u32".to_string()));
        assert_eq!(nums[4], &(TokenKind::Int, "1u64".to_string()));
        assert_eq!(nums[5], &(TokenKind::Float, "2.5f32".to_string()));
        // `1..2` lexes as Int, Punct, Punct, Int.
        assert_eq!(nums[6], &(TokenKind::Int, "1".to_string()));
        assert_eq!(nums[7], &(TokenKind::Int, "2".to_string()));
        // `1.max(2)`: the dot is a method call, not a float.
        assert_eq!(nums[8], &(TokenKind::Int, "1".to_string()));
    }

    #[test]
    fn line_numbers_across_strings_and_comments() {
        let src = "a\n\"multi\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").expect("b token");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn unwrap_in_comment_and_string_is_trivia_or_literal() {
        let src = "// .unwrap() here\nlet s = \".unwrap()\"; s.get(0)";
        assert!(!code_texts(src).iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
