//! Workspace loading: discovers crates, parses their manifests, and
//! lexes every Rust source file into a [`SourceFile`].

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::manifest::{self, Manifest};
use crate::source::SourceFile;

/// One workspace member.
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Package name from the manifest (e.g. `hqs-sat`).
    pub name: String,
    /// Workspace-relative directory (e.g. `crates/sat`).
    pub dir: String,
    /// The parsed manifest.
    pub manifest: Manifest,
}

/// The loaded workspace: every member crate plus every lexed source
/// file, in deterministic (sorted-by-path) order.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Member crates sorted by directory.
    pub crates: Vec<CrateInfo>,
    /// All analyzed source files sorted by path.
    pub files: Vec<SourceFile>,
}

/// Path components that are never analyzed: build output, VCS metadata,
/// and the analyzer's own corpus of deliberately-bad fixture snippets.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

impl Workspace {
    /// Loads every crate under `<root>/crates/`, plus the facade
    /// package at the workspace root if the root manifest declares one.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut crates = Vec::new();
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            load_crate(root, &crate_dir, &mut crates, &mut files)?;
        }
        // The root manifest may carry a [package] alongside [workspace]
        // (the `hqs` facade). Its sources live in src/ etc. directly
        // under the root; walking the root itself would re-visit crates/.
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let manifest = manifest::parse(&fs::read_to_string(&root_manifest)?);
            if !manifest.name.is_empty() {
                let mut crate_files = Vec::new();
                for sub in ["src", "tests", "benches", "examples"] {
                    let dir = root.join(sub);
                    if dir.is_dir() {
                        collect_rs_files(&dir, &mut crate_files)?;
                    }
                }
                crate_files.sort();
                for file in crate_files {
                    let text = fs::read_to_string(&file)?;
                    files.push(SourceFile::analyze(
                        rel_path(root, &file),
                        manifest.name.clone(),
                        text,
                    ));
                }
                crates.push(CrateInfo {
                    name: manifest.name.clone(),
                    dir: String::new(),
                    manifest,
                });
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
            files,
        })
    }

    /// Looks up a member by package name.
    #[must_use]
    pub fn crate_named(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

fn load_crate(
    root: &Path,
    crate_dir: &Path,
    crates: &mut Vec<CrateInfo>,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let manifest_path = crate_dir.join("Cargo.toml");
    if !manifest_path.is_file() {
        return Ok(());
    }
    let manifest = manifest::parse(&fs::read_to_string(&manifest_path)?);
    if manifest.name.is_empty() {
        return Ok(());
    }
    let dir = rel_path(root, crate_dir);
    let mut crate_files = Vec::new();
    collect_rs_files(crate_dir, &mut crate_files)?;
    crate_files.sort();
    for file in crate_files {
        let text = fs::read_to_string(&file)?;
        files.push(SourceFile::analyze(
            rel_path(root, &file),
            manifest.name.clone(),
            text,
        ));
    }
    crates.push(CrateInfo {
        name: manifest.name.clone(),
        dir,
        manifest,
    });
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts,
/// so baseline files diff cleanly).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
