//! Workspace call graph: edges between [`crate::symbols::FnDef`]s,
//! reachability with recorded call chains, resolution statistics, and
//! the JSON dump CI archives as `analyze-callgraph.json`.
//!
//! The graph is built once per analyzer run and shared by the
//! interprocedural passes: transitive hot-path discipline walks the
//! callee closure of the seeds in `analyze-hot-paths.toml`, and the
//! concurrency pass uses the same closure to decide which functions'
//! lock regions are hot. The resolution *rate* — the share of call
//! sites classified `Resolved` or `External` rather than `Ambiguous` or
//! `Unknown` — is ratcheted in CI via `[callgraph]
//! min-resolution-percent`, so refactors cannot silently decay the
//! graph into guesswork.

use std::collections::{HashMap, VecDeque};

use crate::json::Json;
use crate::symbols::{self, CallSite, Conservative, Imports, Resolution, SymbolTable};
use crate::workspace::Workspace;

/// One call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Caller definition id.
    pub caller: usize,
    /// Callee definition id.
    pub callee: usize,
    /// File of the call site.
    pub path: String,
    /// Line of the call site.
    pub line: u32,
    /// True when the site resolved to several candidates and this edge
    /// is one of the conservative fan-out.
    pub ambiguous: bool,
}

/// Aggregate call-site statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphStats {
    /// Total call sites scanned.
    pub total_sites: usize,
    /// Sites with a unique workspace target.
    pub resolved: usize,
    /// Sites with provably no workspace target.
    pub external: usize,
    /// Calls to closures or nested fns bound in the same file — exact
    /// targets with no graph node.
    pub local_closures: usize,
    /// Sites with several candidates (conservative edges).
    pub ambiguous: usize,
    /// Closure/fn-pointer calls with no lexical target.
    pub unknown: usize,
    /// Conservative constructs the graph cannot see through.
    pub conservative: Conservative,
    /// Glob imports encountered (also unresolvable).
    pub globs: usize,
}

impl GraphStats {
    /// Share of call sites whose targets are precisely known, in
    /// percent. `Resolved`, `External` and `LocalClosure` count;
    /// `Ambiguous` and `Unknown` count against.
    #[must_use]
    pub fn resolution_rate(&self) -> f64 {
        if self.total_sites == 0 {
            return 100.0;
        }
        // Plain percentage arithmetic on counters.
        100.0 * (self.resolved + self.external + self.local_closures) as f64
            / self.total_sites as f64
    }
}

/// The built graph.
pub struct CallGraph {
    /// The symbol table the graph indexes into.
    pub table: SymbolTable,
    /// All edges, in file order.
    pub edges: Vec<Edge>,
    /// Statistics over every scanned site.
    pub stats: GraphStats,
    out: HashMap<usize, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for the whole workspace (test files excluded).
    #[must_use]
    pub fn build(ws: &Workspace) -> Self {
        let table = SymbolTable::build(ws);
        let mut edges: Vec<Edge> = Vec::new();
        let mut stats = GraphStats::default();
        let mut out: HashMap<usize, Vec<usize>> = HashMap::new();
        for file in &ws.files {
            if crate::passes::is_test_path(&file.path) {
                continue;
            }
            let imports: Imports = symbols::parse_imports(file, &table);
            stats.globs += imports.globs;
            let cons = symbols::count_conservative(file);
            stats.conservative.closures += cons.closures;
            stats.conservative.dyn_sites += cons.dyn_sites;
            stats.conservative.fn_ptr_types += cons.fn_ptr_types;
            for site in symbols::scan_calls(file, &table, &imports) {
                stats.total_sites += 1;
                let (targets, ambiguous) = match &site.resolution {
                    Resolution::Resolved(ids) => {
                        stats.resolved += 1;
                        (ids.clone(), false)
                    }
                    Resolution::External(_) => {
                        stats.external += 1;
                        (Vec::new(), false)
                    }
                    Resolution::LocalClosure => {
                        stats.local_closures += 1;
                        (Vec::new(), false)
                    }
                    Resolution::Ambiguous(ids) => {
                        stats.ambiguous += 1;
                        (ids.clone(), true)
                    }
                    Resolution::Unknown => {
                        stats.unknown += 1;
                        (Vec::new(), false)
                    }
                };
                if targets.is_empty() {
                    continue;
                }
                let Some(caller) = caller_id(&table, &site) else {
                    continue;
                };
                for callee in targets {
                    let idx = edges.len();
                    edges.push(Edge {
                        caller,
                        callee,
                        path: site.path.clone(),
                        line: site.line,
                        ambiguous,
                    });
                    out.entry(caller).or_default().push(idx);
                }
            }
        }
        CallGraph {
            table,
            edges,
            stats,
            out,
        }
    }

    /// Definition ids matching a `(crate, symbol)` seed.
    #[must_use]
    pub fn seed_ids(&self, crate_name: &str, symbol: &str) -> Vec<usize> {
        self.table.lookup(crate_name, symbol).to_vec()
    }

    /// BFS over callee edges from `seeds`. Returns reached-def →
    /// parent-def; a seed is its own parent. The parent chain is the
    /// shortest call chain from some seed, used verbatim in
    /// diagnostics.
    #[must_use]
    pub fn closure(&self, seeds: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if parent.insert(s, s).is_none() {
                queue.push_back(s);
            }
        }
        while let Some(cur) = queue.pop_front() {
            if let Some(edge_ids) = self.out.get(&cur) {
                for &e in edge_ids {
                    let callee = self.edges[e].callee;
                    if let std::collections::hash_map::Entry::Vacant(v) = parent.entry(callee) {
                        v.insert(cur);
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// Renders the call chain from a seed to `target` as
    /// `crate::Seed::fn → mid → target`. Crate prefixes appear on the
    /// seed and on any hop that changes crate.
    #[must_use]
    pub fn chain(&self, parents: &HashMap<usize, usize>, target: usize) -> String {
        let mut ids = vec![target];
        let mut cur = target;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            ids.push(p);
            cur = p;
            if ids.len() > 64 {
                break; // defensive: parents always terminate at a seed
            }
        }
        ids.reverse();
        let mut parts: Vec<String> = Vec::new();
        let mut prev_crate = "";
        for id in ids {
            let def = &self.table.defs[id];
            if def.crate_name == prev_crate {
                parts.push(def.symbol.clone());
            } else {
                parts.push(format!("{}::{}", def.crate_name, def.symbol));
                prev_crate = &def.crate_name;
            }
        }
        parts.join(" → ")
    }

    /// Serializes nodes, edges and stats for the
    /// `analyze-callgraph.json` artifact.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let nodes = self
            .table
            .defs
            .iter()
            .enumerate()
            .map(|(id, d)| {
                Json::Object(vec![
                    ("id".into(), Json::Number(id as f64)),
                    ("crate".into(), Json::String(d.crate_name.clone())),
                    ("symbol".into(), Json::String(d.symbol.clone())),
                    ("path".into(), Json::String(d.path.clone())),
                    ("line".into(), Json::Number(f64::from(d.line))),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("caller".into(), Json::Number(e.caller as f64)),
                    ("callee".into(), Json::Number(e.callee as f64)),
                    ("path".into(), Json::String(e.path.clone())),
                    ("line".into(), Json::Number(f64::from(e.line))),
                    ("ambiguous".into(), Json::Bool(e.ambiguous)),
                ])
            })
            .collect();
        Json::Object(vec![
            (
                "schema".into(),
                Json::String("hqs-analyze-callgraph/1".into()),
            ),
            ("stats".into(), self.stats_json()),
            ("nodes".into(), Json::Array(nodes)),
            ("edges".into(), Json::Array(edges)),
        ])
    }

    /// The stats object alone (embedded in `analyze-report.json`).
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let s = &self.stats;
        Json::Object(vec![
            (
                "functions".into(),
                Json::Number(self.table.defs.len() as f64),
            ),
            ("edges".into(), Json::Number(self.edges.len() as f64)),
            ("call_sites".into(), Json::Number(s.total_sites as f64)),
            ("resolved".into(), Json::Number(s.resolved as f64)),
            ("external".into(), Json::Number(s.external as f64)),
            (
                "local_closures".into(),
                Json::Number(s.local_closures as f64),
            ),
            ("ambiguous".into(), Json::Number(s.ambiguous as f64)),
            ("unknown".into(), Json::Number(s.unknown as f64)),
            (
                "resolution_rate_percent".into(),
                Json::Number((s.resolution_rate() * 100.0).round() / 100.0),
            ),
            (
                "conservative".into(),
                Json::Object(vec![
                    (
                        "closures".into(),
                        Json::Number(s.conservative.closures as f64),
                    ),
                    (
                        "dyn_sites".into(),
                        Json::Number(s.conservative.dyn_sites as f64),
                    ),
                    (
                        "fn_pointer_types".into(),
                        Json::Number(s.conservative.fn_ptr_types as f64),
                    ),
                    ("glob_imports".into(), Json::Number(s.globs as f64)),
                ]),
            ),
        ])
    }
}

/// The defining id of the function containing a call site, preferring a
/// definition in the same file when the symbol is multiply defined.
fn caller_id(table: &SymbolTable, site: &CallSite) -> Option<usize> {
    let ids = table.lookup(&site.caller_crate, &site.caller_symbol);
    ids.iter()
        .find(|&&id| table.defs[id].path == site.path)
        .or_else(|| ids.first())
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::source::SourceFile;
    use crate::workspace::CrateInfo;
    use std::path::PathBuf;

    fn ws_two_deep() -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            crates: vec![CrateInfo {
                name: "hqs-sat".into(),
                dir: "crates/sat".into(),
                manifest: Manifest {
                    name: "hqs-sat".into(),
                    deps: vec![],
                    dev_deps: vec![],
                },
            }],
            files: vec![SourceFile::analyze(
                "crates/sat/src/lib.rs".into(),
                "hqs-sat".into(),
                "pub struct Solver;\n\
                 impl Solver {\n\
                     pub fn propagate(&mut self) { self.helper_one(); }\n\
                     fn helper_one(&self) { helper_two(); }\n\
                 }\n\
                 fn helper_two() {}\n\
                 fn unrelated() {}\n"
                    .into(),
            )],
        }
    }

    #[test]
    fn closure_reaches_two_deep_with_chain() {
        let graph = CallGraph::build(&ws_two_deep());
        let seeds = graph.seed_ids("hqs-sat", "Solver::propagate");
        assert_eq!(seeds.len(), 1);
        let reach = graph.closure(&seeds);
        let two = graph.seed_ids("hqs-sat", "helper_two")[0];
        assert!(reach.contains_key(&two));
        let unrelated = graph.seed_ids("hqs-sat", "unrelated")[0];
        assert!(!reach.contains_key(&unrelated));
        let chain = graph.chain(&reach, two);
        assert_eq!(
            chain,
            "hqs-sat::Solver::propagate → Solver::helper_one → helper_two"
        );
    }

    #[test]
    fn stats_count_and_rate() {
        let graph = CallGraph::build(&ws_two_deep());
        assert_eq!(graph.stats.total_sites, 2);
        assert_eq!(graph.stats.resolved, 2);
        // Exact float comparison of a computed constant.
        assert!((graph.stats.resolution_rate() - 100.0).abs() < 1e-9);
    }
}
