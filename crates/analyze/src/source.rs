//! Source model: one lexed file plus the item/brace tracker that
//! attributes every token to its crate, module path, enclosing function
//! and loop depth, and the `// analyze::allow(...)` annotation scanner.
//!
//! The tracker is a single forward scan over the token stream keeping a
//! stack of scopes. It is deliberately not a parser — it only needs to
//! answer "which fn am I in", "am I inside a loop body", "am I inside a
//! `#[cfg(test)]` module" — but it has to get braces right in the
//! presence of `impl X for Y`, `for`-loops, closures appearing inside
//! loop headers, struct literals and attributes, all of which are
//! handled below.

use std::cell::Cell;

use crate::lexer::{self, Token, TokenKind};

/// What a brace-delimited scope on the stack is.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ScopeKind {
    /// `mod name { ... }`
    Module { name: String, test: bool },
    /// `impl Type { ... }` / `impl Trait for Type { ... }`
    Impl { type_name: String },
    /// `fn name(...) { ... }` — `qualified` is `Type::name` inside an
    /// impl block, else just `name`.
    Fn { qualified: String, test: bool },
    /// `loop`/`while`/`for` body.
    Loop,
    /// Any other brace pair: blocks, struct literals, match bodies, ...
    Block,
}

/// Context attributed to a single non-trivia token.
#[derive(Clone, Debug)]
pub struct TokenCtx {
    /// Index into the file's token vector.
    pub index: usize,
    /// Enclosing function as `fn_name` or `Type::fn_name`; empty when
    /// the token is outside any fn body.
    pub in_fn: String,
    /// How many `loop`/`while`/`for` bodies enclose the token *within
    /// the current fn* (closures reset to the fn they lexically sit in,
    /// which is what a lexical pass wants).
    pub loop_depth: u32,
    /// Module path within the file, `::`-joined (`tests`, `foo::bar`).
    pub module_path: String,
    /// Token is inside a `#[cfg(test)]` module or `#[test]` fn.
    pub in_test: bool,
    /// Token is part of an attribute (`#[...]` / `#![...]`).
    pub in_attr: bool,
}

/// A `// analyze::allow(kind): reason` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The allowed diagnostic kind: `panic`, `alloc`, `newtype`,
    /// `cancel`, `lock` or `determinism`.
    pub kind: String,
    /// First source line the annotation covers.
    pub from_line: u32,
    /// Last source line the annotation covers (inclusive).
    pub to_line: u32,
    /// The justification after the colon.
    pub reason: String,
    /// Line the annotation itself sits on (for bad-annotation reports).
    pub line: u32,
    /// Set when the annotation actually suppresses a finding during a
    /// run — [`SourceFile::allowed`] marks it on match. The ratchet is
    /// two-way: after all passes run, an allow that never fired is
    /// itself a finding (a suppression that suppresses nothing is a
    /// stale claim about the code).
    pub used: Cell<bool>,
}

/// A fully analyzed source file: tokens plus per-token context and
/// annotations. Passes work off this; nothing re-reads the file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate (package) name owning the file, e.g. `hqs-sat`.
    pub crate_name: String,
    /// Raw file contents.
    pub text: String,
    /// The full token stream, trivia included.
    pub tokens: Vec<Token>,
    /// Context for every token, trivia included (trivia gets the context
    /// of the position it occupies).
    pub ctx: Vec<TokenCtx>,
    /// All well-formed allow annotations in the file.
    pub allows: Vec<Allow>,
    /// Malformed annotations: (line, problem description).
    pub bad_allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and scope-tracks `text`.
    #[must_use]
    pub fn analyze(path: String, crate_name: String, text: String) -> Self {
        let tokens = lexer::lex(&text);
        let ctx = track(&text, &tokens);
        let (allows, bad_allows) = scan_allows(&text, &tokens);
        SourceFile {
            path,
            crate_name,
            text,
            tokens,
            ctx,
            allows,
            bad_allows,
        }
    }

    /// Token text helper.
    #[must_use]
    pub fn text_of(&self, t: &Token) -> &str {
        t.text(&self.text)
    }

    /// Is `line` covered by an allow annotation of `kind`?
    /// Returns the matching annotation if so, and marks it used.
    ///
    /// Passes must therefore only consult this at genuine suppression
    /// points — after a finding has been detected, never as a
    /// pre-filter — or the unused-annotation ratchet would count
    /// non-suppressing annotations as live.
    #[must_use]
    pub fn allowed(&self, kind: &str, line: u32) -> Option<&Allow> {
        let hit = self
            .allows
            .iter()
            .find(|a| a.kind == kind && a.from_line <= line && line <= a.to_line);
        if let Some(a) = hit {
            a.used.set(true);
        }
        hit
    }
}

/// The forward scan attributing context to each token.
fn track(src: &str, tokens: &[Token]) -> Vec<TokenCtx> {
    let mut ctx = Vec::with_capacity(tokens.len());
    let mut stack: Vec<ScopeKind> = Vec::new();

    // Pending state between a keyword and its opening brace.
    let mut pending_fn: Option<String> = None; // fn name awaiting `{`
    let mut pending_fn_test = false;
    let mut pending_mod: Option<String> = None;
    let mut pending_mod_test = false;
    let mut pending_impl: Option<String> = None; // impl type awaiting `{`
    let mut impl_active = false; // between `impl` and its `{`
    let mut impl_saw_for = false;
    let mut pending_loop = false;
    let mut next_is_fn_name = false;
    let mut next_is_mod_name = false;
    let mut cfg_test_attr = false; // last attr was #[cfg(test)] / #[test]
    let mut pending_test = false; // attribute applies to next item

    // Attribute tracking: `#` `[` ... `]` (or `#` `!` `[`).
    let mut attr_depth = 0usize; // bracket depth inside an attribute
    let mut attr_pending_bang = false; // saw `#`, maybe `!`, awaiting `[`
    let mut attr_start: Option<usize> = None;

    // Parenthesis depth — used to keep closure braces inside a loop
    // header (e.g. `for x in v.iter().map(|y| { .. })`) from consuming
    // the pending loop.
    let mut paren_depth = 0usize;
    let mut angle_depth = 0usize; // inside impl generics `impl<T: X<Y>>`

    let current = |stack: &[ScopeKind]| -> (String, u32, String, bool) {
        let mut in_fn = String::new();
        let mut loop_depth = 0u32;
        let mut modules: Vec<&str> = Vec::new();
        let mut in_test = false;
        for s in stack {
            match s {
                ScopeKind::Fn { qualified, test } => {
                    in_fn = qualified.clone();
                    loop_depth = 0;
                    if *test {
                        in_test = true;
                    }
                }
                ScopeKind::Loop => loop_depth += 1,
                ScopeKind::Module { name, test } => {
                    modules.push(name);
                    if *test {
                        in_test = true;
                    }
                }
                ScopeKind::Impl { .. } | ScopeKind::Block => {}
            }
        }
        (in_fn, loop_depth, modules.join("::"), in_test)
    };

    for (i, tok) in tokens.iter().enumerate() {
        let (in_fn, loop_depth, module_path, in_test) = current(&stack);
        let in_attr = attr_depth > 0 || attr_pending_bang;
        ctx.push(TokenCtx {
            index: i,
            in_fn,
            loop_depth,
            module_path,
            in_test,
            in_attr,
        });
        if tok.is_trivia() {
            continue;
        }
        let text = tok.text(src);

        // --- attribute machinery -------------------------------------
        if attr_pending_bang {
            match text {
                "!" => continue,
                "[" => {
                    attr_pending_bang = false;
                    attr_depth = 1;
                    continue;
                }
                _ => {
                    // A lone `#` not starting an attribute (rare; raw
                    // strings already lexed away). Fall through.
                    attr_pending_bang = false;
                }
            }
        } else if attr_depth > 0 {
            match text {
                "[" => attr_depth += 1,
                "]" => {
                    attr_depth -= 1;
                    if attr_depth == 0 {
                        // Classify the finished attribute.
                        if let Some(s) = attr_start {
                            let attr_text: String = tokens[s..=i]
                                .iter()
                                .filter(|t| !t.is_trivia())
                                .map(|t| t.text(src))
                                .collect();
                            if attr_text.contains("cfg(test") || attr_text == "#[test]" {
                                cfg_test_attr = true;
                            }
                        }
                        if cfg_test_attr {
                            pending_test = true;
                            cfg_test_attr = false;
                        }
                        attr_start = None;
                    }
                }
                _ => {}
            }
            continue;
        }
        if tok.kind == TokenKind::Punct && text == "#" {
            attr_pending_bang = true;
            attr_start = Some(i);
            continue;
        }

        // --- name captures after item keywords -----------------------
        if next_is_fn_name {
            if tok.kind == TokenKind::Ident {
                let name = text.strip_prefix("r#").unwrap_or(text).to_string();
                let qualified = stack
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        ScopeKind::Impl { type_name } => Some(type_name.clone()),
                        _ => None,
                    })
                    .map_or_else(|| name.clone(), |t| format!("{t}::{name}"));
                pending_fn = Some(qualified);
                pending_fn_test = pending_test;
                pending_test = false;
            }
            next_is_fn_name = false;
            continue;
        }
        if next_is_mod_name {
            if tok.kind == TokenKind::Ident {
                pending_mod = Some(text.strip_prefix("r#").unwrap_or(text).to_string());
                pending_mod_test = pending_test;
                pending_test = false;
            }
            next_is_mod_name = false;
            continue;
        }

        // --- impl header ---------------------------------------------
        if impl_active {
            match text {
                "<" => {
                    angle_depth += 1;
                    continue;
                }
                ">" => {
                    angle_depth = angle_depth.saturating_sub(1);
                    continue;
                }
                "for" if angle_depth == 0 => {
                    // `impl Trait for Type` — the type comes after.
                    impl_saw_for = true;
                    pending_impl = None;
                    continue;
                }
                "{" if angle_depth == 0 => {
                    stack.push(ScopeKind::Impl {
                        type_name: pending_impl.take().unwrap_or_default(),
                    });
                    impl_active = false;
                    impl_saw_for = false;
                    continue;
                }
                _ => {
                    if tok.kind == TokenKind::Ident
                        && angle_depth == 0
                        && (pending_impl.is_none() || impl_saw_for)
                        && !matches!(text, "where" | "dyn" | "mut" | "const" | "unsafe")
                    {
                        pending_impl = Some(text.to_string());
                        impl_saw_for = false;
                    }
                    continue;
                }
            }
        }

        match (tok.kind, text) {
            (TokenKind::Ident, "fn") => {
                next_is_fn_name = true;
            }
            (TokenKind::Ident, "mod") => {
                next_is_mod_name = true;
            }
            // `impl` in type position (`arg: impl Fn()`, `-> impl
            // Iterator`) is not an impl block: inside a paren list or a
            // pending fn signature it never owns a brace.
            (TokenKind::Ident, "impl") if paren_depth == 0 && pending_fn.is_none() => {
                impl_active = true;
                impl_saw_for = false;
                angle_depth = 0;
                pending_impl = None;
                pending_test = false;
            }
            // Only track loops inside fn bodies.
            (TokenKind::Ident, "loop" | "while")
                if stack.iter().any(|s| matches!(s, ScopeKind::Fn { .. })) =>
            {
                pending_loop = true;
            }
            (TokenKind::Ident, "for") => {
                // `for`-loop vs `impl Trait for` (handled above) vs
                // `for<'a>` HRTB: skip HRTB by peeking at `<`.
                let next_code = tokens[i + 1..].iter().find(|t| !t.is_trivia());
                let is_hrtb = next_code.is_some_and(|t| t.text(src) == "<");
                if !is_hrtb && stack.iter().any(|s| matches!(s, ScopeKind::Fn { .. })) {
                    pending_loop = true;
                }
            }
            (TokenKind::Punct, "(") => paren_depth += 1,
            (TokenKind::Punct, ")") => paren_depth = paren_depth.saturating_sub(1),
            (TokenKind::Punct, "{") => {
                if let Some(name) = pending_fn.take() {
                    stack.push(ScopeKind::Fn {
                        qualified: name,
                        test: pending_fn_test,
                    });
                    pending_fn_test = false;
                } else if let Some(name) = pending_mod.take() {
                    stack.push(ScopeKind::Module {
                        name,
                        test: pending_mod_test,
                    });
                    pending_mod_test = false;
                } else if pending_loop && paren_depth == 0 {
                    stack.push(ScopeKind::Loop);
                    pending_loop = false;
                } else {
                    stack.push(ScopeKind::Block);
                }
            }
            (TokenKind::Punct, "}") => {
                stack.pop();
            }
            (TokenKind::Punct, ";") => {
                // Trait method declaration `fn f(...);`, `mod name;`,
                // statement end: clear pendings that never got a body.
                pending_fn = None;
                pending_mod = None;
                pending_loop = pending_loop && paren_depth > 0;
                pending_test = false;
            }
            _ => {}
        }
    }
    ctx
}

/// Scans comments for `analyze::allow(kind): reason` annotations.
/// Returns (well-formed, malformed-as-(line, message)).
fn scan_allows(src: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment && tok.kind != TokenKind::BlockComment {
            continue;
        }
        let text = tok.text(src);
        // Doc comments describe code — including, in the analyzer's own
        // sources and DESIGN.md excerpts, the annotation syntax itself —
        // so only plain comments carry live annotations.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/*!")
            || text.starts_with("/**")
        {
            continue;
        }
        let Some(pos) = text.find("analyze::allow") else {
            continue;
        };
        let rest = &text[pos + "analyze::allow".len()..];
        let Some(rest) = rest.strip_prefix('(') else {
            bad.push((
                tok.line,
                "malformed annotation: expected `(` after `analyze::allow`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push((tok.line, "malformed annotation: missing `)`".to_string()));
            continue;
        };
        let kind = rest[..close].trim().to_string();
        if !matches!(
            kind.as_str(),
            "panic" | "alloc" | "newtype" | "cancel" | "lock" | "determinism"
        ) {
            bad.push((
                tok.line,
                format!(
                    "unknown allow kind `{kind}` (expected panic, alloc, newtype, cancel, lock or \
                     determinism)"
                ),
            ));
            continue;
        }
        let mut after = rest[close + 1..].trim_start();
        // Optional `lines=N` span extension before the colon.
        let mut span: u32 = 1;
        if let Some(stripped) = after.strip_prefix("lines=") {
            let digits: String = stripped.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(n) = digits.parse::<u32>() {
                span = n;
                after = stripped[digits.len()..].trim_start();
            }
        }
        let Some(reason) = after.strip_prefix(':') else {
            bad.push((
                tok.line,
                "malformed annotation: expected `: reason` after the kind".to_string(),
            ));
            continue;
        };
        let reason = reason.trim();
        let reason = reason.trim_end_matches("*/").trim();
        if reason.is_empty() {
            bad.push((
                tok.line,
                format!("allow({kind}) annotation has an empty reason"),
            ));
            continue;
        }
        // A trailing comment covers its own line; a standalone comment
        // covers the next `span` lines.
        allows.push(Allow {
            kind,
            from_line: tok.line,
            to_line: tok.line + span,
            reason: reason.to_string(),
            line: tok.line,
            used: Cell::new(false),
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::analyze("test.rs".into(), "hqs-test".into(), src.into())
    }

    fn ctx_of<'a>(f: &'a SourceFile, needle: &str) -> &'a TokenCtx {
        let idx = f
            .tokens
            .iter()
            .position(|t| t.text(&f.text) == needle)
            .unwrap_or_else(|| panic!("token {needle} not found"));
        &f.ctx[idx]
    }

    #[test]
    fn fn_attribution() {
        let f = sf("fn alpha() { body1; } fn beta() { body2; }");
        assert_eq!(ctx_of(&f, "body1").in_fn, "alpha");
        assert_eq!(ctx_of(&f, "body2").in_fn, "beta");
    }

    #[test]
    fn impl_qualifies_fn() {
        let f = sf("impl Solver { fn propagate(&mut self) { body; } }");
        assert_eq!(ctx_of(&f, "body").in_fn, "Solver::propagate");
    }

    #[test]
    fn impl_trait_for_type() {
        let f = sf("impl Display for Lit { fn fmt(&self) { body; } }");
        assert_eq!(ctx_of(&f, "body").in_fn, "Lit::fmt");
    }

    #[test]
    fn impl_with_generics() {
        let f = sf("impl<T: Ord<K>> Heap { fn pop(&mut self) { body; } }");
        assert_eq!(ctx_of(&f, "body").in_fn, "Heap::pop");
    }

    #[test]
    fn loop_depth_counts() {
        let f = sf("fn f() { while x { for y in z { inner; } mid; } outer; }");
        assert_eq!(ctx_of(&f, "inner").loop_depth, 2);
        assert_eq!(ctx_of(&f, "mid").loop_depth, 1);
        assert_eq!(ctx_of(&f, "outer").loop_depth, 0);
    }

    #[test]
    fn closure_in_loop_header_is_not_loop_body() {
        // The closure's `{` appears while paren_depth > 0, so the
        // pending loop must not be consumed by it.
        let f = sf("fn f() { for x in v.iter().map(|y| { tick; y }) { body; } }");
        assert_eq!(ctx_of(&f, "body").loop_depth, 1);
        assert_eq!(ctx_of(&f, "tick").loop_depth, 0);
    }

    #[test]
    fn for_loop_vs_impl_for() {
        let f = sf("impl Iterator for Wrap { fn next(&mut self) { for i in 0..3 { body; } } }");
        let c = ctx_of(&f, "body");
        assert_eq!(c.in_fn, "Wrap::next");
        assert_eq!(c.loop_depth, 1);
    }

    #[test]
    fn impl_trait_in_param_and_return_position() {
        let f = sf("fn f(stop: impl Fn() -> bool) { body1; } fn g() -> impl Iterator<Item = u8> { body2; }");
        assert_eq!(ctx_of(&f, "body1").in_fn, "f");
        assert_eq!(ctx_of(&f, "body2").in_fn, "g");
    }

    #[test]
    fn cfg_test_module() {
        let f = sf("fn prod() { a; } #[cfg(test)] mod tests { fn t() { b; } }");
        assert!(!ctx_of(&f, "a").in_test);
        let c = ctx_of(&f, "b");
        assert!(c.in_test);
        assert_eq!(c.module_path, "tests");
    }

    #[test]
    fn test_attribute_fn() {
        let f = sf("#[test] fn check() { b; } fn prod() { a; }");
        assert!(ctx_of(&f, "b").in_test);
        assert!(!ctx_of(&f, "a").in_test);
    }

    #[test]
    fn attr_tokens_marked() {
        let f = sf("#[derive(Debug)] struct S { x: u8 }");
        assert!(ctx_of(&f, "derive").in_attr);
        assert!(ctx_of(&f, "Debug").in_attr);
        assert!(!ctx_of(&f, "struct").in_attr);
    }

    #[test]
    fn trait_decl_semicolon_clears_pending_fn() {
        let f = sf("trait T { fn declared(&self); } fn real() { body; }");
        assert_eq!(ctx_of(&f, "body").in_fn, "real");
    }

    #[test]
    fn allow_annotation_parses() {
        let f = sf("fn f() {\n    // analyze::allow(panic): index proven in bounds\n    x[0];\n}");
        assert_eq!(f.allows.len(), 1);
        let a = &f.allows[0];
        assert_eq!(a.kind, "panic");
        assert_eq!(a.from_line, 2);
        assert_eq!(a.to_line, 3);
        assert!(a.reason.contains("proven"));
        assert!(f.allowed("panic", 3).is_some());
        assert!(f.allowed("alloc", 3).is_none());
    }

    #[test]
    fn allow_lines_span() {
        let f = sf("// analyze::allow(alloc) lines=3: grows once\na;\nb;\nc;\nd;");
        let a = &f.allows[0];
        assert_eq!((a.from_line, a.to_line), (1, 4));
        assert!(f.allowed("alloc", 4).is_some());
        assert!(f.allowed("alloc", 5).is_none());
    }

    #[test]
    fn bad_annotations_reported() {
        let f = sf(
            "// analyze::allow(panic):\n// analyze::allow(bogus): why\n// analyze::allow panic: x",
        );
        assert_eq!(f.allows.len(), 0);
        assert_eq!(f.bad_allows.len(), 3, "{:?}", f.bad_allows);
    }

    #[test]
    fn nested_modules_path() {
        let f = sf("mod outer { mod inner { fn f() { body; } } }");
        assert_eq!(ctx_of(&f, "body").module_path, "outer::inner");
    }
}
