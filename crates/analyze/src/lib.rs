//! `hqs-analyze`: the workspace's token-level static-analysis
//! framework.
//!
//! The crate is deliberately dependency-free: a hand-rolled Rust
//! [`lexer`], an item/brace tracker ([`source`]) that attributes every
//! token to its crate, module path, enclosing function and loop depth,
//! and a set of [`passes`] over the lexed workspace:
//!
//! * **layering** — the crate DAG (`base → cnf → {sat, proof} →
//!   {maxsat, aig} → qbf → core → apps`) is enforced at both the
//!   manifest and the source level, including dev-dependency scoping
//!   and reach-through into other crates' private modules;
//! * **panic-path** — no `unwrap`/`expect`/`panic!`/`unreachable!`/`[]`
//!   indexing in the functions declared hot in `analyze-hot-paths.toml`;
//! * **hot-alloc** — no per-iteration allocation inside the loops of
//!   those same functions;
//! * **newtype** — `Lit`/`Var` cross into raw integers only through the
//!   sanctioned helpers in `hqs-base`;
//! * **audit** — the PR-1 hygiene rules (`forbid(unsafe_code)`, crate
//!   docs, `todo!`-family bans, unwrap budgets), re-implemented on the
//!   lexer and run separately under `cargo run -p xtask -- audit`.
//!
//! On top of the per-function passes sits an interprocedural layer: a
//! name-resolution table ([`symbols`]) resolves `use` imports (including
//! grouped and `as`-renamed ones), free-function paths and receiver-type
//! method calls across the workspace, and [`callgraph`] assembles the
//! resulting edges into a workspace call graph with explicit
//! conservatism accounting (closures, `dyn` call sites, fn-pointer
//! types, glob imports). Several passes consume it:
//!
//! * **hot-transitive** — the panic/alloc denies above applied to the
//!   full callee closure of the hot seeds, with the seed-to-sink call
//!   chain in every diagnostic; implicit-panic sites (division,
//!   `split_at`, indexing) that the value-range layer proves safe are
//!   discharged before they become findings;
//! * **determinism** — nondeterministic inputs (`HashMap`/`HashSet`
//!   iteration order, `RandomState`, `Instant::now`/`SystemTime::now`,
//!   `thread::current`, `env::var`) are denied in the callee closure of
//!   the `[determinism]` roots, so solver verdicts, certificates and
//!   logs stay bit-identical across runs;
//! * **cancel-poll** — every loop in a declared solver-entry function
//!   must reach a cancellation poll in its body;
//! * **concurrency** — atomic `Ordering::` sites audited two-way
//!   against a committed allowlist, and no allocation or solver call
//!   while a sharded-deque `MutexGuard` is held in a hot-path function.
//!
//! Underneath the interprocedural passes sits a lattice-generic
//! [`dataflow`] engine (any [`dataflow::Domain`] solves on the
//! per-function CFGs): the bitset gen/kill domains from the
//! path-sensitive passes, an [`interval`] constant/range domain with
//! branch refinement and widening, and the bounds-predicate domain in
//! [`passes::value_range`] that turns the two into panic-freedom proofs
//! and hot-loop bounds-check advisories.
//!
//! Findings are [`diag::Diagnostic`]s, serialized with the built-in
//! [`json`] support and ratcheted against the committed
//! `analyze-baseline.json` via [`baseline`]: CI fails on any finding
//! the baseline doesn't cover *and* on any baseline entry that no
//! longer matches, so recorded debt can only shrink.
//!
//! Justified exceptions are written at the site as
//! `// analyze::allow(panic|alloc|newtype|cancel|lock|determinism):
//! <reason>` — annotations with a missing reason or unknown kind are
//! findings themselves.
//!
//! The driver lives in `xtask` (`cargo run -p xtask -- analyze`); this
//! crate is pure library so the passes stay unit-testable against the
//! fixture corpus in `crates/analyze/fixtures/`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod interval;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod source;
pub mod symbols;
pub mod workspace;

pub use diag::Diagnostic;
pub use workspace::Workspace;
