//! A minimal JSON parser and emitter.
//!
//! The workspace is dependency-free by policy, so the analyzer carries
//! its own JSON support. It covers the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) — enough to
//! round-trip the report and baseline files and survive hand edits.

/// A JSON value. Object fields keep insertion order (we never need
/// map semantics and order stability keeps diffs clean).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, which is all JSON guarantees).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// String accessor.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array accessor.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!(
                "expected `{c}`, found `{got}` at offset {}",
                self.pos
            )),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect_char(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::String(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character `{c}` at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_char('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => break,
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
        Ok(Json::Object(fields))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => break,
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
        Ok(out)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

/// Emits `v` with two-space indentation and a stable field order.
#[must_use]
pub fn emit_pretty(v: &Json) -> String {
    let mut out = String::new();
    emit_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn emit_into(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                // Integral f64 emitted without a fraction.
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::String(s) => emit_string(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                emit_into(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                emit_string(k, out);
                out.push_str(": ");
                emit_into(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basics() {
        assert_eq!(parse("null").expect("null"), Json::Null);
        assert_eq!(parse(" true ").expect("true"), Json::Bool(true));
        assert_eq!(parse("-1.5e2").expect("num"), Json::Number(-150.0));
        assert_eq!(
            parse(r#""a\nbA""#).expect("str"),
            Json::String("a\nbA".into())
        );
    }

    #[test]
    fn round_trip_nested() {
        let v = Json::Object(vec![
            (
                "list".into(),
                Json::Array(vec![Json::Number(1.0), Json::Null]),
            ),
            ("s".into(), Json::String("q\"uo\\te\n".into())),
            ("empty".into(), Json::Array(vec![])),
            (
                "obj".into(),
                Json::Object(vec![("b".into(), Json::Bool(false))]),
            ),
        ]);
        let text = emit_pretty(&v);
        assert_eq!(parse(&text).expect("reparse"), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
