//! Panic-path pass: functions declared hot in `analyze-hot-paths.toml`
//! must not contain latent panics.
//!
//! Inside a hot function the pass denies `.unwrap()`, `.expect(…)`,
//! `panic!`, `unreachable!` and `[…]` indexing. The fix is `get`/`match`
//! (or restructuring so the invariant is by-construction); where the
//! index really is proven in bounds, the site carries a
//! `// analyze::allow(panic): <reason>` annotation so the justification
//! is part of the code.
//!
//! The matcher itself lives in `super::panic_finding` and is shared
//! with the `hot-transitive` pass, which applies the same rules to
//! every function *reachable* from a seed.

use crate::config::HotPaths;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, panic_finding};

/// Runs the panic-path pass.
#[must_use]
pub fn run(ws: &Workspace, hot: &HotPaths) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_fn.is_empty()
                || ctx.in_test
                || ctx.in_attr
                || !hot.is_hot(&file.crate_name, &ctx.in_fn)
            {
                continue;
            }
            if let Some(message) = panic_finding(file, &code, k) {
                let tok = &file.tokens[i];
                if file.allowed("panic", tok.line).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    pass: "panic-path".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message,
                });
            }
        }
    }
    diags
}
