//! Panic-path pass: functions declared hot in `analyze-hot-paths.toml`
//! must not contain latent panics.
//!
//! Inside a hot function the pass denies `.unwrap()`, `.expect(…)`,
//! `panic!`, `unreachable!` and `[…]` indexing. The fix is `get`/`match`
//! (or restructuring so the invariant is by-construction); where the
//! index really is proven in bounds, the site carries a
//! `// analyze::allow(panic): <reason>` annotation so the justification
//! is part of the code.

use crate::config::HotPaths;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Runs the panic-path pass.
#[must_use]
pub fn run(ws: &Workspace, hot: &HotPaths) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_fn.is_empty()
                || ctx.in_test
                || ctx.in_attr
                || !hot.is_hot(&file.crate_name, &ctx.in_fn)
            {
                continue;
            }
            let tok = &file.tokens[i];
            let text = file.text_of(tok);
            let finding: Option<String> = match (tok.kind, text) {
                (TokenKind::Ident, "unwrap" | "expect")
                    if k > 0
                        && text_at(file, &code, k - 1) == "."
                        && text_at(file, &code, k + 1) == "(" =>
                {
                    Some(format!(
                        "`.{text}(…)` in hot path — use `get`/`match`, or justify with \
                         `// analyze::allow(panic): …`"
                    ))
                }
                (TokenKind::Ident, "panic" | "unreachable")
                    if text_at(file, &code, k + 1) == "!" =>
                {
                    Some(format!(
                        "`{text}!` in hot path — return an error or make the state unrepresentable, \
                         or justify with `// analyze::allow(panic): …`"
                    ))
                }
                (TokenKind::Punct, "[") if k > 0 && is_index_base(file, &code, k - 1) => {
                    Some(
                        "`[…]` indexing in hot path — use `get`, or justify with \
                         `// analyze::allow(panic): …`"
                            .to_string(),
                    )
                }
                _ => None,
            };
            if let Some(message) = finding {
                if file.allowed("panic", tok.line).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    pass: "panic-path".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message,
                });
            }
        }
    }
    diags
}

/// Is the code token at view position `k` something a `[` after it
/// would index? (An identifier, a closing paren/bracket — i.e. an
/// expression — rather than the start of an array literal, slice type
/// or attribute.)
fn is_index_base(file: &crate::source::SourceFile, code: &[usize], k: usize) -> bool {
    let Some(&i) = code.get(k) else { return false };
    let tok = &file.tokens[i];
    match tok.kind {
        TokenKind::Ident => {
            // `let x = [0; 4]` etc. start after keywords, not expressions.
            !matches!(
                file.text_of(tok),
                "mut" | "let" | "in" | "return" | "if" | "else" | "match" | "ref" | "box" | "as"
            )
        }
        TokenKind::Punct => matches!(file.text_of(tok), ")" | "]"),
        _ => false,
    }
}
