//! Transitive hot-path discipline: the panic/alloc denies follow the
//! call graph instead of stopping at the functions hand-listed in
//! `analyze-hot-paths.toml`.
//!
//! The pass seeds from `[hot-paths] functions`, computes the callee
//! closure over the workspace [`CallGraph`], and applies the shared
//! panic matcher (any position) and allocation matcher (inside loops)
//! to every *reachable* function. Seeds themselves are excluded from
//! those two matchers — the per-function `panic-path`/`hot-alloc`
//! passes already cover them, and double-reporting the same token would
//! make the baseline noisy.
//!
//! The *implicit* panic matcher (`super::implicit_panic_finding`:
//! `split_at`, `copy_from_slice`/`clone_from_slice`, `/` and `%` by a
//! non-literal divisor) applies to the **whole** closure, seeds
//! included — those shapes carry no panic vocabulary, so no other pass
//! reports them and there is nothing to double-report.
//!
//! Every diagnostic carries the discovered call chain
//! (`hqs-sat::Solver::propagate → Solver::value → helper`), so a CI
//! failure shows *why* a function is considered hot without the reader
//! reconstructing the graph. Sites are silenced by the same
//! `// analyze::allow(panic|alloc): …` annotations the seeded passes
//! honor: an allow is a statement about the site, not about who calls
//! it.
//!
//! Sites the value-range dataflow *proves* safe
//! ([`super::value_range::Proofs`]: divisor nonzero, `split_at`/index
//! argument in bounds) are not reported at all — a proof beats both a
//! finding and an annotation.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

use super::value_range::Proofs;
use super::{alloc_finding, code_indices, implicit_panic_finding, is_test_path, panic_finding};

/// Runs the transitive hot-path pass. `proofs` holds the value-range
/// facts that discharge implicit-panic sites.
#[must_use]
pub fn run(
    ws: &Workspace,
    cfg: &AnalyzeConfig,
    graph: &CallGraph,
    proofs: &Proofs,
) -> Vec<Diagnostic> {
    let mut seeds: Vec<usize> = Vec::new();
    for f in &cfg.hot.functions {
        seeds.extend(graph.seed_ids(&f.crate_name, &f.symbol));
    }
    if seeds.is_empty() {
        return Vec::new();
    }
    let seed_set: HashSet<usize> = seeds.iter().copied().collect();
    let reach = graph.closure(&seeds);

    // Group reached defs by file so each file is scanned once;
    // remember the chain and seed-ness per (path, symbol).
    let mut per_file: HashMap<&str, HashMap<&str, (String, bool)>> = HashMap::new();
    for &id in reach.keys() {
        let def = &graph.table.defs[id];
        per_file.entry(def.path.as_str()).or_default().insert(
            def.symbol.as_str(),
            (graph.chain(&reach, id), seed_set.contains(&id)),
        );
    }

    let mut diags = Vec::new();
    for file in &ws.files {
        let Some(symbols) = per_file.get(file.path.as_str()) else {
            continue;
        };
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_fn.is_empty() || ctx.in_test || ctx.in_attr {
                continue;
            }
            let Some((chain, is_seed)) = symbols.get(ctx.in_fn.as_str()) else {
                continue;
            };
            let tok = &file.tokens[i];
            if proofs.is_proven(&file.path, k) {
                // The value-range dataflow discharged this site.
                continue;
            }
            if let Some(message) = implicit_panic_finding(file, &code, k) {
                if file.allowed("panic", tok.line).is_none() {
                    diags.push(Diagnostic {
                        pass: "hot-transitive".into(),
                        path: file.path.clone(),
                        line: tok.line,
                        symbol: ctx.in_fn.clone(),
                        message: format!("{message} [hot via {chain}]"),
                    });
                }
                continue;
            }
            if *is_seed {
                // Explicit panic/alloc shapes in seeds are already
                // covered by `panic-path`/`hot-alloc`.
                continue;
            }
            if let Some(message) = panic_finding(file, &code, k) {
                if file.allowed("panic", tok.line).is_none() {
                    diags.push(Diagnostic {
                        pass: "hot-transitive".into(),
                        path: file.path.clone(),
                        line: tok.line,
                        symbol: ctx.in_fn.clone(),
                        message: format!("{message} [hot via {chain}]"),
                    });
                }
                continue;
            }
            if ctx.loop_depth > 0 {
                if let Some(message) = alloc_finding(file, &code, k) {
                    if file.allowed("alloc", tok.line).is_none() {
                        diags.push(Diagnostic {
                            pass: "hot-transitive".into(),
                            path: file.path.clone(),
                            line: tok.line,
                            symbol: ctx.in_fn.clone(),
                            message: format!("{message} [hot via {chain}]"),
                        });
                    }
                }
            }
        }
    }
    diags
}
