//! Shared guard-liveness machinery: which `MutexGuard` bindings are
//! live at which program points of a function.
//!
//! Both consumers sit on top of the same analysis:
//!
//! * `concurrency-lock` flags allocations and solver calls at tokens
//!   where a guard is live;
//! * `lock-order` records which lock classes are acquired while which
//!   guards are live, intra-function, and exposes per-line liveness so
//!   the pass can compose holds across call-graph edges.
//!
//! A *binding* is a `let [mut] name = <lock-fn>(…)[.unwrap()…];`
//! statement — the guard is live from the end of that statement. A
//! lock call that is not bound (`lock_shard(s).pop_front()`) is a
//! *temporary*: the guard drops at the end of its own statement and
//! generates no liveness, but it is still an acquisition event for
//! lock-order purposes.
//!
//! Liveness is a forward may-analysis over the function CFG
//! ([`crate::dataflow`]): the binding block generates the fact,
//! `drop(name)` kills it, and leaving the binding's brace scope kills
//! it structurally (each block records its scope depth, so a fact whose
//! binding scope is deeper than the block it flows into is dead on
//! arrival — this is what makes loop back-edges and early returns come
//! out right without special cases).

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::dataflow::{self, BitSet, Direction, GenKill, Meet};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::text_at;

/// Functions returning a guard the liveness analysis tracks.
pub(crate) const LOCK_FNS: &[&str] = &["lock", "lock_shard", "lock_result"];

/// A guard-producing `let` binding.
#[derive(Clone, Debug)]
pub(crate) struct GuardBinding {
    /// The bound variable name (`guard` in `let guard = …`).
    pub name: String,
    /// Lock class the binding acquires (see [`lock_class`]).
    pub class: String,
    /// Line of the lock call.
    pub line: u32,
    /// Scope depth owning the binding; leaving it drops the guard.
    pub scope: u32,
    /// View position of the statement's terminating `;`.
    pub stmt_end: usize,
}

/// Any lock acquisition site (bound or temporary).
#[derive(Clone, Debug)]
pub(crate) struct Acquisition {
    /// Lock class acquired (see [`lock_class`]).
    pub class: String,
    /// Line of the lock call.
    pub line: u32,
    /// View position of the lock-fn identifier.
    pub pos: usize,
}

/// The per-function liveness result.
pub(crate) struct FnLocks {
    /// All guard bindings, in source order (fact index = vec index).
    pub bindings: Vec<GuardBinding>,
    /// All acquisition sites, in source order.
    pub acquisitions: Vec<Acquisition>,
    /// Per block: binding indices live on entry, scope-filtered.
    pub live_in: Vec<Vec<usize>>,
}

/// Runs guard liveness over one function CFG.
pub(crate) fn analyze_fn(file: &SourceFile, code: &[usize], fn_cfg: &Cfg) -> FnLocks {
    // Map view position → owning block.
    let mut block_of: HashMap<usize, usize> = HashMap::new();
    for (b, blk) in fn_cfg.blocks.iter().enumerate() {
        for &k in &blk.tokens {
            block_of.insert(k, b);
        }
    }

    let mut bindings: Vec<GuardBinding> = Vec::new();
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    for (b, blk) in fn_cfg.blocks.iter().enumerate() {
        for &k in &blk.tokens {
            let Some(&i) = code.get(k) else { continue };
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident
                || !LOCK_FNS.contains(&file.text_of(tok))
                || text_at(file, code, k + 1) != "("
            {
                continue;
            }
            let class = lock_class(file, code, k);
            acquisitions.push(Acquisition {
                class: class.clone(),
                line: tok.line,
                pos: k,
            });
            if let Some((name, stmt_end)) = held_guard(file, code, k) {
                // The guard is live from the end of the binding
                // statement; a `?` in the chain may have split the
                // statement across blocks, so anchor on the `;`.
                let bind_block = block_of.get(&stmt_end).copied().unwrap_or(b);
                bindings.push(GuardBinding {
                    name,
                    class,
                    line: tok.line,
                    scope: fn_cfg.blocks[bind_block].scope,
                    stmt_end,
                });
            }
        }
    }

    if bindings.is_empty() {
        return FnLocks {
            bindings,
            acquisitions,
            live_in: vec![Vec::new(); fn_cfg.blocks.len()],
        };
    }

    // Gen/kill per block: gen = facts live at block end starting from
    // nothing; kill = facts dropped by name in the block, plus facts
    // whose binding scope is deeper than the block (structural drop).
    let n = fn_cfg.blocks.len();
    let facts = bindings.len();
    let mut gk = GenKill::new(n, facts);
    for b in 0..n {
        let mut live = vec![false; facts];
        sim_block(file, code, fn_cfg, &bindings, b, &mut live, |_, _| {});
        for (f, &l) in live.iter().enumerate() {
            if l {
                gk.gen[b].insert(f);
            }
        }
        for (f, binding) in bindings.iter().enumerate() {
            let dropped = fn_cfg.blocks[b]
                .tokens
                .iter()
                .any(|&k| is_drop_of(file, code, k, &binding.name));
            if dropped || binding.scope > fn_cfg.blocks[b].scope {
                gk.kill[b].insert(f);
            }
        }
    }
    let sol = dataflow::solve(
        fn_cfg,
        &gk,
        Direction::Forward,
        Meet::Union,
        &BitSet::empty(facts),
    );
    let live_in: Vec<Vec<usize>> = (0..n)
        .map(|b| {
            sol.in_[b]
                .iter()
                .filter(|&f| bindings[f].scope <= fn_cfg.blocks[b].scope)
                .collect()
        })
        .collect();
    FnLocks {
        bindings,
        acquisitions,
        live_in,
    }
}

impl FnLocks {
    /// Walks block `b` from its in-state, calling `on_tok(view_pos,
    /// live_binding_indices)` for every token with the liveness *at*
    /// that token (binding's own fact activates after its statement).
    pub(crate) fn walk_block(
        &self,
        file: &SourceFile,
        code: &[usize],
        fn_cfg: &Cfg,
        b: usize,
        mut on_tok: impl FnMut(usize, &[usize]),
    ) {
        let mut live = vec![false; self.bindings.len()];
        for &f in &self.live_in[b] {
            live[f] = true;
        }
        sim_block(file, code, fn_cfg, &self.bindings, b, &mut live, |k, l| {
            let idxs: Vec<usize> = (0..l.len()).filter(|&f| l[f]).collect();
            on_tok(k, &idxs);
        });
    }

    /// Liveness by line: line → binding indices live at some token on
    /// that line. Used to compose holds across call-graph edges, whose
    /// sites are (path, line) pairs.
    pub(crate) fn live_by_line(
        &self,
        file: &SourceFile,
        code: &[usize],
        fn_cfg: &Cfg,
    ) -> HashMap<u32, Vec<usize>> {
        let mut map: HashMap<u32, Vec<usize>> = HashMap::new();
        for b in 0..fn_cfg.blocks.len() {
            self.walk_block(file, code, fn_cfg, b, |k, live| {
                if live.is_empty() {
                    return;
                }
                let line = file.tokens[code[k]].line;
                let entry = map.entry(line).or_default();
                for &f in live {
                    if !entry.contains(&f) {
                        entry.push(f);
                    }
                }
            });
        }
        map
    }
}

/// One pass over a block's tokens updating `live` in place:
/// `on_tok` observes the liveness in effect *at* each token, then
/// `drop(name)` kills and a binding's `;` gens.
fn sim_block(
    file: &SourceFile,
    code: &[usize],
    fn_cfg: &Cfg,
    bindings: &[GuardBinding],
    b: usize,
    live: &mut [bool],
    mut on_tok: impl FnMut(usize, &[bool]),
) {
    for &k in &fn_cfg.blocks[b].tokens {
        on_tok(k, live);
        if text_at(file, code, k) == "drop" && text_at(file, code, k + 1) == "(" {
            let name = text_at(file, code, k + 2);
            if text_at(file, code, k + 3) == ")" {
                for (f, binding) in bindings.iter().enumerate() {
                    if binding.name == name {
                        live[f] = false;
                    }
                }
            }
        }
        for (f, binding) in bindings.iter().enumerate() {
            if binding.stmt_end == k {
                live[f] = true;
            }
        }
    }
}

/// Is the token at view position `k` the `drop` of `drop(name)`?
fn is_drop_of(file: &SourceFile, code: &[usize], k: usize, name: &str) -> bool {
    text_at(file, code, k) == "drop"
        && text_at(file, code, k + 1) == "("
        && text_at(file, code, k + 2) == name
        && text_at(file, code, k + 3) == ")"
}

/// The lock class of the lock call at view position `k`: the helper's
/// target for the engine's sharded helpers (`lock_shard` → `shard`,
/// `lock_result` → `result`), the receiver identifier for a raw
/// `.lock()` (`self.slots[i].lock()` → `slots`, `spans.lock()` →
/// `spans`), `anon` when no receiver name is recoverable. Classes are
/// crate-qualified by the lock-order pass, so equal names in different
/// crates never alias.
pub(crate) fn lock_class(file: &SourceFile, code: &[usize], k: usize) -> String {
    match text_at(file, code, k) {
        "lock_shard" => "shard".to_string(),
        "lock_result" => "result".to_string(),
        _ => {
            // `recv . lock (` — walk back over `.`-chains, `[idx]` and
            // `(args)` to the nearest plain identifier.
            if k == 0 || text_at(file, code, k - 1) != "." {
                return "anon".to_string();
            }
            let mut j = k - 1; // at the `.`
            loop {
                if j == 0 {
                    return "anon".to_string();
                }
                j -= 1;
                match text_at(file, code, j) {
                    "]" | ")" => {
                        // Skip the bracketed group.
                        let open = if text_at(file, code, j) == "]" {
                            "["
                        } else {
                            "("
                        };
                        let close = text_at(file, code, j);
                        let mut depth = 0i32;
                        loop {
                            let t = text_at(file, code, j);
                            if t == close {
                                depth += 1;
                            } else if t == open {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            if j == 0 {
                                return "anon".to_string();
                            }
                            j -= 1;
                        }
                    }
                    "." => {}
                    _ => break,
                }
            }
            let i = code.get(j).copied();
            let name = i
                .map(|i| &file.tokens[i])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| file.text_of(t))
                .unwrap_or("anon");
            if name == "self" {
                // `self.lock()` — the receiver is the type itself; use
                // the field-less marker so distinct `self` locks in one
                // crate at least share a class.
                "self".to_string()
            } else {
                name.to_string()
            }
        }
    }
}

/// If the lock call at view position `k` binds a guard that outlives
/// its statement, returns the guard name and the view position of the
/// statement's `;`. Temporaries (`lock_shard(s).pop_front()`) return
/// `None`.
pub(crate) fn held_guard(file: &SourceFile, code: &[usize], k: usize) -> Option<(String, usize)> {
    // Forward: match the call's parens, then skip transparent
    // `.unwrap()`/`.expect(…)` chains and a `?`; a held binding ends
    // with `;`.
    let mut j = k + 1; // at `(`
    let mut depth = 0i32;
    loop {
        match text_at(file, code, j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "" => return None,
            _ => {}
        }
        j += 1;
    }
    let mut j = j + 1;
    loop {
        if text_at(file, code, j) == "?" {
            j += 1;
            continue;
        }
        if text_at(file, code, j) == "."
            && matches!(
                text_at(file, code, j + 1),
                "unwrap" | "expect" | "unwrap_or_else"
            )
        {
            // Skip `.name(…)`.
            let mut p = j + 2;
            if text_at(file, code, p) != "(" {
                break;
            }
            let mut d = 0i32;
            loop {
                match text_at(file, code, p) {
                    "(" => d += 1,
                    ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    "" => return None,
                    _ => {}
                }
                p += 1;
            }
            j = p + 1;
            continue;
        }
        break;
    }
    if text_at(file, code, j) != ";" {
        return None;
    }
    let stmt_end = j;
    // Backward: the statement must be a `let` binding; capture the name.
    let mut b = k;
    while b > 0 {
        b -= 1;
        match text_at(file, code, b) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut n = b + 1;
                if text_at(file, code, n) == "mut" {
                    n += 1;
                }
                let name = text_at(file, code, n).to_string();
                return Some((name, stmt_end));
            }
            _ => {}
        }
    }
    None
}
