//! The analysis passes.
//!
//! Every pass has the same shape: walk the loaded [`Workspace`], emit
//! [`Diagnostic`]s. Passes never read files themselves — they work off
//! the lexed and scope-tracked [`crate::source::SourceFile`]s, which is
//! what makes them immune to the strings-and-comments false positives
//! that plagued line-based scanning.

pub mod hot_alloc;
pub mod layering;
pub mod newtype;
pub mod panic_path;
pub mod source_audit;

use crate::config::HotPaths;
use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Runs the ratcheted passes: layering, panic-path, hot-loop
/// allocation, newtype discipline, and annotation validation. The
/// source-audit pass is *not* included — it keeps its own allowlist and
/// exit semantics under `cargo run -p xtask -- audit`.
#[must_use]
pub fn run_all(ws: &Workspace, hot: &HotPaths) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(layering::run(ws));
    diags.extend(panic_path::run(ws, hot));
    diags.extend(hot_alloc::run(ws, hot));
    diags.extend(newtype::run(ws));
    diags.extend(annotations(ws));
    diags.sort();
    diags
}

/// Malformed `analyze::allow` annotations become findings themselves —
/// a suppression that silently fails to parse would otherwise *look*
/// like an active waiver.
fn annotations(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for (line, message) in &file.bad_allows {
            diags.push(Diagnostic {
                pass: "annotation".into(),
                path: file.path.clone(),
                line: *line,
                symbol: String::new(),
                message: message.clone(),
            });
        }
    }
    diags
}

/// The names of the passes `run_all` executes, for `--summary` output.
pub const PASS_NAMES: &[&str] = &[
    "layering",
    "panic-path",
    "hot-alloc",
    "newtype",
    "annotation",
];

/// Is the file exempt test-adjacent code by location (integration
/// tests, benches, examples)?
#[must_use]
pub fn is_test_path(path: &str) -> bool {
    let in_dir =
        |dir: &str| path.starts_with(&format!("{dir}/")) || path.contains(&format!("/{dir}/"));
    in_dir("tests") || in_dir("benches") || in_dir("examples")
}

/// Indices of the file's non-trivia tokens, in order. All sequence
/// matching in the passes runs over this view so comments never split a
/// pattern.
#[must_use]
pub fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_trivia())
        .map(|(i, _)| i)
        .collect()
}

/// Text of the code token at view position `k`, or `""` past the end.
#[must_use]
pub fn text_at<'a>(file: &'a SourceFile, code: &[usize], k: usize) -> &'a str {
    code.get(k).map_or("", |&i| file.tokens[i].text(&file.text))
}
