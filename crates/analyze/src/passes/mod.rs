//! The analysis passes.
//!
//! Every pass has the same shape: walk the loaded [`Workspace`], emit
//! [`Diagnostic`]s. Passes never read files themselves — they work off
//! the lexed and scope-tracked [`crate::source::SourceFile`]s, which is
//! what makes them immune to the strings-and-comments false positives
//! that plagued line-based scanning.
//!
//! The interprocedural passes (`hot-transitive`, `cancel-poll`,
//! `concurrency-*`) additionally consume the workspace
//! [`CallGraph`], built once per run by [`analyze`].

pub mod cancel_poll;
pub mod concurrency;
pub mod determinism;
pub(crate) mod guards;
pub mod hot_alloc;
pub mod hot_transitive;
pub mod layering;
pub mod lock_order;
pub mod newtype;
pub mod panic_path;
pub mod source_audit;
pub mod value_range;

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// The diagnostics plus the call graph they were computed against —
/// the driver reuses the graph for the report and the JSON dump.
pub struct Analysis {
    /// All findings, sorted.
    pub diags: Vec<Diagnostic>,
    /// Non-ratcheted suggestions (value-range hot-loop bounds-check
    /// advisories): reported, never baselined, never a CI failure.
    pub advisories: Vec<Diagnostic>,
    /// The workspace call graph.
    pub graph: CallGraph,
    /// The workspace lock-order graph (for `--lock-graph`/`--lock-dot`).
    pub lock_graph: lock_order::LockGraph,
}

/// Runs every ratcheted pass: layering, panic-path, hot-loop
/// allocation, newtype discipline, annotation validation, transitive
/// hot-path discipline (refined by value-range proofs), determinism
/// taint, cancel-poll coverage and concurrency hygiene.
/// The source-audit pass is *not* included — it keeps its own allowlist
/// and exit semantics under `cargo run -p xtask -- audit`.
#[must_use]
pub fn analyze(ws: &Workspace, cfg: &AnalyzeConfig) -> Analysis {
    let graph = CallGraph::build(ws);
    let mut diags = Vec::new();
    diags.extend(layering::run(ws));
    diags.extend(panic_path::run(ws, &cfg.hot));
    diags.extend(hot_alloc::run(ws, &cfg.hot));
    diags.extend(newtype::run(ws));
    diags.extend(annotations(ws));
    // Value-range proofs first: hot-transitive consults them to drop
    // implicit-panic findings the dataflow discharges.
    let vr = value_range::run(ws, cfg, &graph);
    diags.extend(hot_transitive::run(ws, cfg, &graph, &vr.proofs));
    diags.extend(determinism::run(ws, cfg, &graph));
    diags.extend(cancel_poll::run(ws, cfg));
    diags.extend(concurrency::run(ws, cfg, &graph));
    let (lock_graph, lock_diags) = lock_order::run(ws, &graph);
    diags.extend(lock_diags);
    // Two-way ratchet, second direction: every pass has now had its
    // chance to consult the allow annotations, so any allow whose
    // `used` flag is still clear suppresses nothing — report it.
    diags.extend(unused_allows(ws));
    diags.sort();
    Analysis {
        diags,
        advisories: vr.advisories,
        graph,
        lock_graph,
    }
}

/// [`analyze`] without the graph, for callers that only want findings.
#[must_use]
pub fn run_all(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    analyze(ws, cfg).diags
}

/// Stale `analyze::allow` annotations become findings: an allow that
/// no pass consulted while suppressing a real finding is a claim about
/// a hazard that no longer exists, and keeping it would quietly waive
/// the next genuine finding that lands on its lines. Must run after
/// every other pass (it reads the `used` flags they set).
fn unused_allows(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for a in &file.allows {
            if a.used.get() {
                continue;
            }
            diags.push(Diagnostic {
                pass: "annotation".into(),
                path: file.path.clone(),
                line: a.line,
                symbol: String::new(),
                message: format!(
                    "stale `analyze::allow({})` annotation suppresses nothing — the code it \
                     waived is gone or was never flagged; delete it (reason given: \"{}\")",
                    a.kind, a.reason
                ),
            });
        }
    }
    diags
}

/// Malformed `analyze::allow` annotations become findings themselves —
/// a suppression that silently fails to parse would otherwise *look*
/// like an active waiver.
fn annotations(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        for (line, message) in &file.bad_allows {
            diags.push(Diagnostic {
                pass: "annotation".into(),
                path: file.path.clone(),
                line: *line,
                symbol: String::new(),
                message: message.clone(),
            });
        }
    }
    diags
}

/// The names of the passes `analyze` executes, for `--summary` output
/// and `--explain`.
pub const PASS_NAMES: &[&str] = &[
    "layering",
    "panic-path",
    "hot-alloc",
    "newtype",
    "annotation",
    "hot-transitive",
    "determinism",
    "value-range",
    "cancel-poll",
    "concurrency-ordering",
    "concurrency-lock",
    "lock-order",
];

/// Is the file exempt test-adjacent code by location (integration
/// tests, benches, examples)?
#[must_use]
pub fn is_test_path(path: &str) -> bool {
    let in_dir =
        |dir: &str| path.starts_with(&format!("{dir}/")) || path.contains(&format!("/{dir}/"));
    in_dir("tests") || in_dir("benches") || in_dir("examples")
}

/// Indices of the file's non-trivia tokens, in order. All sequence
/// matching in the passes runs over this view so comments never split a
/// pattern.
#[must_use]
pub fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_trivia())
        .map(|(i, _)| i)
        .collect()
}

/// Text of the code token at view position `k`, or `""` past the end.
#[must_use]
pub fn text_at<'a>(file: &'a SourceFile, code: &[usize], k: usize) -> &'a str {
    code.get(k).map_or("", |&i| file.tokens[i].text(&file.text))
}

/// The panic-shaped construct at view position `k`, if any: the shared
/// matcher behind `panic-path` (seeded fns) and `hot-transitive`
/// (reachable fns). Returns the finding message.
#[must_use]
pub(crate) fn panic_finding(file: &SourceFile, code: &[usize], k: usize) -> Option<String> {
    let i = *code.get(k)?;
    let tok = &file.tokens[i];
    let text = file.text_of(tok);
    match (tok.kind, text) {
        (TokenKind::Ident, "unwrap" | "expect")
            if k > 0 && text_at(file, code, k - 1) == "." && text_at(file, code, k + 1) == "(" =>
        {
            Some(format!(
                "`.{text}(…)` in hot path — use `get`/`match`, or justify with \
                 `// analyze::allow(panic): …`"
            ))
        }
        (TokenKind::Ident, "panic" | "unreachable") if text_at(file, code, k + 1) == "!" => {
            Some(format!(
                "`{text}!` in hot path — return an error or make the state unrepresentable, \
                 or justify with `// analyze::allow(panic): …`"
            ))
        }
        (TokenKind::Punct, "[") if k > 0 && is_index_base(file, code, k - 1) => Some(
            "`[…]` indexing in hot path — use `get`, or justify with \
             `// analyze::allow(panic): …`"
                .to_string(),
        ),
        _ => None,
    }
}

/// The allocation-shaped construct at view position `k`, if any: the
/// shared matcher behind `hot-alloc` and `hot-transitive`. The caller
/// decides the loop-depth requirement.
#[must_use]
pub(crate) fn alloc_finding(file: &SourceFile, code: &[usize], k: usize) -> Option<String> {
    let i = *code.get(k)?;
    let tok = &file.tokens[i];
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let text = file.text_of(tok);
    let next = text_at(file, code, k + 1);
    let prev = if k > 0 {
        text_at(file, code, k - 1)
    } else {
        ""
    };
    match text {
        "Vec" | "Box" | "String"
            if next == ":"
                && text_at(file, code, k + 2) == ":"
                && matches!(text_at(file, code, k + 3), "new" | "with_capacity") =>
        {
            Some(format!(
                "`{text}::{}` allocates inside a hot loop — hoist to a reused scratch buffer",
                text_at(file, code, k + 3)
            ))
        }
        "clone" | "to_vec" | "collect" | "to_owned" if prev == "." && matches!(next, "(" | ":") => {
            Some(format!(
                "`.{text}()` allocates inside a hot loop — reuse a scratch buffer or borrow"
            ))
        }
        "format" | "vec" if next == "!" => Some(format!(
            "`{text}!` allocates inside a hot loop — hoist or pre-size outside the loop"
        )),
        _ => None,
    }
}

/// The *implicit* panic-shaped construct at view position `k`, if any:
/// operations that panic without any panic vocabulary at the site.
/// Complements [`panic_finding`] (which already covers `[…]` slice
/// indexing) for the `hot-transitive` pass:
///
/// * `.split_at(…)` / `.split_at_mut(…)` — panic when the index is past
///   the end;
/// * `.copy_from_slice(…)` / `.clone_from_slice(…)` — panic on length
///   mismatch (the "slice pattern with a length precondition" idiom);
/// * `/` and `%` with a non-literal right operand — divide-by-zero
///   panics on integers; a literal divisor is visibly nonzero, an
///   expression divisor is not.
///
/// The caller decides reachability; sites are silenced with
/// `// analyze::allow(panic): …` like every other panic shape.
#[must_use]
pub(crate) fn implicit_panic_finding(
    file: &SourceFile,
    code: &[usize],
    k: usize,
) -> Option<String> {
    let i = *code.get(k)?;
    let tok = &file.tokens[i];
    let text = file.text_of(tok);
    match (tok.kind, text) {
        (
            TokenKind::Ident,
            "split_at" | "split_at_mut" | "copy_from_slice" | "clone_from_slice",
        ) if k > 0 && text_at(file, code, k - 1) == "." && text_at(file, code, k + 1) == "(" => {
            Some(format!(
                "`.{text}(…)` panics when its length precondition fails — check bounds first \
                 (`get`/`len`), or justify with `// analyze::allow(panic): …`"
            ))
        }
        (TokenKind::Punct, "/" | "%")
            if k > 0
                && (is_index_base(file, code, k - 1)
                    || matches!(
                        file.tokens[code[k - 1]].kind,
                        TokenKind::Int | TokenKind::Float
                    )) =>
        {
            // Only divisions, never `&/&&` patterns: the previous token
            // must be an expression end and the next must not be a
            // literal. `x / 2` is visibly safe; `x / shards.len()` is a
            // potential divide-by-zero.
            let next_is_literal = code
                .get(k + 1)
                .is_some_and(|&j| matches!(file.tokens[j].kind, TokenKind::Int | TokenKind::Float));
            // `/=` `%=` compound assignment has the same hazard; skip
            // the `=` when peeking at the operand.
            let operand_pos = if text_at(file, code, k + 1) == "=" {
                k + 2
            } else {
                k + 1
            };
            let operand_is_literal = code
                .get(operand_pos)
                .is_some_and(|&j| matches!(file.tokens[j].kind, TokenKind::Int | TokenKind::Float));
            if next_is_literal || operand_is_literal {
                None
            } else {
                Some(format!(
                    "`{text}` by a non-literal divisor panics when the divisor is zero — \
                     guard the divisor or use `checked_{}`, or justify with \
                     `// analyze::allow(panic): …`",
                    if text == "/" { "div" } else { "rem" }
                ))
            }
        }
        _ => None,
    }
}

/// Is the code token at view position `k` something a `[` after it
/// would index? (An identifier, a closing paren/bracket — i.e. an
/// expression — rather than the start of an array literal, slice type
/// or attribute.)
pub(crate) fn is_index_base(file: &SourceFile, code: &[usize], k: usize) -> bool {
    let Some(&i) = code.get(k) else { return false };
    let tok = &file.tokens[i];
    match tok.kind {
        TokenKind::Ident => {
            // `let x = [0; 4]` etc. start after keywords, not expressions.
            !matches!(
                file.text_of(tok),
                "mut" | "let" | "in" | "return" | "if" | "else" | "match" | "ref" | "box" | "as"
            )
        }
        TokenKind::Punct => matches!(file.text_of(tok), ")" | "]"),
        _ => false,
    }
}
