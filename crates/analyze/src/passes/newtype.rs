//! Newtype-discipline pass: `Lit` and `Var` cross into raw integers
//! only through the sanctioned helpers in `hqs-base`.
//!
//! The helpers are `Var::uidx()` / `Lit::uidx()` (array indexing),
//! `Var::bound()` (`num_vars` bookkeeping: index + 1) and
//! `Var::to_dimacs()` (external 1-based encoding). Outside
//! `crates/base`, the pass flags the raw escape hatches those helpers
//! replaced:
//!
//! * `as` casts applied to the raw accessors — `.index() as usize`,
//!   `.code() as u32`, …;
//! * integer-literal arithmetic on them — `.index() + 1` and friends —
//!   which encodes an offset convention at the call site instead of
//!   naming it once in `hqs-base`;
//! * raw `as` casts *inside* a `Var::new(…)` call, the construction-side
//!   mirror of the same leak.
//!
//! Test code is exempt (tests legitimately poke at representations);
//! deliberate escapes carry `// analyze::allow(newtype): <reason>`.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Runs the newtype-discipline pass.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if file.path.starts_with("crates/base/") || is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_test || ctx.in_attr {
                continue;
            }
            let tok = &file.tokens[i];
            let text = file.text_of(tok);
            let finding: Option<String> = if tok.kind == TokenKind::Ident
                && matches!(text, "index" | "code")
                && k > 0
                && text_at(file, &code, k - 1) == "."
                && text_at(file, &code, k + 1) == "("
                && text_at(file, &code, k + 2) == ")"
            {
                // `.index()` / `.code()` — inspect what the result feeds.
                let after = text_at(file, &code, k + 3);
                if after == "as" {
                    Some(format!(
                        "`.{text}() as {}` bridges Lit/Var to a raw integer — use the sanctioned \
                         `uidx()`/`bound()`/`to_dimacs()` helpers in hqs-base",
                        text_at(file, &code, k + 4)
                    ))
                } else if matches!(after, "+" | "-" | "^" | "*" | "%" | "|")
                    && file
                        .tokens
                        .get(code.get(k + 4).copied().unwrap_or(usize::MAX))
                        .is_some_and(|t| t.kind == TokenKind::Int)
                {
                    Some(format!(
                        "integer-literal arithmetic on `.{text}()` encodes an offset convention at \
                         the call site — name it as a helper in hqs-base (like `Var::bound()`)"
                    ))
                } else {
                    None
                }
            } else if tok.kind == TokenKind::Ident
                && matches!(text, "Var" | "Lit")
                && text_at(file, &code, k + 1) == ":"
                && text_at(file, &code, k + 2) == ":"
                && text_at(file, &code, k + 3) == "new"
                && text_at(file, &code, k + 4) == "("
                && call_contains_as(file, &code, k + 4)
            {
                Some(format!(
                    "raw `as` cast inside `{text}::new(…)` — construct through a sanctioned \
                     helper in hqs-base instead of casting at the call site"
                ))
            } else {
                None
            };
            if let Some(message) = finding {
                if file.allowed("newtype", tok.line).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    pass: "newtype".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message,
                });
            }
        }
    }
    diags
}

/// Does the parenthesized call whose `(` sits at view position `open`
/// contain an `as` token at its own nesting level (or deeper)?
fn call_contains_as(file: &SourceFile, code: &[usize], open: usize) -> bool {
    let mut depth = 0usize;
    for k in open..code.len() {
        match text_at(file, code, k) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "as" => return true,
            _ => {}
        }
    }
    false
}
