//! Value-range refinement: interval and bounds-predicate dataflow
//! prove implicit-panic sites safe, downgrading hot-transitive
//! findings, plus a hot-loop advisory for provably monotone indices.
//!
//! Two [`crate::dataflow::Domain`] instances run over every production
//! function's CFG:
//!
//! * the **interval domain** ([`crate::interval`]) proves divisors
//!   nonzero: `x / n` stops being a potential divide-by-zero when `n`'s
//!   interval excludes zero at the site — established by a guarding
//!   `if n != 0` / `if n > 0`, an `assert!`, or a literal binding;
//! * a **bounds-predicate domain** (this module) proves
//!   `split_at`/index arguments in bounds: facts are predicates
//!   `k <= v.len()` / `k < v.len()` harvested from the function's
//!   guards and asserts, gen'd on the `True` edge of their branch (or
//!   at the assert), killed by any write to `k`, any write to `v`, and
//!   any `v.<method>` not on a read-only allowlist — a must-analysis
//!   (intersection meet) over the generic engine.
//!
//! The proofs do not silence anything by themselves: the
//! `hot-transitive` pass consults [`Proofs::is_proven`] before
//! reporting, so a proven site simply stops being a finding — and an
//! `analyze::allow(panic)` annotation that only covered a proven site
//! becomes *stale* and is reported by the two-way ratchet, keeping the
//! annotation inventory honest.
//!
//! Separately, for functions in the hot-path closure the pass emits
//! **advisories** — non-ratcheted suggestions, reported outside the
//! baseline: a loop that indexes `v[i]` with an `i` that is only ever
//! incremented by a literal is a bounds-checked traversal that an
//! iterator (`v.iter().enumerate()`, `chunks`, `windows`) would do
//! without the checks.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::cfg::{self, Cfg, EdgeKind};
use crate::config::AnalyzeConfig;
use crate::dataflow::{solve_domain, BitSet, Direction, Domain};
use crate::diag::Diagnostic;
use crate::interval::{env_before, Env, IntervalDomain};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path};

/// Sites discharged by a value-range proof, keyed by `(path, view
/// position)` — the same view position the shared panic matchers
/// anchor their findings on.
#[derive(Debug, Default)]
pub struct Proofs {
    proven: HashSet<(String, usize)>,
}

impl Proofs {
    /// Is the construct at view position `k` of `path` proven safe?
    #[must_use]
    pub fn is_proven(&self, path: &str, k: usize) -> bool {
        self.proven.contains(&(path.to_string(), k))
    }

    /// Number of proven sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.proven.len()
    }

    /// True when no site was proven.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.proven.is_empty()
    }
}

/// The pass output: proofs for the hot-transitive downgrade, plus the
/// non-ratcheted advisories.
#[derive(Debug, Default)]
pub struct ValueRange {
    /// Implicit-panic sites proven safe.
    pub proofs: Proofs,
    /// Hot-loop bounds-check advisories (reported outside the
    /// baseline; never a CI failure).
    pub advisories: Vec<Diagnostic>,
}

/// One bounds predicate `lhs (<|<=) base.len()`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Pred {
    lhs: String,
    base: String,
    strict: bool,
}

/// Methods that never change a container's length: calling them does
/// not kill `… <= v.len()` predicates. Everything else does.
const LEN_PRESERVING: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "first",
    "last",
    "iter",
    "iter_mut",
    "split_at",
    "split_at_mut",
    "contains",
    "as_slice",
    "as_mut_slice",
    "binary_search",
    "chunks",
    "windows",
    "starts_with",
    "ends_with",
];

/// Runs the value-range pass over the workspace: computes proofs for
/// every production file and advisories for hot-closure functions.
#[must_use]
pub fn run(ws: &Workspace, conf: &AnalyzeConfig, graph: &CallGraph) -> ValueRange {
    // Hot-closure membership, per (path, symbol) — advisories only
    // apply where the bounds checks actually cost something.
    let mut hot_seeds: Vec<usize> = Vec::new();
    for f in &conf.hot.functions {
        hot_seeds.extend(graph.seed_ids(&f.crate_name, &f.symbol));
    }
    let reach = graph.closure(&hot_seeds);
    let mut hot_fns: HashMap<&str, HashSet<&str>> = HashMap::new();
    for &id in reach.keys() {
        let def = &graph.table.defs[id];
        hot_fns
            .entry(def.path.as_str())
            .or_default()
            .insert(def.symbol.as_str());
    }

    let mut out = ValueRange::default();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        let hot_in_file = hot_fns.get(file.path.as_str());
        for fn_cfg in cfg::build_all(file, &code) {
            prove_function(file, &code, &fn_cfg, &mut out.proofs);
            if hot_in_file.is_some_and(|s| s.contains(fn_cfg.symbol.as_str())) {
                monotone_index_advisories(file, &code, &fn_cfg, &mut out.advisories);
            }
        }
    }
    out.advisories.sort();
    out
}

/// Proves sites within one function: interval facts for divisors,
/// bounds predicates for `split_at` and `[…]` indexing.
fn prove_function(file: &SourceFile, code: &[usize], fn_cfg: &Cfg, proofs: &mut Proofs) {
    let idom = IntervalDomain::new(file, code);
    let isol = solve_domain(fn_cfg, &idom);

    let preds = collect_preds(file, code, fn_cfg);
    let pdom = PredDomain {
        file,
        code,
        preds: &preds,
    };
    let psol = solve_domain(fn_cfg, &pdom);

    let txt = |vp: usize| file.tokens[code[vp]].text(&file.text);
    for (b, block) in fn_cfg.blocks.iter().enumerate() {
        // CFG-unreachable blocks (e.g. the parked tokens of a
        // `return <expr>`) have vacuous facts in both domains — never
        // treat vacuity as a proof.
        if matches!(isol.in_[b], Env::Unreachable) && b != cfg::ENTRY {
            continue;
        }
        let ts = &block.tokens;
        for j in 0..ts.len() {
            let vp = ts[j];
            let tok = &file.tokens[code[vp]];
            let text = tok.text(&file.text);
            match (tok.kind, text) {
                // `x / d` / `x % d` (and `/=`, `%=`) with a plain-ident
                // divisor whose interval excludes zero.
                (TokenKind::Punct, "/" | "%") => {
                    let d_at = if j + 1 < ts.len() && txt(ts[j + 1]) == "=" {
                        j + 2
                    } else {
                        j + 1
                    };
                    if d_at >= ts.len() || file.tokens[code[ts[d_at]]].kind != TokenKind::Ident {
                        continue;
                    }
                    // A method/path/macro after the ident means the
                    // divisor is a larger expression — not tracked.
                    if d_at + 1 < ts.len()
                        && matches!(txt(ts[d_at + 1]), "." | "(" | ":" | "!" | "[")
                    {
                        continue;
                    }
                    let divisor = txt(ts[d_at]);
                    // `Unreachable` is NOT accepted as a proof: the CFG
                    // builder parks `return <expr>` tokens in a dead
                    // block, so unreachability here is an artifact.
                    let env = env_before(&idom, fn_cfg, b, j, &isol.in_[b]);
                    if matches!(env, Env::Known(_)) && env.get(divisor).excludes_zero() {
                        proofs.proven.insert((file.path.clone(), vp));
                    }
                }
                // `v.split_at(k)` / `v.split_at_mut(k)` with a proven
                // `k <= v.len()` predicate.
                (TokenKind::Ident, "split_at" | "split_at_mut")
                    if j >= 2
                        && txt(ts[j - 1]) == "."
                        && j + 3 < ts.len()
                        && txt(ts[j + 1]) == "("
                        && txt(ts[j + 3]) == ")" =>
                {
                    let base = txt(ts[j - 2]);
                    let arg = txt(ts[j + 2]);
                    if file.tokens[code[ts[j - 2]]].kind != TokenKind::Ident
                        || (j >= 3 && txt(ts[j - 3]) == ".")
                        || file.tokens[code[ts[j + 2]]].kind != TokenKind::Ident
                    {
                        continue;
                    }
                    let facts = pred_facts_at(&pdom, fn_cfg, b, j, &psol.in_[b]);
                    // `k < len` implies `k <= len`.
                    let holds = preds
                        .iter()
                        .enumerate()
                        .any(|(i, p)| facts.contains(i) && p.lhs == arg && p.base == base);
                    if holds {
                        proofs.proven.insert((file.path.clone(), vp));
                    }
                }
                // `v[k]` indexing with a proven strict `k < v.len()`.
                (TokenKind::Punct, "[")
                    if j >= 1
                        && j + 2 < ts.len()
                        && file.tokens[code[ts[j - 1]]].kind == TokenKind::Ident
                        && (j < 2 || txt(ts[j - 2]) != ".")
                        && file.tokens[code[ts[j + 1]]].kind == TokenKind::Ident
                        && txt(ts[j + 2]) == "]" =>
                {
                    let base = txt(ts[j - 1]);
                    let arg = txt(ts[j + 1]);
                    let facts = pred_facts_at(&pdom, fn_cfg, b, j, &psol.in_[b]);
                    let holds = preds.iter().enumerate().any(|(i, p)| {
                        facts.contains(i) && p.strict && p.lhs == arg && p.base == base
                    });
                    if holds {
                        proofs.proven.insert((file.path.clone(), vp));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Harvests the function's bounds predicates: every
/// `i < v.len()` / `i <= v.len()` comparison (either operand order)
/// appearing anywhere in the body. The dataflow decides where each
/// one actually holds.
fn collect_preds(file: &SourceFile, code: &[usize], fn_cfg: &Cfg) -> Vec<Pred> {
    let mut preds = Vec::new();
    let mut seen = HashSet::new();
    for block in &fn_cfg.blocks {
        let ts = &block.tokens;
        for j in 0..ts.len() {
            if let Some(p) = parse_pred(file, code, ts, j) {
                // A strict predicate also establishes the non-strict
                // one; record both so queries stay simple.
                let weak = Pred {
                    strict: false,
                    ..p.clone()
                };
                for q in [p, weak] {
                    if seen.insert(q.clone()) {
                        preds.push(q);
                    }
                }
            }
        }
    }
    preds
}

/// Parses `i < v.len()` / `i <= v.len()` / `v.len() > i` /
/// `v.len() >= i` starting at block-token index `j`.
fn parse_pred(file: &SourceFile, code: &[usize], ts: &[usize], j: usize) -> Option<Pred> {
    let txt = |i: usize| -> &str {
        ts.get(i)
            .map_or("", |&vp| file.tokens[code[vp]].text(&file.text))
    };
    let is_ident = |i: usize| {
        ts.get(i)
            .is_some_and(|&vp| file.tokens[code[vp]].kind == TokenKind::Ident)
    };
    let len_call = |i: usize| -> Option<&str> {
        (is_ident(i)
            && txt(i + 1) == "."
            && txt(i + 2) == "len"
            && txt(i + 3) == "("
            && txt(i + 4) == ")")
            .then(|| txt(i))
    };
    // ident-first: `i <op> v.len()`.
    if is_ident(j) && (j == 0 || !matches!(txt(j.wrapping_sub(1)), "." | ":")) {
        let (strict, oplen) = match (txt(j + 1), txt(j + 2)) {
            ("<", "=") => (false, 2),
            ("<", _) => (true, 1),
            _ => (false, 0),
        };
        if oplen > 0 {
            if let Some(base) = len_call(j + 1 + oplen) {
                return Some(Pred {
                    lhs: txt(j).to_string(),
                    base: base.to_string(),
                    strict,
                });
            }
        }
    }
    // len-first: `v.len() <op> i`.
    if let Some(base) = len_call(j) {
        let (strict, oplen) = match (txt(j + 5), txt(j + 6)) {
            (">", "=") => (false, 2),
            (">", _) => (true, 1),
            _ => (false, 0),
        };
        if oplen > 0 && is_ident(j + 5 + oplen) {
            return Some(Pred {
                lhs: txt(j + 5 + oplen).to_string(),
                base: base.to_string(),
                strict,
            });
        }
    }
    None
}

/// The bounds-predicate must-analysis: facts are indices into the
/// harvested predicate list.
struct PredDomain<'a> {
    file: &'a SourceFile,
    code: &'a [usize],
    preds: &'a [Pred],
}

impl PredDomain<'_> {
    fn txt(&self, ts: &[usize], i: usize) -> &str {
        ts.get(i).map_or("", |&vp| {
            self.file.tokens[self.code[vp]].text(&self.file.text)
        })
    }

    fn is_ident(&self, ts: &[usize], i: usize) -> bool {
        ts.get(i)
            .is_some_and(|&vp| self.file.tokens[self.code[vp]].kind == TokenKind::Ident)
    }

    /// Applies the kill/gen effect of the token at `j` to `facts`.
    fn step(&self, facts: &mut BitSet, ts: &[usize], j: usize) {
        let text = self.txt(ts, j);
        // Kills: a write to the index or the container, or any
        // possibly-length-changing method on the container.
        if self.is_ident(ts, j) && (j == 0 || !matches!(self.txt(ts, j - 1), "." | ":")) {
            let nxt = self.txt(ts, j + 1);
            let writes = (nxt == "="
                && self.txt(ts, j + 2) != "="
                && !matches!(
                    if j > 0 { self.txt(ts, j - 1) } else { "" },
                    "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                ))
                || (matches!(nxt, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                    && self.txt(ts, j + 2) == "=")
                || (matches!(nxt, "<" | ">")
                    && self.txt(ts, j + 2) == nxt
                    && self.txt(ts, j + 3) == "=");
            let mutated_by_method = nxt == "."
                && self.is_ident(ts, j + 2)
                && self.txt(ts, j + 3) == "("
                && !LEN_PRESERVING.contains(&self.txt(ts, j + 2));
            if writes || mutated_by_method {
                for (i, p) in self.preds.iter().enumerate() {
                    if p.lhs == text || p.base == text {
                        facts.remove(i);
                    }
                }
            }
        }
        if text == "&" && self.txt(ts, j + 1) == "mut" && self.is_ident(ts, j + 2) {
            let target = self.txt(ts, j + 2);
            for (i, p) in self.preds.iter().enumerate() {
                if p.lhs == target || p.base == target {
                    facts.remove(i);
                }
            }
        }
        // Gens: asserts establish their predicate mid-block.
        if matches!(text, "assert" | "debug_assert")
            && self.txt(ts, j + 1) == "!"
            && self.txt(ts, j + 2) == "("
        {
            if let Some(p) = parse_pred(self.file, self.code, ts, j + 3) {
                self.gen_pred(facts, &p);
            }
        }
    }

    /// Sets the fact for `p` and, when `p` is strict, its implied
    /// non-strict companion.
    fn gen_pred(&self, facts: &mut BitSet, p: &Pred) {
        for (i, q) in self.preds.iter().enumerate() {
            let implied = q.lhs == p.lhs && q.base == p.base && (q == p || (p.strict && !q.strict));
            if implied {
                facts.insert(i);
            }
        }
    }

    /// The predicates established by `from`'s branch condition (for
    /// the `True` edge): the last `if`/`while` comparison chain, with
    /// `||` disabling refinement as in the interval domain.
    fn branch_preds(&self, cfg: &Cfg, from: usize) -> Vec<Pred> {
        let ts = &cfg.blocks[from].tokens;
        // A `while` head block holds only the condition (the keyword
        // sits in the predecessor); parse from the top in that case.
        let start = (0..ts.len())
            .rev()
            .find(|&i| matches!(self.txt(ts, i), "if" | "while"))
            .map_or(0, |kw| kw + 1);
        if self.txt(ts, start) == "let" {
            return Vec::new();
        }
        if (start.saturating_sub(1)..ts.len()).any(|i| self.txt(ts, i) == "|") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in start..ts.len() {
            if let Some(p) = parse_pred(self.file, self.code, ts, i) {
                out.push(p);
            }
        }
        out
    }
}

impl Domain for PredDomain<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg) -> BitSet {
        // Must-analysis ⊤: every predicate vacuously holds on the
        // (empty) set of paths into an unvisited block.
        BitSet::full(self.preds.len())
    }

    fn boundary(&self, _cfg: &Cfg) -> BitSet {
        BitSet::empty(self.preds.len())
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) {
        acc.intersect_with(other);
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut facts = fact.clone();
        let ts = &cfg.blocks[block].tokens;
        for j in 0..ts.len() {
            self.step(&mut facts, ts, j);
        }
        facts
    }

    fn refine_edge(&self, cfg: &Cfg, from: usize, kind: EdgeKind, fact: &BitSet) -> BitSet {
        let mut facts = fact.clone();
        if kind == EdgeKind::True {
            for p in self.branch_preds(cfg, from) {
                self.gen_pred(&mut facts, &p);
            }
        }
        facts
    }
}

/// Replays the block prefix to get the predicate facts live just
/// before block-token index `upto`.
fn pred_facts_at(
    dom: &PredDomain<'_>,
    cfg: &Cfg,
    block: usize,
    upto: usize,
    entry: &BitSet,
) -> BitSet {
    let mut facts = entry.clone();
    let ts = &cfg.blocks[block].tokens;
    for j in 0..upto.min(ts.len()) {
        dom.step(&mut facts, ts, j);
    }
    facts
}

/// Emits one advisory per hot loop that indexes `v[i]` with an `i`
/// only ever advanced by a literal increment inside the loop body — a
/// provably monotone bounds-checked traversal an iterator would do
/// check-free.
fn monotone_index_advisories(
    file: &SourceFile,
    code: &[usize],
    fn_cfg: &Cfg,
    advisories: &mut Vec<Diagnostic>,
) {
    let txt = |vp: usize| file.tokens[code[vp]].text(&file.text);
    for l in &fn_cfg.loops {
        let body = fn_cfg.loop_body(l);
        // (index, base) pairs indexed in the body, and the set of
        // indices written in any non-increment way.
        let mut indexed: Vec<(String, String, u32)> = Vec::new();
        let mut incremented: HashSet<String> = HashSet::new();
        let mut otherwise_written: HashSet<String> = HashSet::new();
        for &b in &body {
            let ts = &fn_cfg.blocks[b].tokens;
            for j in 0..ts.len() {
                let text = txt(ts[j]);
                let is_ident = file.tokens[code[ts[j]]].kind == TokenKind::Ident;
                if is_ident && (j == 0 || !matches!(txt(ts[j - 1]), "." | ":")) {
                    // `i += <lit>;` is the monotone advance.
                    if j + 3 < ts.len()
                        && txt(ts[j + 1]) == "+"
                        && txt(ts[j + 2]) == "="
                        && file.tokens[code[ts[j + 3]]].kind == TokenKind::Int
                    {
                        incremented.insert(text.to_string());
                        continue;
                    }
                    // Any other write makes it non-monotone.
                    let nxt = if j + 1 < ts.len() { txt(ts[j + 1]) } else { "" };
                    let writes = (nxt == "="
                        && (j + 2 >= ts.len() || txt(ts[j + 2]) != "=")
                        && !matches!(
                            if j > 0 { txt(ts[j - 1]) } else { "" },
                            "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                        ))
                        || (matches!(nxt, "-" | "*" | "/" | "%" | "&" | "|" | "^")
                            && j + 2 < ts.len()
                            && txt(ts[j + 2]) == "=");
                    if writes {
                        otherwise_written.insert(text.to_string());
                    }
                }
                // `v[i]` in the body.
                if text == "["
                    && j >= 1
                    && j + 2 < ts.len()
                    && file.tokens[code[ts[j - 1]]].kind == TokenKind::Ident
                    && (j < 2 || txt(ts[j - 2]) != ".")
                    && file.tokens[code[ts[j + 1]]].kind == TokenKind::Ident
                    && txt(ts[j + 2]) == "]"
                {
                    indexed.push((
                        txt(ts[j + 1]).to_string(),
                        txt(ts[j - 1]).to_string(),
                        file.tokens[code[ts[j]]].line,
                    ));
                }
            }
        }
        let mut reported: HashSet<(String, String)> = HashSet::new();
        for (idx, base, line) in indexed {
            if !incremented.contains(&idx) || otherwise_written.contains(&idx) {
                continue;
            }
            if !reported.insert((idx.clone(), base.clone())) {
                continue;
            }
            advisories.push(Diagnostic {
                pass: "value-range".into(),
                path: file.path.clone(),
                line,
                symbol: fn_cfg.symbol.clone(),
                message: format!(
                    "hot loop at line {} indexes `{base}[{idx}]` with a provably monotone \
                     index — an iterator (`{base}.iter().enumerate()`, `chunks`, `windows`) \
                     traverses without per-access bounds checks",
                    l.line
                ),
            });
        }
    }
}
