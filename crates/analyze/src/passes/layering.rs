//! Layering pass: the crate DAG is architecture, not an accident.
//!
//! The sanctioned graph follows the paper's pipeline
//! `base → cnf → {sat, proof} → {maxsat, aig} → qbf → core` with the
//! application crates (`idq`, `pec`, `engine`, `serve`, `bench`, the
//! `hqs` facade and `xtask`) on top. Three things are enforced:
//!
//! 1. every member's `[dependencies]` stay inside its allowed set (and
//!    every member is registered here — adding a crate is an
//!    architectural decision, so the table is the place to record it);
//! 2. the declared graph is acyclic (belt-and-braces — Cargo would also
//!    reject a cycle, but only after a confusing resolver error);
//! 3. source files only name `hqs_*` crates they actually declare —
//!    dev-dependencies only from test code — and never path through
//!    another crate's private modules (`hqs_sat::solver::…`), which
//!    defends the layer boundaries against a module being made `pub`
//!    for convenience.

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Allowed `[dependencies]` per member crate. Dev-dependencies are not
/// constrained by the DAG (tests may look upward, e.g. `hqs-sat` tests
/// checking its DRAT output with `hqs-proof`).
const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("hqs-base", &[]),
    // Observability sits beside `base`: anything above may emit into it,
    // and it may depend on nothing but `base` (std-only by design).
    ("hqs-obs", &["hqs-base"]),
    ("hqs-cnf", &["hqs-base"]),
    ("hqs-sat", &["hqs-base", "hqs-obs", "hqs-cnf"]),
    ("hqs-proof", &["hqs-base", "hqs-cnf"]),
    ("hqs-maxsat", &["hqs-base", "hqs-obs", "hqs-cnf", "hqs-sat"]),
    ("hqs-aig", &["hqs-base", "hqs-obs", "hqs-cnf", "hqs-sat"]),
    (
        "hqs-qbf",
        &["hqs-base", "hqs-obs", "hqs-cnf", "hqs-sat", "hqs-aig"],
    ),
    (
        "hqs-core",
        &[
            "hqs-base",
            "hqs-obs",
            "hqs-cnf",
            "hqs-sat",
            "hqs-proof",
            "hqs-maxsat",
            "hqs-aig",
            "hqs-qbf",
        ],
    ),
    ("hqs-idq", &["hqs-base", "hqs-cnf", "hqs-sat", "hqs-core"]),
    ("hqs-pec", &["hqs-base", "hqs-cnf", "hqs-core"]),
    (
        "hqs-engine",
        &["hqs-base", "hqs-obs", "hqs-cnf", "hqs-core"],
    ),
    (
        "hqs-serve",
        &["hqs-base", "hqs-obs", "hqs-cnf", "hqs-core", "hqs-engine"],
    ),
    (
        "hqs-bench",
        &[
            "hqs-base",
            "hqs-obs",
            "hqs-cnf",
            "hqs-sat",
            "hqs-proof",
            "hqs-maxsat",
            "hqs-aig",
            "hqs-qbf",
            "hqs-core",
            "hqs-idq",
            "hqs-pec",
            "hqs-engine",
            "hqs-serve",
        ],
    ),
    (
        "hqs",
        &[
            "hqs-base",
            "hqs-obs",
            "hqs-cnf",
            "hqs-sat",
            "hqs-proof",
            "hqs-maxsat",
            "hqs-aig",
            "hqs-qbf",
            "hqs-core",
            "hqs-idq",
            "hqs-pec",
            "hqs-engine",
            "hqs-serve",
        ],
    ),
    ("xtask", &["hqs-base", "hqs-core", "hqs-pec", "hqs-analyze"]),
    ("hqs-analyze", &[]),
];

/// Private (non-`pub`) top-level modules per crate. Reaching for
/// `hqs_x::private_mod::…` from another crate is a layer-skip even if
/// someone later makes the module `pub`.
const INTERNAL_MODULES: &[(&str, &[&str])] = &[
    (
        "hqs-aig",
        &[
            "check", "cnf_conv", "dot", "edge", "fraig", "manager", "simulate", "unitpure",
        ],
    ),
    (
        "hqs-base",
        &["assignment", "budget", "cache", "lit", "varset"],
    ),
    ("hqs-cnf", &["clause", "cnf"]),
    ("hqs-core", &["check", "dqbf", "warm"]),
    (
        "hqs-engine",
        &["corpus", "deck", "jsonl", "portfolio", "scheduler"],
    ),
    ("hqs-maxsat", &["fumalik", "totalizer"]),
    ("hqs-obs", &["export", "metric", "observer", "registry"]),
    ("hqs-proof", &["checker", "drat"]),
    ("hqs-qbf", &["prefix", "solver"]),
    ("hqs-sat", &["check", "heap", "luby", "proof", "solver"]),
    ("hqs-serve", &["io", "server"]),
];

fn allowed_deps(name: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, deps)| *deps)
}

fn internal_modules(name: &str) -> &'static [&'static str] {
    INTERNAL_MODULES
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(&[], |(_, mods)| *mods)
}

/// Runs the layering pass.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    manifest_rules(ws, &mut diags);
    cycle_rule(ws, &mut diags);
    source_rules(ws, &mut diags);
    diags
}

fn manifest_path(ws: &Workspace, crate_name: &str) -> String {
    ws.crate_named(crate_name).map_or_else(
        || "Cargo.toml".to_string(),
        |c| {
            if c.dir.is_empty() {
                "Cargo.toml".to_string()
            } else {
                format!("{}/Cargo.toml", c.dir)
            }
        },
    )
}

fn manifest_rules(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for c in &ws.crates {
        let Some(allowed) = allowed_deps(&c.name) else {
            diags.push(Diagnostic {
                pass: "layering".into(),
                path: manifest_path(ws, &c.name),
                line: 1,
                symbol: c.name.clone(),
                message: format!(
                    "crate `{}` is not registered in the layering table — adding a crate is an \
                     architectural decision; register its allowed dependencies in \
                     crates/analyze/src/passes/layering.rs",
                    c.name
                ),
            });
            continue;
        };
        for dep in &c.manifest.deps {
            if !dep.starts_with("hqs") {
                continue;
            }
            if !allowed.contains(&dep.as_str()) {
                diags.push(Diagnostic {
                    pass: "layering".into(),
                    path: manifest_path(ws, &c.name),
                    line: 1,
                    symbol: c.name.clone(),
                    message: format!(
                        "`{}` may not depend on `{dep}`: the layer DAG is \
                         base → cnf → {{sat, proof}} → {{maxsat, aig}} → qbf → core → apps",
                        c.name
                    ),
                });
            }
        }
    }
}

/// Depth-first search for cycles over the *declared* dependency edges
/// between workspace members.
fn cycle_rule(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // 0 = unvisited, 1 = on the current path, 2 = done.
    let mut state: Vec<u8> = vec![0; ws.crates.len()];
    let index_of = |name: &str| ws.crates.iter().position(|c| c.name == name);

    fn dfs(
        ws: &Workspace,
        i: usize,
        state: &mut Vec<u8>,
        path: &mut Vec<String>,
        index_of: &dyn Fn(&str) -> Option<usize>,
        diags: &mut Vec<Diagnostic>,
    ) {
        state[i] = 1;
        path.push(ws.crates[i].name.clone());
        let deps = ws.crates[i].manifest.deps.clone();
        for dep in deps {
            let Some(j) = index_of(&dep) else { continue };
            match state[j] {
                0 => dfs(ws, j, state, path, index_of, diags),
                1 => {
                    let start = path.iter().position(|n| *n == dep).unwrap_or(0);
                    let cycle = path[start..].join(" → ");
                    diags.push(Diagnostic {
                        pass: "layering".into(),
                        path: manifest_path(ws, &ws.crates[i].name),
                        line: 1,
                        symbol: ws.crates[i].name.clone(),
                        message: format!("dependency cycle: {cycle} → {dep}"),
                    });
                }
                _ => {}
            }
        }
        path.pop();
        state[i] = 2;
    }

    for i in 0..ws.crates.len() {
        if state[i] == 0 {
            dfs(ws, i, &mut state, &mut Vec::new(), &index_of, &mut *diags);
        }
    }
}

fn source_rules(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        let Some(owner) = ws.crate_named(&file.crate_name) else {
            continue;
        };
        let file_is_test = is_test_path(&file.path);
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let tok = &file.tokens[i];
            let text = file.text_of(tok);
            if !text.starts_with("hqs_") && text != "hqs" {
                continue;
            }
            // Only a `crate::…` path is a crate reference — `hqs` and
            // `hqs_seconds` are perfectly good variable names.
            if text_at(file, &code, k + 1) != ":" || text_at(file, &code, k + 2) != ":" {
                continue;
            }
            let dep_name = text.replace('_', "-");
            if dep_name == file.crate_name {
                continue;
            }
            let ctx = &file.ctx[i];
            let in_test = file_is_test || ctx.in_test;
            let declared = owner.manifest.deps.contains(&dep_name);
            let declared_dev = owner.manifest.dev_deps.contains(&dep_name);
            if !(declared || declared_dev && in_test) {
                // Only report when this actually names a crate we know,
                // to avoid flagging unrelated `hqs_…` identifiers.
                if ws.crate_named(&dep_name).is_some() {
                    let detail = if declared_dev {
                        "is a dev-dependency and may only be used from test code"
                    } else {
                        "is not a declared dependency"
                    };
                    diags.push(Diagnostic {
                        pass: "layering".into(),
                        path: file.path.clone(),
                        line: tok.line,
                        symbol: ctx.in_fn.clone(),
                        message: format!(
                            "`{}` references `{dep_name}`, which {detail} of `{}`",
                            text, file.crate_name
                        ),
                    });
                }
                continue;
            }
            // Internal-module reach-through: `hqs_x :: private_mod`.
            if text_at(file, &code, k + 1) == ":" && text_at(file, &code, k + 2) == ":" {
                let module = text_at(file, &code, k + 3);
                if internal_modules(&dep_name).contains(&module) {
                    diags.push(Diagnostic {
                        pass: "layering".into(),
                        path: file.path.clone(),
                        line: tok.line,
                        symbol: ctx.in_fn.clone(),
                        message: format!(
                            "`{text}::{module}` reaches into an internal module of `{dep_name}` — \
                             go through its public API"
                        ),
                    });
                }
            }
        }
    }
}
