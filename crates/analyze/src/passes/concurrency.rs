//! Concurrency hygiene: two checks over the parallel engine's idioms.
//!
//! **Ordering audit** (`concurrency-ordering`): every atomic
//! `Ordering::` use site in production code must appear in the
//! committed allowlist (`[concurrency] ordering` in
//! `analyze-hot-paths.toml`), where each entry carries a justification
//! comment. The check is two-way — an unlisted site fails, and a stale
//! entry fails — so the allowlist is always exactly the set of sites.
//! `std::cmp::Ordering` never matches: its variants (`Less`, `Equal`,
//! `Greater`) are not atomic orderings.
//!
//! **Lock-hold hygiene** (`concurrency-lock`): inside hot-path
//! functions (seeds plus the transitive closure), no allocation and no
//! solver call may execute while a `MutexGuard` is **live** — where
//! liveness is the real guard-liveness dataflow from
//! `super::guards` over the function CFG, not a syntactic region
//! scan. A guard bound before a loop is live across the back edge; a
//! guard bound inside an `if` arm dies at the join; `drop(guard)`
//! kills it on that path only, so an allocation reachable on the
//! un-dropped path is still flagged. Guard temporaries
//! (`lock_shard(s).pop_front()`) are fine — the guard drops at the end
//! of the statement. Justified holds carry
//! `// analyze::allow(lock): <reason>`.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::cfg;
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

use super::{alloc_finding, code_indices, guards, is_test_path, text_at};

/// Atomic ordering variants (the `std::cmp::Ordering` variants are
/// deliberately absent).
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Calls that must never run under a held shard guard.
const SOLVER_CALLS: &[&str] = &[
    "solve",
    "solve_certified",
    "solve_budgeted",
    "main_loop",
    "solve_inner",
];

/// Runs both concurrency checks.
#[must_use]
pub fn run(ws: &Workspace, config: &AnalyzeConfig, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = ordering_audit(ws, config);
    diags.extend(lock_hold(ws, config, graph));
    diags
}

fn ordering_audit(ws: &Workspace, config: &AnalyzeConfig) -> Vec<Diagnostic> {
    // Multiset of allowlisted sites.
    let mut allowed: HashMap<(String, String, String), usize> = HashMap::new();
    for site in &config.ordering_allow {
        *allowed
            .entry((site.path.clone(), site.symbol.clone(), site.variant.clone()))
            .or_default() += 1;
    }
    let mut diags = Vec::new();
    // Scan every production file for `Ordering::Variant` sites.
    let mut seen: HashMap<(String, String, String), Vec<u32>> = HashMap::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let tok = &file.tokens[i];
            let ctx = &file.ctx[i];
            if tok.kind != TokenKind::Ident
                || file.text_of(tok) != "Ordering"
                || ctx.in_test
                || ctx.in_attr
            {
                continue;
            }
            if text_at(file, &code, k + 1) != ":" || text_at(file, &code, k + 2) != ":" {
                continue;
            }
            let variant = text_at(file, &code, k + 3);
            if !ATOMIC_VARIANTS.contains(&variant) {
                continue;
            }
            seen.entry((file.path.clone(), ctx.in_fn.clone(), variant.to_string()))
                .or_default()
                .push(tok.line);
        }
    }
    // Two-way diff.
    for (key, lines) in &seen {
        let quota = allowed.get(key).copied().unwrap_or(0);
        for &line in lines.iter().skip(quota) {
            diags.push(Diagnostic {
                pass: "concurrency-ordering".into(),
                path: key.0.clone(),
                line,
                symbol: key.1.clone(),
                message: format!(
                    "`Ordering::{}` site is not in the committed allowlist — add \
                     `{}::{}::{}` with a justification comment to `[concurrency] ordering` \
                     in analyze-hot-paths.toml, or use a stronger ordering",
                    key.2, key.0, key.1, key.2
                ),
            });
        }
    }
    for (key, &quota) in &allowed {
        let used = seen.get(key).map_or(0, Vec::len);
        for _ in used..quota {
            diags.push(Diagnostic {
                pass: "concurrency-ordering".into(),
                path: key.0.clone(),
                line: 0,
                symbol: key.1.clone(),
                message: format!(
                    "stale ordering allowlist entry `{}::{}::{}` — no matching \
                     `Ordering::{}` site remains; remove it from analyze-hot-paths.toml",
                    key.0, key.1, key.2, key.2
                ),
            });
        }
    }
    diags
}

/// The guard-liveness check: allocations and solver calls at any token
/// where a guard binding is live, in hot-path functions.
fn lock_hold(ws: &Workspace, config: &AnalyzeConfig, graph: &CallGraph) -> Vec<Diagnostic> {
    // Hot set: seeds plus the transitive closure.
    let mut seeds: Vec<usize> = Vec::new();
    for f in &config.hot.functions {
        seeds.extend(graph.seed_ids(&f.crate_name, &f.symbol));
    }
    if seeds.is_empty() {
        return Vec::new();
    }
    let reach = graph.closure(&seeds);
    let hot: HashSet<(String, String)> = reach
        .keys()
        .map(|&id| {
            let d = &graph.table.defs[id];
            (d.crate_name.clone(), d.symbol.clone())
        })
        .collect();

    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        // Pre-filter: no lock vocabulary, no work.
        if !guards::LOCK_FNS.iter().any(|f| file.text.contains(f)) {
            continue;
        }
        let code = code_indices(file);
        for fn_cfg in cfg::build_all(file, &code) {
            if !hot.contains(&(file.crate_name.clone(), fn_cfg.symbol.clone())) {
                continue;
            }
            if fn_cfg
                .blocks
                .iter()
                .find_map(|b| b.tokens.first())
                .is_some_and(|&k| file.ctx[code[k]].in_test)
            {
                continue;
            }
            let locks = guards::analyze_fn(file, &code, &fn_cfg);
            if locks.bindings.is_empty() {
                continue;
            }
            for b in 0..fn_cfg.blocks.len() {
                locks.walk_block(file, &code, &fn_cfg, b, |k, live| {
                    if live.is_empty() {
                        return;
                    }
                    let i = code[k];
                    let tok = &file.tokens[i];
                    let line = tok.line;
                    let guard = &locks.bindings[live[0]].name;
                    let text = file.text_of(tok);
                    if tok.kind == TokenKind::Ident
                        && SOLVER_CALLS.contains(&text)
                        && text_at(file, &code, k + 1) == "("
                    {
                        if file.allowed("lock", line).is_some() {
                            return;
                        }
                        diags.push(Diagnostic {
                            pass: "concurrency-lock".into(),
                            path: file.path.clone(),
                            line,
                            symbol: fn_cfg.symbol.clone(),
                            message: format!(
                                "solver call `{text}(…)` while MutexGuard `{guard}` is held in a \
                                 hot-path function — drop the guard first, or justify with \
                                 `// analyze::allow(lock): …`"
                            ),
                        });
                    } else if let Some(msg) = alloc_finding(file, &code, k) {
                        if file.allowed("lock", line).is_some() {
                            return;
                        }
                        let construct = msg.split(" allocates").next().unwrap_or("allocation");
                        diags.push(Diagnostic {
                            pass: "concurrency-lock".into(),
                            path: file.path.clone(),
                            line,
                            symbol: fn_cfg.symbol.clone(),
                            message: format!(
                                "{construct} allocation while MutexGuard `{guard}` is held in a \
                                 hot-path function — move it outside the critical section, or \
                                 justify with `// analyze::allow(lock): …`"
                            ),
                        });
                    }
                });
            }
        }
    }
    diags
}
