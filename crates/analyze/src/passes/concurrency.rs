//! Concurrency hygiene: two checks over the parallel engine's idioms.
//!
//! **Ordering audit** (`concurrency-ordering`): every atomic
//! `Ordering::` use site in production code must appear in the
//! committed allowlist (`[concurrency] ordering` in
//! `analyze-hot-paths.toml`), where each entry carries a justification
//! comment. The check is two-way — an unlisted site fails, and a stale
//! entry fails — so the allowlist is always exactly the set of sites.
//! `std::cmp::Ordering` never matches: its variants (`Less`, `Equal`,
//! `Greater`) are not atomic orderings.
//!
//! **Lock-hold hygiene** (`concurrency-lock`): inside hot-path
//! functions (seeds plus the transitive closure), a `MutexGuard` bound
//! from the engine's sharded-deque helpers (`lock_shard`,
//! `lock_result`) or a raw `.lock()` must not be held across an
//! allocation or a solver call. Guard temporaries
//! (`lock_shard(s).pop_front()`) are fine — the guard drops at the end
//! of the statement. Justified holds carry
//! `// analyze::allow(lock): <reason>`.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{alloc_finding, code_indices, is_test_path, text_at};

/// Atomic ordering variants (the `std::cmp::Ordering` variants are
/// deliberately absent).
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Functions returning a guard the lock-hold check tracks.
const LOCK_FNS: &[&str] = &["lock", "lock_shard", "lock_result"];

/// Calls that must never run under a held shard guard.
const SOLVER_CALLS: &[&str] = &[
    "solve",
    "solve_with_assumptions",
    "solve_interruptible",
    "solve_certified",
    "solve_budgeted",
    "solve_rounds",
    "main_loop",
    "solve_inner",
];

/// Runs both concurrency checks.
#[must_use]
pub fn run(ws: &Workspace, cfg: &AnalyzeConfig, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = ordering_audit(ws, cfg);
    diags.extend(lock_hold(ws, cfg, graph));
    diags
}

fn ordering_audit(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    // Multiset of allowlisted sites.
    let mut allowed: HashMap<(String, String, String), usize> = HashMap::new();
    for site in &cfg.ordering_allow {
        *allowed
            .entry((site.path.clone(), site.symbol.clone(), site.variant.clone()))
            .or_default() += 1;
    }
    let mut diags = Vec::new();
    // Scan every production file for `Ordering::Variant` sites.
    let mut seen: HashMap<(String, String, String), Vec<u32>> = HashMap::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let tok = &file.tokens[i];
            let ctx = &file.ctx[i];
            if tok.kind != TokenKind::Ident
                || file.text_of(tok) != "Ordering"
                || ctx.in_test
                || ctx.in_attr
            {
                continue;
            }
            if text_at(file, &code, k + 1) != ":" || text_at(file, &code, k + 2) != ":" {
                continue;
            }
            let variant = text_at(file, &code, k + 3);
            if !ATOMIC_VARIANTS.contains(&variant) {
                continue;
            }
            seen.entry((file.path.clone(), ctx.in_fn.clone(), variant.to_string()))
                .or_default()
                .push(tok.line);
        }
    }
    // Two-way diff.
    for (key, lines) in &seen {
        let quota = allowed.get(key).copied().unwrap_or(0);
        for &line in lines.iter().skip(quota) {
            diags.push(Diagnostic {
                pass: "concurrency-ordering".into(),
                path: key.0.clone(),
                line,
                symbol: key.1.clone(),
                message: format!(
                    "`Ordering::{}` site is not in the committed allowlist — add \
                     `{}::{}::{}` with a justification comment to `[concurrency] ordering` \
                     in analyze-hot-paths.toml, or use a stronger ordering",
                    key.2, key.0, key.1, key.2
                ),
            });
        }
    }
    for (key, &quota) in &allowed {
        let used = seen.get(key).map_or(0, Vec::len);
        for _ in used..quota {
            diags.push(Diagnostic {
                pass: "concurrency-ordering".into(),
                path: key.0.clone(),
                line: 0,
                symbol: key.1.clone(),
                message: format!(
                    "stale ordering allowlist entry `{}::{}::{}` — no matching \
                     `Ordering::{}` site remains; remove it from analyze-hot-paths.toml",
                    key.0, key.1, key.2, key.2
                ),
            });
        }
    }
    diags
}

fn lock_hold(ws: &Workspace, cfg: &AnalyzeConfig, graph: &CallGraph) -> Vec<Diagnostic> {
    // Hot set: seeds plus the transitive closure.
    let mut seeds: Vec<usize> = Vec::new();
    for f in &cfg.hot.functions {
        seeds.extend(graph.seed_ids(&f.crate_name, &f.symbol));
    }
    if seeds.is_empty() {
        return Vec::new();
    }
    let reach = graph.closure(&seeds);
    let hot: HashSet<(String, String)> = reach
        .keys()
        .map(|&id| {
            let d = &graph.table.defs[id];
            (d.crate_name.clone(), d.symbol.clone())
        })
        .collect();

    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let tok = &file.tokens[i];
            let ctx = &file.ctx[i];
            if tok.kind != TokenKind::Ident
                || ctx.in_test
                || ctx.in_attr
                || !LOCK_FNS.contains(&file.text_of(tok))
                || text_at(file, &code, k + 1) != "("
                || !hot.contains(&(file.crate_name.clone(), ctx.in_fn.clone()))
            {
                continue;
            }
            if let Some((guard, stmt_end)) = held_guard(file, &code, k) {
                scan_hold_region(file, &code, stmt_end, &guard, &ctx.in_fn, &mut diags);
            }
        }
    }
    diags
}

/// If the lock call at view position `k` binds a guard that outlives
/// its statement, returns the guard name and the view position of the
/// statement's `;`. Temporaries (`lock_shard(s).pop_front()`) return
/// `None`.
fn held_guard(file: &SourceFile, code: &[usize], k: usize) -> Option<(String, usize)> {
    // Forward: match the call's parens, then skip transparent
    // `.unwrap()`/`.expect(…)` chains; a held binding ends with `;`.
    let mut j = k + 1; // at `(`
    let mut depth = 0i32;
    loop {
        match text_at(file, code, j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "" => return None,
            _ => {}
        }
        j += 1;
    }
    let mut j = j + 1;
    while text_at(file, code, j) == "."
        && matches!(
            text_at(file, code, j + 1),
            "unwrap" | "expect" | "unwrap_or_else"
        )
    {
        // Skip `.name(…)`.
        let mut p = j + 2;
        if text_at(file, code, p) != "(" {
            break;
        }
        let mut d = 0i32;
        loop {
            match text_at(file, code, p) {
                "(" => d += 1,
                ")" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                "" => return None,
                _ => {}
            }
            p += 1;
        }
        j = p + 1;
    }
    if text_at(file, code, j) != ";" {
        return None;
    }
    let stmt_end = j;
    // Backward: the statement must be a `let` binding; capture the name.
    let mut b = k;
    while b > 0 {
        b -= 1;
        match text_at(file, code, b) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut n = b + 1;
                if text_at(file, code, n) == "mut" {
                    n += 1;
                }
                let name = text_at(file, code, n).to_string();
                return Some((name, stmt_end));
            }
            _ => {}
        }
    }
    None
}

/// Scans from the binding's `;` to the end of the enclosing block (or
/// an explicit `drop(guard)`), flagging allocations and solver calls.
fn scan_hold_region(
    file: &SourceFile,
    code: &[usize],
    stmt_end: usize,
    guard: &str,
    symbol: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut depth = 0i32;
    let mut k = stmt_end + 1;
    loop {
        let text = text_at(file, code, k);
        if text.is_empty() {
            return;
        }
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return; // enclosing block ends; guard drops
                }
            }
            "drop"
                if text_at(file, code, k + 1) == "("
                    && text_at(file, code, k + 2) == guard
                    && text_at(file, code, k + 3) == ")" =>
            {
                return;
            }
            _ => {}
        }
        let i = code[k];
        let tok = &file.tokens[i];
        let line = tok.line;
        if tok.kind == TokenKind::Ident
            && SOLVER_CALLS.contains(&text)
            && text_at(file, code, k + 1) == "("
            && file.allowed("lock", line).is_none()
        {
            diags.push(Diagnostic {
                pass: "concurrency-lock".into(),
                path: file.path.clone(),
                line,
                symbol: symbol.to_string(),
                message: format!(
                    "solver call `{text}(…)` while MutexGuard `{guard}` is held in a hot-path \
                     function — drop the guard first, or justify with `// analyze::allow(lock): …`"
                ),
            });
        } else if let Some(msg) = alloc_finding(file, code, k) {
            if file.allowed("lock", line).is_none() {
                let construct = msg.split(" allocates").next().unwrap_or("allocation");
                diags.push(Diagnostic {
                    pass: "concurrency-lock".into(),
                    path: file.path.clone(),
                    line,
                    symbol: symbol.to_string(),
                    message: format!(
                        "{construct} allocation while MutexGuard `{guard}` is held in a hot-path \
                         function — move it outside the critical section, or justify with \
                         `// analyze::allow(lock): …`"
                    ),
                });
            }
        }
        k += 1;
    }
}
