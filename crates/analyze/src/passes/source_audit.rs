//! Source-audit pass: the PR-1 hygiene rules, ported from line-based
//! scanning onto the lexer.
//!
//! The rules are unchanged:
//!
//! * every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//!   carries `#![forbid(unsafe_code)]` and `//!` crate docs;
//! * `todo!` / `unimplemented!` / `dbg!` never ship, test code included;
//! * `.unwrap()` / `.expect(…)` in library code are budgeted per file by
//!   `crates/xtask/audit-allowlist.txt` (burn-down only) — test modules
//!   and `tests/` / `benches/` / `examples/` are exempt.
//!
//! What changed is the *mechanism*: matching tokens instead of line
//! substrings means string literals and comments can no longer produce
//! false positives, so the audit now also covers `crates/xtask` and
//! `crates/analyze` themselves — the old scanner had to skip them
//! because their rule tables spell the banned tokens out literally.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// The audit findings, split by how the caller treats them.
#[derive(Debug, Default)]
pub struct AuditFindings {
    /// Unconditional violations (missing forbid/docs, `todo!`, …).
    pub hard: Vec<Diagnostic>,
    /// `.unwrap()` / `.expect(…)` sites in library code — one
    /// diagnostic per site, budgeted by the allowlist in the caller.
    pub unwrap_sites: Vec<Diagnostic>,
}

/// Runs the audit pass.
#[must_use]
pub fn run(ws: &Workspace) -> AuditFindings {
    let mut out = AuditFindings::default();
    for file in &ws.files {
        audit_file(file, &mut out);
    }
    out.hard.sort();
    out.unwrap_sites.sort();
    out
}

fn audit_file(file: &SourceFile, out: &mut AuditFindings) {
    let is_crate_root = file.path.ends_with("src/lib.rs")
        || file.path.ends_with("src/main.rs")
        || file.path.contains("src/bin/");
    let code = code_indices(file);
    if is_crate_root {
        crate_root_rules(file, &code, out);
    }
    let exempt_file = is_test_path(&file.path);
    for (k, &i) in code.iter().enumerate() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let ctx = &file.ctx[i];
        if ctx.in_attr {
            continue;
        }
        let text = file.text_of(tok);
        match text {
            "todo" | "unimplemented" | "dbg" if text_at(file, &code, k + 1) == "!" => {
                out.hard.push(Diagnostic {
                    pass: "audit".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message: format!("`{text}!` must not be committed"),
                });
            }
            "unwrap" | "expect"
                if !exempt_file
                    && !ctx.in_test
                    && k > 0
                    && text_at(file, &code, k - 1) == "."
                    && text_at(file, &code, k + 1) == "(" =>
            {
                out.unwrap_sites.push(Diagnostic {
                    pass: "audit".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message: format!("`.{text}(…)` in library code"),
                });
            }
            _ => {}
        }
    }
}

fn crate_root_rules(file: &SourceFile, code: &[usize], out: &mut AuditFindings) {
    let has_forbid = code.iter().enumerate().any(|(k, &i)| {
        let tok = &file.tokens[i];
        tok.kind == TokenKind::Ident
            && file.ctx[i].in_attr
            && file.text_of(tok) == "forbid"
            && text_at(file, code, k + 1) == "("
            && text_at(file, code, k + 2) == "unsafe_code"
    });
    if !has_forbid {
        out.hard.push(Diagnostic {
            pass: "audit".into(),
            path: file.path.clone(),
            line: 1,
            symbol: String::new(),
            message: "crate root lacks #![forbid(unsafe_code)]".into(),
        });
    }
    let has_docs = file.tokens.iter().any(|t| {
        (t.kind == TokenKind::LineComment && file.text_of(t).starts_with("//!"))
            || (t.kind == TokenKind::BlockComment && file.text_of(t).starts_with("/*!"))
    });
    if !has_docs {
        out.hard.push(Diagnostic {
            pass: "audit".into(),
            path: file.path.clone(),
            line: 1,
            symbol: String::new(),
            message: "crate root lacks //! crate-level documentation".into(),
        });
    }
}
