//! Lock-order discipline (`lock-order`): the workspace's locks must
//! form an acyclic acquisition order.
//!
//! For every production function the pass runs the guard-liveness
//! dataflow from `super::guards` and records each lock acquisition
//! that happens **while another guard is live** — an intra-function
//! `held → acquired` edge. Holds also compose across the call graph: a
//! call made while a guard is live contributes `held → c` for every
//! lock class `c` the callee (transitively) acquires. The union over
//! the workspace is the **lock-order graph**; a cycle in it is a
//! potential deadlock (two threads taking the same pair of locks in
//! opposite orders), and the pass fails with one diagnostic per cycle,
//! rendering every acquisition chain with file:line evidence.
//!
//! Lock *classes* are crate-qualified receiver names
//! (`hqs-engine/shard`, `hqs-obs/spans`) — see
//! `super::guards::lock_class`. Class granularity is coarser than
//! lock *instances*: two different shards share the class `shard`, so
//! a `shard → shard` self-loop is reported too — which is exactly the
//! work-stealing hazard (worker A holds its shard and locks B's while
//! B does the reverse). Deliberate same-class nesting must be justified
//! at the acquisition site with `// analyze::allow(lock): <reason>`,
//! which suppresses the edge.
//!
//! The graph itself is part of the analysis result: `xtask analyze
//! --lock-graph` dumps it as JSON and `--lock-dot` as Graphviz, and CI
//! uploads both, so the committed invariant is not just "no cycles" but
//! a reviewable artifact of which orders exist at all.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::cfg;
use crate::diag::Diagnostic;
use crate::json::Json;
use crate::workspace::Workspace;

use super::{code_indices, guards, is_test_path};

/// One directed edge of the lock-order graph.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Class held when the acquisition happened.
    pub from: String,
    /// Class acquired while `from` was held.
    pub to: String,
    /// Human-readable acquisition chains, each with file:line evidence.
    pub evidence: Vec<String>,
}

/// The workspace lock-order graph.
#[derive(Clone, Debug, Default)]
pub struct LockGraph {
    /// All lock classes seen anywhere (acquired at all, held or not).
    pub nodes: Vec<String>,
    /// Held → acquired edges, deduplicated, evidence merged.
    pub edges: Vec<LockEdge>,
}

/// Runs the lock-order pass: builds the graph and reports cycles.
#[must_use]
pub fn run(ws: &Workspace, graph: &CallGraph) -> (LockGraph, Vec<Diagnostic>) {
    let lg = build(ws, graph);
    let diags = cycle_diagnostics(&lg);
    (lg, diags)
}

/// Builds the workspace lock-order graph.
#[must_use]
pub fn build(ws: &Workspace, graph: &CallGraph) -> LockGraph {
    let mut nodes: Vec<String> = Vec::new();
    let mut edge_map: HashMap<(String, String), Vec<String>> = HashMap::new();
    let add_node = |nodes: &mut Vec<String>, c: &str| {
        if !nodes.iter().any(|n| n == c) {
            nodes.push(c.to_string());
        }
    };

    // Per-def direct acquisitions, and per-(path, symbol) held-liveness
    // by line for the call-composition step.
    let mut direct: HashMap<usize, HashSet<String>> = HashMap::new();
    struct HeldSite {
        class: String,
        guard: String,
        bind_line: u32,
    }
    // (caller path, caller symbol, call line) → held guards there.
    let mut held_at: HashMap<(String, String, u32), Vec<HeldSite>> = HashMap::new();

    // Def ids by (crate, symbol) — a symbol may legitimately map to
    // several defs (same name in sibling modules).
    let mut ids_of: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (id, d) in graph.table.defs.iter().enumerate() {
        ids_of
            .entry((d.crate_name.as_str(), d.symbol.as_str()))
            .or_default()
            .push(id);
    }

    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        if !guards::LOCK_FNS.iter().any(|f| file.text.contains(f)) {
            continue;
        }
        let code = code_indices(file);
        for fn_cfg in cfg::build_all(file, &code) {
            if fn_cfg
                .blocks
                .iter()
                .find_map(|b| b.tokens.first())
                .is_some_and(|&k| file.ctx[code[k]].in_test)
            {
                continue;
            }
            let locks = guards::analyze_fn(file, &code, &fn_cfg);
            if locks.acquisitions.is_empty() {
                continue;
            }
            let qualify = |c: &str| format!("{}/{}", file.crate_name, c);
            for a in &locks.acquisitions {
                add_node(&mut nodes, &qualify(&a.class));
            }
            // Direct acquisition sets feed the transitive closure.
            for &id in ids_of
                .get(&(file.crate_name.as_str(), fn_cfg.symbol.as_str()))
                .map_or(&[][..], |v| &v[..])
            {
                let entry = direct.entry(id).or_default();
                for a in &locks.acquisitions {
                    entry.insert(qualify(&a.class));
                }
            }
            if locks.bindings.is_empty() {
                continue;
            }
            // Intra-function edges: an acquisition while a guard is
            // live. The acquiring binding's own fact only activates
            // after its statement, so a binding never edges to itself.
            for b in 0..fn_cfg.blocks.len() {
                locks.walk_block(file, &code, &fn_cfg, b, |k, live| {
                    if live.is_empty() {
                        return;
                    }
                    let Some(a) = locks.acquisitions.iter().find(|a| a.pos == k) else {
                        return;
                    };
                    if file.allowed("lock", a.line).is_some() {
                        return;
                    }
                    for &f in live {
                        let held = &locks.bindings[f];
                        edge_map
                            .entry((qualify(&held.class), qualify(&a.class)))
                            .or_default()
                            .push(format!(
                                "`{}` held via `{}` ({}:{}) → acquires `{}` at {}:{} in {}",
                                qualify(&held.class),
                                held.name,
                                file.path,
                                held.line,
                                qualify(&a.class),
                                file.path,
                                a.line,
                                fn_cfg.symbol,
                            ));
                    }
                });
            }
            // Calls made while a guard is live: composed below once the
            // transitive acquisition sets are known. The allow check
            // happens at composition time — only a line that actually
            // hosts a call edge to a lock-acquiring callee is a
            // suppression point.
            let by_line = locks.live_by_line(file, &code, &fn_cfg);
            for (line, live) in by_line {
                let sites: Vec<HeldSite> = live
                    .iter()
                    .map(|&f| {
                        let held = &locks.bindings[f];
                        HeldSite {
                            class: qualify(&held.class),
                            guard: held.name.clone(),
                            bind_line: held.line,
                        }
                    })
                    .collect();
                held_at.insert((file.path.clone(), fn_cfg.symbol.clone(), line), sites);
            }
        }
    }

    // Transitive acquisition sets over the call graph:
    // trans(f) = direct(f) ∪ ⋃ trans(callee).
    let n = graph.table.defs.len();
    let mut trans: Vec<HashSet<String>> = (0..n)
        .map(|id| direct.get(&id).cloned().unwrap_or_default())
        .collect();
    loop {
        let mut changed = false;
        for e in &graph.edges {
            if e.caller == e.callee {
                continue;
            }
            let add: Vec<String> = trans[e.callee]
                .iter()
                .filter(|c| !trans[e.caller].contains(*c))
                .cloned()
                .collect();
            if !add.is_empty() {
                trans[e.caller].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Composed edges: a call under a held guard inherits everything the
    // callee transitively acquires.
    let file_of: HashMap<&str, &crate::source::SourceFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    for e in &graph.edges {
        let caller = &graph.table.defs[e.caller];
        let key = (caller.path.clone(), caller.symbol.clone(), e.line);
        let Some(sites) = held_at.get(&key) else {
            continue;
        };
        if trans[e.callee].is_empty() {
            continue;
        }
        if file_of
            .get(caller.path.as_str())
            .is_some_and(|f| f.allowed("lock", e.line).is_some())
        {
            continue;
        }
        let callee = &graph.table.defs[e.callee];
        for site in sites {
            for acquired in &trans[e.callee] {
                add_node(&mut nodes, acquired);
                add_node(&mut nodes, &site.class);
                edge_map
                    .entry((site.class.clone(), acquired.clone()))
                    .or_default()
                    .push(format!(
                        "`{}` held via `{}` ({}:{}) → {} calls {} at {}:{}, which acquires `{}`",
                        site.class,
                        site.guard,
                        caller.path,
                        site.bind_line,
                        caller.symbol,
                        callee.symbol,
                        e.path,
                        e.line,
                        acquired,
                    ));
            }
        }
    }

    let mut edges: Vec<LockEdge> = edge_map
        .into_iter()
        .map(|((from, to), mut evidence)| {
            evidence.sort();
            evidence.dedup();
            LockEdge { from, to, evidence }
        })
        .collect();
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    nodes.sort();
    LockGraph { nodes, edges }
}

impl LockGraph {
    /// Strongly connected components with ≥ 2 nodes, plus self-loops —
    /// i.e. every cycle witness, one entry per component.
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let idx: HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if let (Some(&f), Some(&t)) = (idx.get(e.from.as_str()), idx.get(e.to.as_str())) {
                adj[f].push(t);
            }
        }
        let sccs = kosaraju(n, &adj);
        let mut out = Vec::new();
        for scc in sccs {
            let is_cycle = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
            if is_cycle {
                let mut names: Vec<String> = scc.iter().map(|&i| self.nodes[i].clone()).collect();
                names.sort();
                out.push(names);
            }
        }
        out.sort();
        out
    }

    /// JSON dump (schema `hqs-analyze-lockgraph/1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "schema".into(),
                Json::String("hqs-analyze-lockgraph/1".into()),
            ),
            (
                "nodes".into(),
                Json::Array(self.nodes.iter().map(|n| Json::String(n.clone())).collect()),
            ),
            (
                "edges".into(),
                Json::Array(
                    self.edges
                        .iter()
                        .map(|e| {
                            Json::Object(vec![
                                ("from".into(), Json::String(e.from.clone())),
                                ("to".into(), Json::String(e.to.clone())),
                                (
                                    "evidence".into(),
                                    Json::Array(
                                        e.evidence
                                            .iter()
                                            .map(|s| Json::String(s.clone()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cycles".into(),
                Json::Array(
                    self.cycles()
                        .into_iter()
                        .map(|c| Json::Array(c.into_iter().map(Json::String).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Graphviz rendering: one node per lock class, one edge per order,
    /// cycle members drawn red.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let cyclic: HashSet<String> = self.cycles().into_iter().flatten().collect();
        let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
        for n in &self.nodes {
            if cyclic.contains(n) {
                out.push_str(&format!("  \"{n}\" [color=red, fontcolor=red];\n"));
            } else {
                out.push_str(&format!("  \"{n}\";\n"));
            }
        }
        for e in &self.edges {
            let attr = if cyclic.contains(&e.from) && cyclic.contains(&e.to) {
                " [color=red]"
            } else {
                ""
            };
            out.push_str(&format!("  \"{}\" -> \"{}\"{attr};\n", e.from, e.to));
        }
        out.push_str("}\n");
        out
    }
}

/// One diagnostic per cycle, rendering every acquisition chain inside
/// the component.
fn cycle_diagnostics(lg: &LockGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for cycle in lg.cycles() {
        let members: HashSet<&str> = cycle.iter().map(String::as_str).collect();
        let mut chains: Vec<&str> = Vec::new();
        let mut anchor: Option<(&str, &str)> = None; // (path, first evidence)
        for e in &lg.edges {
            if members.contains(e.from.as_str()) && members.contains(e.to.as_str()) {
                for ev in &e.evidence {
                    chains.push(ev);
                    if anchor.is_none() {
                        anchor = Some((path_of(ev).unwrap_or(""), ev));
                    }
                }
            }
        }
        let rendered: Vec<String> = chains
            .iter()
            .enumerate()
            .map(|(i, c)| format!("({}) {c}", i + 1))
            .collect();
        diags.push(Diagnostic {
            pass: "lock-order".into(),
            path: anchor.map_or(String::new(), |(p, _)| p.to_string()),
            line: 0,
            symbol: cycle.join(" ⇄ "),
            message: format!(
                "lock-order cycle between {{{}}} — two threads taking these locks in opposite \
                 orders deadlock; acquisition chains: {} — break the cycle by reordering, or \
                 justify an acquisition with `// analyze::allow(lock): …`",
                cycle.join(", "),
                rendered.join("; "),
            ),
        });
    }
    diags
}

/// Extracts the `path:line` path from an evidence string (first
/// parenthesized site).
fn path_of(ev: &str) -> Option<&str> {
    let start = ev.find('(')? + 1;
    let rest = &ev[start..];
    let colon = rest.find(':')?;
    Some(&rest[..colon])
}

/// Kosaraju SCC: two DFS sweeps, iterative.
fn kosaraju(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            radj[v].push(u);
        }
    }
    // First sweep: finish order.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Second sweep on the reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = sccs.len();
        let mut members = vec![s];
        comp[s] = c;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        sccs.push(members);
    }
    sccs
}
