//! Hot-loop allocation pass: no per-iteration allocation in the loops
//! of functions declared hot.
//!
//! The pass is lexical: it flags allocation-shaped constructs —
//! `Vec::new`, `Vec::with_capacity`, `Box::new`, `.clone()`,
//! `.to_vec()`, `.collect()`, `format!`, `vec!` — that sit *inside a
//! loop body* of a hot function. The idiomatic fix in this codebase is
//! a scratch buffer on the owning struct reused via
//! `std::mem::take`; where an allocation is genuinely once-per-call or
//! amortized, the site carries `// analyze::allow(alloc): <reason>`.
//!
//! The matcher itself lives in `super::alloc_finding` and is shared
//! with the `hot-transitive` pass.

use crate::config::HotPaths;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

use super::{alloc_finding, code_indices, is_test_path};

/// Runs the hot-loop allocation pass.
#[must_use]
pub fn run(ws: &Workspace, hot: &HotPaths) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_fn.is_empty()
                || ctx.loop_depth == 0
                || ctx.in_test
                || ctx.in_attr
                || !hot.is_hot(&file.crate_name, &ctx.in_fn)
            {
                continue;
            }
            if let Some(message) = alloc_finding(file, &code, k) {
                let tok = &file.tokens[i];
                if file.allowed("alloc", tok.line).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    pass: "hot-alloc".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message,
                });
            }
        }
    }
    diags
}
