//! Hot-loop allocation pass: no per-iteration allocation in the loops
//! of functions declared hot.
//!
//! The pass is lexical: it flags allocation-shaped constructs —
//! `Vec::new`, `Vec::with_capacity`, `Box::new`, `.clone()`,
//! `.to_vec()`, `.collect()`, `format!`, `vec!` — that sit *inside a
//! loop body* of a hot function. The idiomatic fix in this codebase is
//! a scratch buffer on the owning struct reused via
//! `std::mem::take`; where an allocation is genuinely once-per-call or
//! amortized, the site carries `// analyze::allow(alloc): <reason>`.

use crate::config::HotPaths;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Runs the hot-loop allocation pass.
#[must_use]
pub fn run(ws: &Workspace, hot: &HotPaths) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let ctx = &file.ctx[i];
            if ctx.in_fn.is_empty()
                || ctx.loop_depth == 0
                || ctx.in_test
                || ctx.in_attr
                || !hot.is_hot(&file.crate_name, &ctx.in_fn)
            {
                continue;
            }
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text_of(tok);
            let next = text_at(file, &code, k + 1);
            let prev = if k > 0 {
                text_at(file, &code, k - 1)
            } else {
                ""
            };
            let finding: Option<String> = match text {
                "Vec" | "Box" | "String"
                    if next == ":"
                        && text_at(file, &code, k + 2) == ":"
                        && matches!(text_at(file, &code, k + 3), "new" | "with_capacity") =>
                {
                    Some(format!(
                        "`{text}::{}` allocates inside a hot loop — hoist to a reused scratch buffer",
                        text_at(file, &code, k + 3)
                    ))
                }
                "clone" | "to_vec" | "collect" | "to_owned"
                    if prev == "." && matches!(next, "(" | ":") =>
                {
                    Some(format!(
                        "`.{text}()` allocates inside a hot loop — reuse a scratch buffer or borrow"
                    ))
                }
                "format" | "vec" if next == "!" => Some(format!(
                    "`{text}!` allocates inside a hot loop — hoist or pre-size outside the loop"
                )),
                _ => None,
            };
            if let Some(message) = finding {
                if file.allowed("alloc", tok.line).is_some() {
                    continue;
                }
                diags.push(Diagnostic {
                    pass: "hot-alloc".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message,
                });
            }
        }
    }
    diags
}
