//! Determinism taint: nondeterminism sources denied in the callee
//! closure of the declared deterministic roots.
//!
//! Portfolio cross-checking and certificate emission are only evidence
//! if a re-run is byte-reproducible, so the functions listed under
//! `[determinism] roots` in `analyze-hot-paths.toml` (deterministic
//! arbitration, the batch JSONL writer, Skolem/Herbrand extraction)
//! anchor a closure over the workspace [`CallGraph`] in which the pass
//! denies:
//!
//! * **hash-ordered iteration** — `iter`/`keys`/`values`/`drain`/
//!   `into_*` calls and `for … in` loops over locals or fields the
//!   file declares as `HashMap`/`HashSet`: their order varies per
//!   process (SipHash keys are randomly seeded), so any use that can
//!   reach output is a reproducibility hole;
//! * **explicit `RandomState`** — opting into the random hasher;
//! * **wall-clock reads** — `Instant::now` / `SystemTime::now`;
//! * **ambient identity** — `thread::current` (thread ids) and
//!   `env::var`-family reads.
//!
//! Every diagnostic carries the seed-to-sink chain
//! (`[deterministic via hqs-engine::arbitrate → …]`) so the finding is
//! file:line evidence of *how* the source reaches a deterministic
//! root. Sites with a harmless order (e.g. folding into an
//! order-insensitive aggregate) are silenced with
//! `// analyze::allow(determinism): <reason>` — the two-way ratchet
//! reports the annotation itself if the site disappears.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Methods whose result order follows the hasher, not the data.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Runs the determinism pass.
#[must_use]
pub fn run(ws: &Workspace, cfg: &AnalyzeConfig, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut seeds: Vec<usize> = Vec::new();
    for f in &cfg.determinism_roots {
        seeds.extend(graph.seed_ids(&f.crate_name, &f.symbol));
    }
    if seeds.is_empty() {
        return Vec::new();
    }
    let reach = graph.closure(&seeds);

    let mut per_file: HashMap<&str, HashMap<&str, String>> = HashMap::new();
    for &id in reach.keys() {
        let def = &graph.table.defs[id];
        per_file
            .entry(def.path.as_str())
            .or_default()
            .insert(def.symbol.as_str(), graph.chain(&reach, id));
    }

    let mut diags = Vec::new();
    for file in &ws.files {
        let Some(symbols) = per_file.get(file.path.as_str()) else {
            continue;
        };
        if is_test_path(&file.path) {
            continue;
        }
        let code = code_indices(file);
        let hashy = hash_bound_idents(file, &code);
        for k in 0..code.len() {
            let ctx = &file.ctx[code[k]];
            if ctx.in_fn.is_empty() || ctx.in_test || ctx.in_attr {
                continue;
            }
            let Some(chain) = symbols.get(ctx.in_fn.as_str()) else {
                continue;
            };
            let Some(message) = finding(file, &code, k, &hashy) else {
                continue;
            };
            let tok = &file.tokens[code[k]];
            if file.allowed("determinism", tok.line).is_none() {
                diags.push(Diagnostic {
                    pass: "determinism".into(),
                    path: file.path.clone(),
                    line: tok.line,
                    symbol: ctx.in_fn.clone(),
                    message: format!("{message} [deterministic via {chain}]"),
                });
            }
        }
    }
    diags
}

/// The nondeterminism source at view position `k`, if any.
fn finding(file: &SourceFile, code: &[usize], k: usize, hashy: &HashSet<String>) -> Option<String> {
    let tok = &file.tokens[code[k]];
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let txt = |i: usize| text_at(file, code, i);
    let text = tok.text(&file.text);
    // `env`/`thread` must be the path root or follow `std ::` —
    // `my_mod::env::var` is someone else's `env`.
    let std_rooted = |k: usize| {
        k == 0 || txt(k - 1) != ":" || (k >= 3 && txt(k - 2) == ":" && txt(k - 3) == "std")
    };

    // Direct sources first: they never depend on the hashy set.
    match text {
        "RandomState" => {
            return Some("explicit `RandomState` hasher is randomly seeded per process".into());
        }
        "Instant" | "SystemTime"
            if k + 3 < code.len() && txt(k + 1) == ":" && txt(k + 3) == "now" =>
        {
            return Some(format!(
                "wall-clock read `{text}::now()` varies across runs"
            ));
        }
        "thread"
            if k + 3 < code.len()
                && txt(k + 1) == ":"
                && txt(k + 3) == "current"
                && std_rooted(k) =>
        {
            return Some("`thread::current()` exposes a per-run thread identity".into());
        }
        "env"
            if k + 3 < code.len()
                && txt(k + 1) == ":"
                && matches!(txt(k + 3), "var" | "vars" | "var_os" | "vars_os")
                && std_rooted(k) =>
        {
            return Some(format!(
                "environment read `env::{}` is ambient, non-reproducible input",
                txt(k + 3)
            ));
        }
        _ => {}
    }

    if !hashy.contains(text) {
        return None;
    }
    // `x.iter()` / `self.x.keys()` / … — an order-following method on a
    // hash-bound binding.
    if k + 2 < code.len() && txt(k + 1) == "." && ORDER_METHODS.contains(&txt(k + 2)) {
        return Some(format!(
            "iteration order of hash-bound `{text}.{}()` varies per process",
            txt(k + 2)
        ));
    }
    // `for … in x {` / `for … in &mut self.x {` — the implicit
    // IntoIterator form of the same thing.
    let mut p = k;
    while p >= 2 && txt(p - 1) == "." && file.tokens[code[p - 2]].kind == TokenKind::Ident {
        p -= 2;
    }
    while p >= 1 && matches!(txt(p - 1), "&" | "mut") {
        p -= 1;
    }
    if p >= 1 && txt(p - 1) == "in" {
        return Some(format!(
            "`for` over hash-bound `{text}` iterates in per-process hash order",
        ));
    }
    None
}

/// Identifiers the file binds to a `HashMap`/`HashSet`: via a type
/// annotation (`let m: HashMap<…>`, a struct field, an fn param) or a
/// constructor assignment (`m = HashMap::new()`). File-wide on
/// purpose — a field declared hashy taints `self.field` uses in every
/// method.
fn hash_bound_idents(file: &SourceFile, code: &[usize]) -> HashSet<String> {
    let txt = |i: usize| text_at(file, code, i);
    let is_ident = |i: usize| file.tokens[code[i]].kind == TokenKind::Ident;
    let mut hashy = HashSet::new();
    for k in 0..code.len() {
        if !is_ident(k) || !matches!(txt(k), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut p = k;
        while p >= 3 && txt(p - 1) == ":" && txt(p - 2) == ":" && is_ident(p - 3) {
            p -= 3;
        }
        if p == 0 {
            continue;
        }
        if p < 2 {
            continue;
        }
        // `name : HashMap` — annotation (let, field, or param).
        if txt(p - 1) == ":" && txt(p - 2) != ":" && is_ident(p - 2) {
            hashy.insert(txt(p - 2).to_string());
            continue;
        }
        // `name = HashMap :: …` — constructor assignment.
        if txt(p - 1) == "=" && !matches!(txt(p - 2), "=" | "!" | "<" | ">") && is_ident(p - 2) {
            hashy.insert(txt(p - 2).to_string());
        }
    }
    hashy
}
