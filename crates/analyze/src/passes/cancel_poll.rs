//! Cancel-poll coverage: every loop inside a declared solver-entry
//! function must reach a cancellation poll within its body.
//!
//! Entry functions come from `[cancel-poll] functions` in
//! `analyze-hot-paths.toml` — the elimination loop, the CDCL
//! conflict/decision loop, the QBF backends, the scheduler claim loop.
//! For each, the pass segments the body into loop spans using the
//! tracker's per-token loop depth and requires each span to contain a
//! poll-shaped call: `is_cancelled`, `stop_requested`, `cancelled`,
//! `cancel_requested`, `should_stop`, `.check(…)` (the `Budget` poll),
//! `solve_interruptible`, `solve_budgeted`, or a call to another
//! declared entry function (recursion polls at its own entry).
//!
//! A poll inside an inner loop also satisfies every enclosing loop —
//! it sits in their bodies too — but an outer poll never satisfies an
//! inner loop: that is exactly the shape that goes uncancellable when
//! the inner loop spins. Bounded loops that genuinely need no poll
//! carry `// analyze::allow(cancel): <reason>` as the first line of
//! the loop body (the diagnostic anchors on the body's first token).

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Poll vocabulary: method/function names that observe cancellation.
const POLLS: &[&str] = &[
    "is_cancelled",
    "stop_requested",
    "cancelled",
    "cancel_requested",
    "should_stop",
    "solve_interruptible",
    "solve_budgeted",
];

/// An open loop span during the scan.
struct LoopSpan {
    depth: u32,
    start_line: u32,
    polled: bool,
}

/// Runs the cancel-poll pass.
#[must_use]
pub fn run(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Bare names of every entry: a recursive call to an entry function
    // counts as a poll (the callee polls at its own entry).
    let entry_bare: Vec<&str> = cfg
        .cancel
        .iter()
        .map(|f| f.symbol.rsplit("::").next().unwrap_or(&f.symbol))
        .collect();
    for entry in &cfg.cancel {
        let mut found = false;
        for file in &ws.files {
            if file.crate_name != entry.crate_name || is_test_path(&file.path) {
                continue;
            }
            if scan_fn(file, &entry.symbol, &entry_bare, &mut diags) {
                found = true;
            }
        }
        if !found {
            diags.push(Diagnostic {
                pass: "cancel-poll".into(),
                path: "analyze-hot-paths.toml".into(),
                line: 0,
                symbol: format!("{}::{}", entry.crate_name, entry.symbol),
                message: format!(
                    "cancel-poll entry `{}::{}` matches no function in the workspace",
                    entry.crate_name, entry.symbol
                ),
            });
        }
    }
    diags
}

/// Scans one file for loops of `symbol`; returns true when the fn was
/// seen at all.
fn scan_fn(
    file: &SourceFile,
    symbol: &str,
    entry_bare: &[&str],
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let code = code_indices(file);
    let mut stack: Vec<LoopSpan> = Vec::new();
    let mut found = false;
    let close = |span: LoopSpan, diags: &mut Vec<Diagnostic>| {
        if !span.polled && file.allowed("cancel", span.start_line).is_none() {
            diags.push(Diagnostic {
                pass: "cancel-poll".into(),
                path: file.path.clone(),
                line: span.start_line,
                symbol: symbol.to_string(),
                message: format!(
                    "loop at depth {} in solver entry has no cancellation poll — call \
                     `Budget::check`/`CancelToken::is_cancelled` (or a peer poll) in the loop \
                     body, or justify with `// analyze::allow(cancel): …`",
                    span.depth
                ),
            });
        }
    };
    for (k, &i) in code.iter().enumerate() {
        let ctx = &file.ctx[i];
        if ctx.in_fn != symbol || ctx.in_test || ctx.in_attr {
            continue;
        }
        found = true;
        let tok = &file.tokens[i];
        let d = ctx.loop_depth;
        while stack.last().is_some_and(|s| d < s.depth) {
            let span = stack.pop().unwrap_or(LoopSpan {
                depth: 0,
                start_line: 0,
                polled: true,
            });
            close(span, diags);
        }
        // analyze::allow(newtype): loop depth is a small count, not a domain index
        while (stack.len() as u32) < d {
            stack.push(LoopSpan {
                depth: stack.len() as u32 + 1,
                start_line: tok.line,
                polled: false,
            });
        }
        if is_poll(file, &code, k, entry_bare) {
            for span in &mut stack {
                span.polled = true;
            }
        }
    }
    while let Some(span) = stack.pop() {
        close(span, diags);
    }
    found
}

/// Is the code token at view position `k` a poll-shaped call?
fn is_poll(file: &SourceFile, code: &[usize], k: usize, entry_bare: &[&str]) -> bool {
    let Some(&i) = code.get(k) else { return false };
    let tok = &file.tokens[i];
    if tok.kind != TokenKind::Ident || text_at(file, code, k + 1) != "(" {
        return false;
    }
    let text = file.text_of(tok);
    if POLLS.contains(&text) || entry_bare.contains(&text) {
        return true;
    }
    // `.check(…)` — the `Budget` poll; require the receiver dot so a
    // free `check(…)` helper does not count.
    text == "check" && k > 0 && text_at(file, code, k - 1) == "."
}
