//! Cancel-poll coverage, path-sensitive: **every path that completes a
//! loop iteration** inside a declared solver-entry function must reach
//! a cancellation poll.
//!
//! Entry functions come from `[cancel-poll] functions` in
//! `analyze-hot-paths.toml` — the elimination loop, the CDCL
//! conflict/decision loop, the QBF backends, the scheduler claim loop.
//! For each, the pass builds the function's CFG ([`crate::cfg`]) and,
//! for every loop, searches the loop body for a cycle — a path from the
//! loop head back to the loop head (a back edge or a `continue`) — that
//! crosses no poll-shaped call. Poll shapes: `is_cancelled`,
//! `stop_requested`, `cancelled`, `cancel_requested`, `should_stop`,
//! `.check(…)` (the `Budget` poll), `solve_budgeted`, or a call to
//! another declared entry function (recursion polls at its own entry;
//! the budget-polling `hqs-sat::Solver::solve` is itself an entry).
//!
//! This is strictly stronger than the old "loop body contains a poll
//! token" span check: a fast-path `if cheap { continue; }` branch that
//! skips the poll is a cycle with no poll on it and is reported, with
//! the concrete line path rendered in the diagnostic. Likewise a poll
//! that lives inside an inner `while` only covers outer iterations that
//! actually enter the inner body — the zero-iteration skip path is a
//! real path and must poll too (or be annotated).
//!
//! Paths that *leave* the loop (`break`, `return`, `?`) need no poll:
//! cancellation only has to bound the time spent looping. Bounded loops
//! that genuinely need no poll carry `// analyze::allow(cancel):
//! <reason>` on the loop header line or the first body line (both are
//! honored; the diagnostic anchors on the loop header).

use crate::cfg::{self, Cfg, EXIT};
use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::{code_indices, is_test_path, text_at};

/// Poll vocabulary: method/function names that observe cancellation.
const POLLS: &[&str] = &[
    "is_cancelled",
    "stop_requested",
    "cancelled",
    "cancel_requested",
    "should_stop",
    "solve_budgeted",
];

/// Runs the cancel-poll pass.
#[must_use]
pub fn run(ws: &Workspace, config: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Bare names of every entry: a recursive call to an entry function
    // counts as a poll (the callee polls at its own entry).
    let entry_bare: Vec<&str> = config
        .cancel
        .iter()
        .map(|f| f.symbol.rsplit("::").next().unwrap_or(&f.symbol))
        .collect();
    for entry in &config.cancel {
        let mut found = false;
        for file in &ws.files {
            if file.crate_name != entry.crate_name || is_test_path(&file.path) {
                continue;
            }
            // Cheap pre-filter before building CFGs for the file.
            let bare = entry.symbol.rsplit("::").next().unwrap_or(&entry.symbol);
            if !file.text.contains(bare) {
                continue;
            }
            let code = code_indices(file);
            for fn_cfg in cfg::build_all(file, &code) {
                if fn_cfg.symbol != entry.symbol || cfg_in_test(file, &code, &fn_cfg) {
                    continue;
                }
                found = true;
                check_fn(file, &code, &fn_cfg, &entry_bare, &mut diags);
            }
        }
        if !found {
            diags.push(Diagnostic {
                pass: "cancel-poll".into(),
                path: "analyze-hot-paths.toml".into(),
                line: 0,
                symbol: format!("{}::{}", entry.crate_name, entry.symbol),
                message: format!(
                    "cancel-poll entry `{}::{}` matches no function in the workspace",
                    entry.crate_name, entry.symbol
                ),
            });
        }
    }
    diags
}

/// Does the CFG belong to a `#[cfg(test)]` / `#[test]` context?
fn cfg_in_test(file: &SourceFile, code: &[usize], fn_cfg: &Cfg) -> bool {
    fn_cfg
        .blocks
        .iter()
        .find_map(|b| b.tokens.first())
        .is_some_and(|&k| file.ctx[code[k]].in_test)
}

/// Checks every loop of one function CFG for unpolled iteration cycles.
fn check_fn(
    file: &SourceFile,
    code: &[usize],
    fn_cfg: &Cfg,
    entry_bare: &[&str],
    diags: &mut Vec<Diagnostic>,
) {
    // Which blocks contain a poll-shaped call (computed once per fn).
    let polls: Vec<bool> = fn_cfg
        .blocks
        .iter()
        .map(|b| b.tokens.iter().any(|&k| is_poll(file, code, k, entry_bare)))
        .collect();
    for l in &fn_cfg.loops {
        if let Some(path) = unpolled_cycle(fn_cfg, l, &polls) {
            // Consult the allow only once a violation exists, so an
            // annotation on a fully-polled loop stays unused and the
            // two-way ratchet reports it as stale.
            if file.allowed("cancel", l.line).is_some()
                || file.allowed("cancel", l.body_line).is_some()
            {
                continue;
            }
            diags.push(Diagnostic {
                pass: "cancel-poll".into(),
                path: file.path.clone(),
                line: l.line,
                symbol: fn_cfg.symbol.clone(),
                message: format!(
                    "loop at line {} in solver entry has a path that completes an iteration \
                     without a cancellation poll [path: {}] — poll \
                     `Budget::check`/`CancelToken::is_cancelled` on every iterating path, or \
                     justify with `// analyze::allow(cancel): …`",
                    l.line,
                    render_path(fn_cfg, &path),
                ),
            });
        }
    }
}

/// Searches for a cycle head → … → head inside the loop body that
/// crosses no poll block. Returns the block path (head first, the block
/// taking the back/continue edge last) if one exists.
fn unpolled_cycle(fn_cfg: &Cfg, l: &cfg::LoopInfo, polls: &[bool]) -> Option<Vec<usize>> {
    let body = fn_cfg.loop_body(l);
    let in_body = |b: usize| body.contains(&b);
    // BFS of "reached from the head without crossing a poll".
    let mut parent: Vec<Option<usize>> = vec![None; fn_cfg.blocks.len()];
    let mut visited = vec![false; fn_cfg.blocks.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[l.head] = true;
    if polls[l.head] {
        // `while !token.is_cancelled()`-style header polls every
        // iteration; no unpolled cycle can exist.
        return None;
    }
    queue.push_back(l.head);
    while let Some(b) = queue.pop_front() {
        for &(s, _) in &fn_cfg.blocks[b].succs {
            if s == l.head {
                // Completed an iteration without passing a poll.
                let mut path = vec![b];
                let mut cur = b;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.push(l.head); // BFS root (parent chain ends there)
                path.dedup();
                path.reverse();
                return Some(path);
            }
            if s != EXIT && in_body(s) && !visited[s] && !polls[s] {
                visited[s] = true;
                parent[s] = Some(b);
                queue.push_back(s);
            }
        }
    }
    None
}

/// Renders a block path as `line → line → … → back to line`.
fn render_path(fn_cfg: &Cfg, path: &[usize]) -> String {
    let mut lines: Vec<u32> = Vec::new();
    for &b in path {
        let line = fn_cfg.blocks[b].line;
        if line != 0 && lines.last() != Some(&line) {
            lines.push(line);
        }
    }
    let head_line = lines.first().copied().unwrap_or(0);
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push_str(" → ");
        }
        out.push_str(&format!("L{line}"));
    }
    out.push_str(&format!(" → back to L{head_line}"));
    out
}

/// Is the code token at view position `k` a poll-shaped call?
fn is_poll(file: &SourceFile, code: &[usize], k: usize, entry_bare: &[&str]) -> bool {
    let Some(&i) = code.get(k) else { return false };
    let tok = &file.tokens[i];
    if tok.kind != TokenKind::Ident || text_at(file, code, k + 1) != "(" {
        return false;
    }
    let text = file.text_of(tok);
    if POLLS.contains(&text) || entry_bare.contains(&text) {
        return true;
    }
    // `.check(…)` — the `Budget` poll; require the receiver dot so a
    // free `check(…)` helper does not count.
    text == "check" && k > 0 && text_at(file, code, k - 1) == "."
}
