//! A lattice-generic worklist dataflow engine over [`crate::cfg::Cfg`]s.
//!
//! The engine is parameterized by a [`Domain`]: the domain supplies the
//! lattice (initial/boundary values, the join), the transfer function,
//! and optionally an edge refinement (sharpen a fact along a `True` or
//! `False` branch edge) and a widening operator (force convergence for
//! infinite-height lattices). [`solve_domain`] runs chaotic iteration
//! to a fixpoint over any domain; the classic gen/kill bitset analysis
//! — the original and still most common instance — is packaged as
//! [`GenKill`] + [`solve`].
//!
//! # Gen/kill transfer-function contract
//!
//! For the bitset instance every block's transfer function is
//!
//! ```text
//! out(b) = gen(b) ∪ (in(b) \ kill(b))
//! ```
//!
//! with `in(b)` the meet over the predecessors' `out` sets (successors'
//! for a backward analysis):
//!
//! * [`Meet::Union`] — *may* analysis: a fact holds at `b` if it holds
//!   on **some** path into `b`. The lattice bottom is ∅ and facts only
//!   grow, so initialization is all-zeros everywhere.
//! * [`Meet::Intersection`] — *must* analysis: a fact holds only if it
//!   holds on **every** path. Interior blocks initialize to ⊤ (all
//!   ones) and shrink; the entry (exit, when backward) initializes to
//!   the caller-provided boundary set.
//!
//! # Domain contract
//!
//! A [`Domain`] must make its transfer function **monotone** (a larger
//! in-fact never yields a smaller out-fact) and depend only on the
//! block's own tokens plus the in-fact, never on global iteration
//! state; that is what makes the fixpoint well-defined. Termination
//! requires either a finite-height lattice (bitsets) or a [`Domain::widen`]
//! that forces every chain to stabilize (the interval domain in
//! [`crate::interval`] widens repeatedly-growing bounds to ±∞). The
//! engine applies `widen` only after a block has been recomputed
//! [`WIDEN_AFTER`] times, so finite analyses keep their precision.
//!
//! The engine is deliberately small: no SSA, no demand structure.
//! Workspace functions have tens of blocks; a worklist converges in a
//! handful of sweeps and keeps the whole analyze run dependency-free.

use crate::cfg::{Cfg, EdgeKind, ENTRY, EXIT};

/// Recomputations of one block before [`Domain::widen`] engages.
pub const WIDEN_AFTER: u32 = 4;

/// An abstract-interpretation domain: the lattice, the transfer
/// function, and (optionally) branch-edge refinement and widening.
pub trait Domain {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;

    /// Direction of propagation.
    fn direction(&self) -> Direction;

    /// The join identity and interior-block initial value: ⊥ for a may
    /// analysis, ⊤ for a must analysis, "unreachable" for an
    /// environment domain.
    fn init(&self, cfg: &Cfg) -> Self::Fact;

    /// The fact seeding the entry block (forward) or exit block
    /// (backward).
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;

    /// `acc ⊔= other` (or ⊓ for a must analysis): combine one
    /// flow-predecessor's refined out-fact into the accumulator.
    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact);

    /// The block transfer function: the fact after executing `block`
    /// given the fact on entry to it.
    fn transfer(&self, cfg: &Cfg, block: usize, fact: &Self::Fact) -> Self::Fact;

    /// Sharpens a fact as it flows along the edge `from → (target)` of
    /// kind `kind` — the hook condition-aware domains use to learn from
    /// `True`/`False` branch edges. The default is the identity.
    fn refine_edge(&self, cfg: &Cfg, from: usize, kind: EdgeKind, fact: &Self::Fact) -> Self::Fact {
        let _ = (cfg, from, kind);
        fact.clone()
    }

    /// Accelerates convergence once a block has been recomputed
    /// [`WIDEN_AFTER`] times: must return a fact ≥ `new` such that
    /// repeated widening stabilizes. The default (return `new`) is
    /// correct for finite-height lattices.
    fn widen(&self, old: &Self::Fact, new: &Self::Fact) -> Self::Fact {
        let _ = old;
        new.clone()
    }
}

/// Direction of propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit along edges (in = meet over preds).
    Forward,
    /// Facts flow exit → entry against edges (in = meet over succs).
    Backward,
}

/// How flow facts combine at joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Meet {
    /// May analysis: union — reachable along *some* path.
    Union,
    /// Must analysis: intersection — holds along *every* path.
    Intersection,
}

/// A fixed-width bitset of dataflow facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over `len` facts.
    #[must_use]
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set (⊤) over `len` facts.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let bits = (s.len - i * 64).min(64);
            *w = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
        }
        s
    }

    /// Sets fact `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears fact `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Is fact `i` set?
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Any fact set at all?
    #[must_use]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the set facts in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self \= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

/// Per-block gen/kill sets for one analysis instance.
pub struct GenKill {
    /// Facts a block establishes (`gen`), one set per CFG block.
    pub gen: Vec<BitSet>,
    /// Facts a block destroys (`kill`), one set per CFG block.
    pub kill: Vec<BitSet>,
}

impl GenKill {
    /// All-empty gen/kill for `blocks` blocks over `facts` facts.
    #[must_use]
    pub fn new(blocks: usize, facts: usize) -> Self {
        GenKill {
            gen: vec![BitSet::empty(facts); blocks],
            kill: vec![BitSet::empty(facts); blocks],
        }
    }
}

/// The fixpoint solution: one in-fact and one out-fact per block. For a
/// backward analysis `in_` is the fact at block *exit* and `out` the
/// fact at block *entry* (facts flow against the edges); callers mostly
/// read whichever side faces their query.
pub struct Fixpoint<F> {
    /// Facts on entry to each block (meet over incoming edges).
    pub in_: Vec<F>,
    /// Facts on exit from each block (after the transfer function).
    pub out: Vec<F>,
}

/// The bitset fixpoint, the shape [`solve`] returns.
pub type Solution = Fixpoint<BitSet>;

/// Runs any [`Domain`] to fixpoint over `cfg` by chaotic iteration
/// with a dedup'd worklist; block count is small enough that O(n)
/// membership checks beat a visited bitmap in clarity and lose nothing
/// in practice.
#[must_use]
pub fn solve_domain<D: Domain>(cfg: &Cfg, dom: &D) -> Fixpoint<D::Fact> {
    let n = cfg.blocks.len();
    let boundary_block = match dom.direction() {
        Direction::Forward => ENTRY,
        Direction::Backward => EXIT,
    };
    let mut in_: Vec<D::Fact> = (0..n)
        .map(|b| {
            if b == boundary_block {
                dom.boundary(cfg)
            } else {
                dom.init(cfg)
            }
        })
        .collect();
    let mut out: Vec<D::Fact> = (0..n).map(|b| dom.transfer(cfg, b, &in_[b])).collect();
    let mut updates = vec![0u32; n];
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(b) = work.pop() {
        if b != boundary_block {
            // in(b) = join over flow-predecessors' out-facts, each
            // refined along its own edge (a block can reach `b` along
            // several edges of different kinds — a `True` and a `False`
            // edge of a degenerate branch both count).
            let mut acc = dom.init(cfg);
            match dom.direction() {
                Direction::Forward => {
                    let preds = &cfg.blocks[b].preds;
                    for (pi, &p) in preds.iter().enumerate() {
                        if preds[..pi].contains(&p) {
                            continue; // duplicate pred: edges handled below
                        }
                        for &(s, kind) in &cfg.blocks[p].succs {
                            if s == b {
                                let refined = dom.refine_edge(cfg, p, kind, &out[p]);
                                dom.join(&mut acc, &refined);
                            }
                        }
                    }
                }
                Direction::Backward => {
                    for &(s, kind) in &cfg.blocks[b].succs {
                        let refined = dom.refine_edge(cfg, b, kind, &out[s]);
                        dom.join(&mut acc, &refined);
                    }
                }
            }
            in_[b] = acc;
        }
        let mut o = dom.transfer(cfg, b, &in_[b]);
        if o != out[b] {
            updates[b] += 1;
            if updates[b] > WIDEN_AFTER {
                o = dom.widen(&out[b], &o);
                if o == out[b] {
                    continue;
                }
            }
            out[b] = o;
            let dependents: Vec<usize> = match dom.direction() {
                Direction::Forward => cfg.blocks[b].succs.iter().map(|&(s, _)| s).collect(),
                Direction::Backward => cfg.blocks[b].preds.clone(),
            };
            for d in dependents {
                if !work.contains(&d) {
                    work.push(d);
                }
            }
        }
    }
    Fixpoint { in_, out }
}

/// The gen/kill bitset analysis as a [`Domain`] instance: the original
/// engine's semantics, now one client of the generic solver.
struct GenKillDomain<'a> {
    gk: &'a GenKill,
    direction: Direction,
    meet: Meet,
    boundary: &'a BitSet,
}

impl Domain for GenKillDomain<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        self.direction
    }

    fn init(&self, _cfg: &Cfg) -> BitSet {
        match self.meet {
            Meet::Union => BitSet::empty(self.boundary.len),
            Meet::Intersection => BitSet::full(self.boundary.len),
        }
    }

    fn boundary(&self, _cfg: &Cfg) -> BitSet {
        self.boundary.clone()
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) {
        match self.meet {
            Meet::Union => {
                acc.union_with(other);
            }
            Meet::Intersection => {
                acc.intersect_with(other);
            }
        }
    }

    fn transfer(&self, _cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut o = self.gk.gen[block].clone();
        let mut pass_through = fact.clone();
        pass_through.subtract(&self.gk.kill[block]);
        o.union_with(&pass_through);
        o
    }
}

/// Runs gen/kill dataflow to fixpoint over `cfg`.
///
/// `boundary` seeds the entry block (forward) or exit block (backward).
/// See the module docs for the transfer-function contract.
#[must_use]
pub fn solve(
    cfg: &Cfg,
    gk: &GenKill,
    direction: Direction,
    meet: Meet,
    boundary: &BitSet,
) -> Solution {
    solve_domain(
        cfg,
        &GenKillDomain {
            gk,
            direction,
            meet,
            boundary,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::code_indices;
    use crate::source::SourceFile;

    fn cfg_of(src: &str) -> (Cfg, SourceFile, Vec<usize>) {
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        let cfgs = crate::cfg::build_all(&file, &code);
        assert_eq!(cfgs.len(), 1);
        (cfgs.into_iter().next().expect("cfg"), file, code)
    }

    fn block_of(cfg: &Cfg, file: &SourceFile, code: &[usize], needle: &str) -> usize {
        cfg.blocks
            .iter()
            .position(|b| {
                b.tokens
                    .iter()
                    .any(|&k| file.tokens[code[k]].text(&file.text) == needle)
            })
            .expect("needle block")
    }

    #[test]
    fn bitset_full_and_ops() {
        let mut a = BitSet::full(70);
        assert!(a.contains(0) && a.contains(69));
        assert_eq!(a.iter().count(), 70);
        a.remove(69);
        assert!(!a.contains(69));
        let mut b = BitSet::empty(70);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(a.contains(69));
        assert!(!a.union_with(&b)); // already present: no change
    }

    /// Forward may-reach: a fact gen'd before an `if` reaches the join
    /// through both arms.
    #[test]
    fn forward_union_reaches_join() {
        let src = "fn f() { seed; if c { t; } else { e; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let seed_b = block_of(&cfg, &file, &code, "seed");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[seed_b].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[after].contains(0));
    }

    /// Forward must-reach: a fact gen'd in only one `if` arm does NOT
    /// hold at the join under intersection, but one gen'd in both does.
    #[test]
    fn forward_intersection_requires_all_paths() {
        let src = "fn f() { if c { t; both; } else { e; both2; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let t = block_of(&cfg, &file, &code, "t");
        let e = block_of(&cfg, &file, &code, "e");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 2);
        gk.gen[t].insert(0); // fact 0: only then-arm
        gk.gen[t].insert(1); // fact 1: both arms
        gk.gen[e].insert(1);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Intersection,
            &BitSet::empty(2),
        );
        assert!(!sol.in_[after].contains(0));
        assert!(sol.in_[after].contains(1));
    }

    /// Kill stops propagation along that path only.
    #[test]
    fn kill_is_per_path() {
        let src = "fn f() { seed; if c { killer; } else { e; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let seed_b = block_of(&cfg, &file, &code, "seed");
        let killer = block_of(&cfg, &file, &code, "killer");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[seed_b].insert(0);
        gk.kill[killer].insert(0);
        // May: survives via the else path.
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[after].contains(0));
        // Must: the killed path breaks it.
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Intersection,
            &BitSet::empty(1),
        );
        assert!(!sol.in_[after].contains(0));
    }

    /// Facts circulate around a loop back edge to earlier blocks.
    #[test]
    fn loop_back_edge_propagates() {
        let src = "fn f() { loop { head_marker; if c { break; } late; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let head_b = block_of(&cfg, &file, &code, "head_marker");
        let late = block_of(&cfg, &file, &code, "late");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[late].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        // The fact gen'd late in the body flows around the back edge to
        // the body start.
        assert!(sol.in_[head_b].contains(0));
    }

    /// Backward liveness-style query: a fact gen'd at a use point is
    /// visible walking back to the definition.
    #[test]
    fn backward_union_flows_against_edges() {
        let src = "fn f() { def; if c { t; } use_site; }";
        let (cfg, file, code) = cfg_of(src);
        let def = block_of(&cfg, &file, &code, "def");
        let use_b = block_of(&cfg, &file, &code, "use_site");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[use_b].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Backward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[def].contains(0) || sol.out[def].contains(0));
    }

    // ---- lattice laws, checked against a naive set-model oracle ----

    /// Deterministic pseudo-random bitsets: a tiny xorshift so the law
    /// tests cover many shapes without depending on a RNG crate.
    fn sample_sets(len: usize, count: usize) -> Vec<BitSet> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut sets = Vec::with_capacity(count);
        for _ in 0..count {
            let mut s = BitSet::empty(len);
            for i in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state & 1 == 1 {
                    s.insert(i);
                }
            }
            sets.push(s);
        }
        sets
    }

    fn model(s: &BitSet) -> std::collections::BTreeSet<usize> {
        s.iter().collect()
    }

    fn subset(a: &BitSet, b: &BitSet) -> bool {
        a.iter().all(|i| b.contains(i))
    }

    /// Every BitSet op agrees with the naive set model.
    #[test]
    fn bitset_ops_match_set_model_oracle() {
        let sets = sample_sets(70, 8);
        for a in &sets {
            for b in &sets {
                let (ma, mb) = (model(a), model(b));
                let mut u = a.clone();
                u.union_with(b);
                assert_eq!(model(&u), ma.union(&mb).copied().collect());
                let mut i = a.clone();
                i.intersect_with(b);
                assert_eq!(model(&i), ma.intersection(&mb).copied().collect());
                let mut d = a.clone();
                d.subtract(b);
                assert_eq!(model(&d), ma.difference(&mb).copied().collect());
            }
        }
    }

    /// Join (∪) and meet (∩) are commutative, associative and
    /// idempotent — the semilattice laws the fixpoint relies on.
    #[test]
    fn bitset_join_meet_semilattice_laws() {
        let sets = sample_sets(70, 6);
        let join = |a: &BitSet, b: &BitSet| {
            let mut r = a.clone();
            r.union_with(b);
            r
        };
        let meet = |a: &BitSet, b: &BitSet| {
            let mut r = a.clone();
            r.intersect_with(b);
            r
        };
        for op in [&join as &dyn Fn(&BitSet, &BitSet) -> BitSet, &meet] {
            for a in &sets {
                assert_eq!(op(a, a), *a, "idempotence");
                for b in &sets {
                    assert_eq!(op(a, b), op(b, a), "commutativity");
                    for c in &sets {
                        assert_eq!(op(&op(a, b), c), op(a, &op(b, c)), "associativity");
                    }
                }
            }
        }
    }

    /// The gen/kill transfer is monotone: in₁ ⊆ in₂ ⇒ T(in₁) ⊆ T(in₂).
    #[test]
    fn genkill_transfer_is_monotone() {
        let (cfg, _file, _code) = cfg_of("fn f() { a; }");
        let sets = sample_sets(70, 6);
        let mut gk = GenKill::new(cfg.blocks.len(), 70);
        // An arbitrary but fixed gen/kill pair on every block.
        for b in 0..cfg.blocks.len() {
            gk.gen[b] = sets[0].clone();
            gk.kill[b] = sets[1].clone();
        }
        let dom = GenKillDomain {
            gk: &gk,
            direction: Direction::Forward,
            meet: Meet::Union,
            boundary: &BitSet::empty(70),
        };
        for a in &sets {
            for b in &sets {
                if !subset(a, b) {
                    continue;
                }
                let ta = dom.transfer(&cfg, ENTRY, a);
                let tb = dom.transfer(&cfg, ENTRY, b);
                assert!(subset(&ta, &tb), "transfer broke ⊆");
            }
        }
    }

    /// Boundary facts enter at the entry block in a forward analysis.
    #[test]
    fn boundary_seeds_entry() {
        let src = "fn f() { a; }";
        let (cfg, file, code) = cfg_of(src);
        let a = block_of(&cfg, &file, &code, "a");
        let gk = GenKill::new(cfg.blocks.len(), 1);
        let mut boundary = BitSet::empty(1);
        boundary.insert(0);
        let sol = solve(&cfg, &gk, Direction::Forward, Meet::Union, &boundary);
        assert!(sol.out[a].contains(0));
    }
}
