//! A generic worklist dataflow engine over [`crate::cfg::Cfg`]s.
//!
//! Facts are bits in a fixed-size bitset; a pass instantiates the
//! engine with per-block **gen** and **kill** sets and the engine
//! iterates transfer functions to a fixpoint.
//!
//! # Transfer-function contract
//!
//! Every block's transfer function is
//!
//! ```text
//! out(b) = gen(b) ∪ (in(b) \ kill(b))
//! ```
//!
//! with `in(b)` the meet over the predecessors' `out` sets (successors'
//! for a backward analysis):
//!
//! * [`Meet::Union`] — *may* analysis: a fact holds at `b` if it holds
//!   on **some** path into `b`. The lattice bottom is ∅ and facts only
//!   grow, so initialization is all-zeros everywhere.
//! * [`Meet::Intersection`] — *must* analysis: a fact holds only if it
//!   holds on **every** path. Interior blocks initialize to ⊤ (all
//!   ones) and shrink; the entry (exit, when backward) initializes to
//!   the caller-provided boundary set.
//!
//! Passes must ensure `gen` and `kill` are *path-independent* per
//! block — they may depend only on the block's own tokens, never on
//! the in-set — which is what makes the fixpoint well-defined and
//! guarantees termination: each block's out-set moves monotonically in
//! the lattice, and the lattice height is `facts` bits.
//!
//! The engine is deliberately small: no widening, no SSA, no demand
//! structure. Workspace functions have tens of blocks; a bitset
//! worklist converges in a handful of sweeps and keeps the whole
//! analyze run dependency-free.

use crate::cfg::{Cfg, ENTRY, EXIT};

/// Direction of propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit along edges (in = meet over preds).
    Forward,
    /// Facts flow exit → entry against edges (in = meet over succs).
    Backward,
}

/// How flow facts combine at joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Meet {
    /// May analysis: union — reachable along *some* path.
    Union,
    /// Must analysis: intersection — holds along *every* path.
    Intersection,
}

/// A fixed-width bitset of dataflow facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over `len` facts.
    #[must_use]
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set (⊤) over `len` facts.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let bits = (s.len - i * 64).min(64);
            *w = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
        }
        s
    }

    /// Sets fact `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears fact `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Is fact `i` set?
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Any fact set at all?
    #[must_use]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the set facts in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self \= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

/// Per-block gen/kill sets for one analysis instance.
pub struct GenKill {
    /// Facts a block establishes (`gen`), one set per CFG block.
    pub gen: Vec<BitSet>,
    /// Facts a block destroys (`kill`), one set per CFG block.
    pub kill: Vec<BitSet>,
}

impl GenKill {
    /// All-empty gen/kill for `blocks` blocks over `facts` facts.
    #[must_use]
    pub fn new(blocks: usize, facts: usize) -> Self {
        GenKill {
            gen: vec![BitSet::empty(facts); blocks],
            kill: vec![BitSet::empty(facts); blocks],
        }
    }
}

/// The fixpoint solution: one in-set and one out-set per block. For a
/// backward analysis `in_` is the set at block *exit* and `out` the set
/// at block *entry* (facts flow against the edges); callers mostly read
/// whichever side faces their query.
pub struct Solution {
    /// Facts on entry to each block (meet over incoming edges).
    pub in_: Vec<BitSet>,
    /// Facts on exit from each block (after the transfer function).
    pub out: Vec<BitSet>,
}

/// Runs gen/kill dataflow to fixpoint over `cfg`.
///
/// `boundary` seeds the entry block (forward) or exit block (backward).
/// See the module docs for the transfer-function contract.
#[must_use]
pub fn solve(
    cfg: &Cfg,
    gk: &GenKill,
    direction: Direction,
    meet: Meet,
    boundary: &BitSet,
) -> Solution {
    let n = cfg.blocks.len();
    let facts = boundary.len;
    let boundary_block = match direction {
        Direction::Forward => ENTRY,
        Direction::Backward => EXIT,
    };
    let mut in_: Vec<BitSet> = Vec::with_capacity(n);
    let mut out: Vec<BitSet> = Vec::with_capacity(n);
    for b in 0..n {
        let init_in = if b == boundary_block {
            boundary.clone()
        } else {
            match meet {
                Meet::Union => BitSet::empty(facts),
                Meet::Intersection => BitSet::full(facts),
            }
        };
        let mut o = gk.gen[b].clone();
        let mut pass_through = init_in.clone();
        pass_through.subtract(&gk.kill[b]);
        o.union_with(&pass_through);
        in_.push(init_in);
        out.push(o);
    }

    // Chaotic iteration with a dedup'd worklist; block count is small
    // enough that O(n) membership checks beat a visited bitmap in
    // clarity and lose nothing in practice.
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(b) = work.pop() {
        if b != boundary_block {
            // in(b) = meet over flow-predecessors' out.
            let sources: Vec<usize> = match direction {
                Direction::Forward => cfg.blocks[b].preds.clone(),
                Direction::Backward => cfg.blocks[b].succs.iter().map(|&(s, _)| s).collect(),
            };
            let mut acc = match meet {
                Meet::Union => BitSet::empty(facts),
                Meet::Intersection => {
                    if sources.is_empty() {
                        BitSet::full(facts)
                    } else {
                        out[sources[0]].clone()
                    }
                }
            };
            match meet {
                Meet::Union => {
                    for &s in &sources {
                        acc.union_with(&out[s]);
                    }
                }
                Meet::Intersection => {
                    for &s in &sources[1.min(sources.len())..] {
                        acc.intersect_with(&out[s]);
                    }
                }
            }
            in_[b] = acc;
        }
        let mut o = gk.gen[b].clone();
        let mut pass_through = in_[b].clone();
        pass_through.subtract(&gk.kill[b]);
        o.union_with(&pass_through);
        if o != out[b] {
            out[b] = o;
            let dependents: Vec<usize> = match direction {
                Direction::Forward => cfg.blocks[b].succs.iter().map(|&(s, _)| s).collect(),
                Direction::Backward => cfg.blocks[b].preds.clone(),
            };
            for d in dependents {
                if !work.contains(&d) {
                    work.push(d);
                }
            }
        }
    }
    Solution { in_, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::code_indices;
    use crate::source::SourceFile;

    fn cfg_of(src: &str) -> (Cfg, SourceFile, Vec<usize>) {
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        let cfgs = crate::cfg::build_all(&file, &code);
        assert_eq!(cfgs.len(), 1);
        (cfgs.into_iter().next().expect("cfg"), file, code)
    }

    fn block_of(cfg: &Cfg, file: &SourceFile, code: &[usize], needle: &str) -> usize {
        cfg.blocks
            .iter()
            .position(|b| {
                b.tokens
                    .iter()
                    .any(|&k| file.tokens[code[k]].text(&file.text) == needle)
            })
            .expect("needle block")
    }

    #[test]
    fn bitset_full_and_ops() {
        let mut a = BitSet::full(70);
        assert!(a.contains(0) && a.contains(69));
        assert_eq!(a.iter().count(), 70);
        a.remove(69);
        assert!(!a.contains(69));
        let mut b = BitSet::empty(70);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(a.contains(69));
        assert!(!a.union_with(&b)); // already present: no change
    }

    /// Forward may-reach: a fact gen'd before an `if` reaches the join
    /// through both arms.
    #[test]
    fn forward_union_reaches_join() {
        let src = "fn f() { seed; if c { t; } else { e; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let seed_b = block_of(&cfg, &file, &code, "seed");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[seed_b].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[after].contains(0));
    }

    /// Forward must-reach: a fact gen'd in only one `if` arm does NOT
    /// hold at the join under intersection, but one gen'd in both does.
    #[test]
    fn forward_intersection_requires_all_paths() {
        let src = "fn f() { if c { t; both; } else { e; both2; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let t = block_of(&cfg, &file, &code, "t");
        let e = block_of(&cfg, &file, &code, "e");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 2);
        gk.gen[t].insert(0); // fact 0: only then-arm
        gk.gen[t].insert(1); // fact 1: both arms
        gk.gen[e].insert(1);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Intersection,
            &BitSet::empty(2),
        );
        assert!(!sol.in_[after].contains(0));
        assert!(sol.in_[after].contains(1));
    }

    /// Kill stops propagation along that path only.
    #[test]
    fn kill_is_per_path() {
        let src = "fn f() { seed; if c { killer; } else { e; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let seed_b = block_of(&cfg, &file, &code, "seed");
        let killer = block_of(&cfg, &file, &code, "killer");
        let after = block_of(&cfg, &file, &code, "after");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[seed_b].insert(0);
        gk.kill[killer].insert(0);
        // May: survives via the else path.
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[after].contains(0));
        // Must: the killed path breaks it.
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Intersection,
            &BitSet::empty(1),
        );
        assert!(!sol.in_[after].contains(0));
    }

    /// Facts circulate around a loop back edge to earlier blocks.
    #[test]
    fn loop_back_edge_propagates() {
        let src = "fn f() { loop { head_marker; if c { break; } late; } after; }";
        let (cfg, file, code) = cfg_of(src);
        let head_b = block_of(&cfg, &file, &code, "head_marker");
        let late = block_of(&cfg, &file, &code, "late");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[late].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Forward,
            Meet::Union,
            &BitSet::empty(1),
        );
        // The fact gen'd late in the body flows around the back edge to
        // the body start.
        assert!(sol.in_[head_b].contains(0));
    }

    /// Backward liveness-style query: a fact gen'd at a use point is
    /// visible walking back to the definition.
    #[test]
    fn backward_union_flows_against_edges() {
        let src = "fn f() { def; if c { t; } use_site; }";
        let (cfg, file, code) = cfg_of(src);
        let def = block_of(&cfg, &file, &code, "def");
        let use_b = block_of(&cfg, &file, &code, "use_site");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[use_b].insert(0);
        let sol = solve(
            &cfg,
            &gk,
            Direction::Backward,
            Meet::Union,
            &BitSet::empty(1),
        );
        assert!(sol.in_[def].contains(0) || sol.out[def].contains(0));
    }

    /// Boundary facts enter at the entry block in a forward analysis.
    #[test]
    fn boundary_seeds_entry() {
        let src = "fn f() { a; }";
        let (cfg, file, code) = cfg_of(src);
        let a = block_of(&cfg, &file, &code, "a");
        let gk = GenKill::new(cfg.blocks.len(), 1);
        let mut boundary = BitSet::empty(1);
        boundary.insert(0);
        let sol = solve(&cfg, &gk, Direction::Forward, Meet::Union, &boundary);
        assert!(sol.out[a].contains(0));
    }
}
