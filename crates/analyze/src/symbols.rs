//! Symbol table and name resolution: the half of the call-graph layer
//! that knows *what can be called*.
//!
//! [`SymbolTable::build`] walks every non-test source file and records a
//! [`FnDef`] per function the scope tracker attributed tokens to, plus
//! per-crate type-name sets and the manifest-derived dependency closure.
//! [`parse_imports`] recovers each file's `use` map (grouped imports,
//! `as` renames, glob counting), and [`SymbolTable::resolve`] classifies
//! a call site into one of four [`Resolution`]s:
//!
//! * **Resolved** — the precise workspace definition(s) are known;
//! * **External** — no workspace definition can be the target (std,
//!   derive-generated, tuple/variant constructors);
//! * **Ambiguous** — several workspace definitions share the name; the
//!   graph keeps a conservative edge to *every* candidate, but the site
//!   counts against the resolution rate;
//! * **Unknown** — a bare call through a closure or function-pointer
//!   parameter; nothing lexical identifies the target.
//!
//! Method calls resolve by receiver-name heuristics: `self.m(…)` uses
//! the enclosing impl type, other receivers fall back to same-crate
//! definitions named `m`, then a shadow list of ubiquitous std method
//! names, then the caller crate's dependency closure. The rules are
//! deliberately over-approximate — a `Vec::pop` may pick up an edge to
//! a workspace `Heap::pop` — because the passes built on the graph
//! (transitive hot-path discipline) only ever get *stricter* from an
//! extra edge, never unsound.

use std::collections::{HashMap, HashSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// One function definition discovered in the workspace.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Owning package name (e.g. `hqs-sat`).
    pub crate_name: String,
    /// Qualified symbol as the tracker reports it (`Type::fn` or `fn`).
    pub symbol: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Line of the first token attributed to the fn body.
    pub line: u32,
}

impl FnDef {
    /// The unqualified function name (`pop` for `Heap::pop`).
    #[must_use]
    pub fn bare_name(&self) -> &str {
        self.symbol.rsplit("::").next().unwrap_or(&self.symbol)
    }

    /// The impl type prefix, if the def is a method (`Heap` for
    /// `Heap::pop`).
    #[must_use]
    pub fn type_prefix(&self) -> Option<&str> {
        self.symbol.split_once("::").map(|(t, _)| t)
    }
}

/// Why a call site has no workspace target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExternalKind {
    /// std/core or another non-workspace crate.
    Std,
    /// A tuple-struct or enum-variant constructor (`Some(…)`,
    /// `Outcome::Sat(…)`).
    Constructor,
    /// A workspace type's derive-generated or trait-provided method
    /// (`X::default()`, `X::from(…)`) with no explicit definition.
    Derived,
}

/// The outcome of resolving one call site.
#[derive(Clone, Debug)]
pub enum Resolution {
    /// The target definition(s); almost always one, more only when the
    /// same free-fn name is defined in several modules of one crate.
    Resolved(Vec<usize>),
    /// No workspace definition can be the target.
    External(ExternalKind),
    /// Several workspace candidates; edges go to all of them.
    Ambiguous(Vec<usize>),
    /// Call to a closure bound (`let f = |…|`) or `fn` nested in the
    /// same file: no `FnDef` node exists, but
    /// the target is lexically exact, so the site counts as precisely
    /// resolved rather than as guesswork.
    LocalClosure,
    /// Closure or function-pointer call — lexically untargetable.
    Unknown,
}

/// The lexical shape of a call site.
#[derive(Clone, Debug)]
pub enum CallKind {
    /// `f(…)` with no qualifier or receiver.
    Free(String),
    /// `self.m(…)`.
    SelfMethod(String),
    /// `expr.m(…)` with a non-`self` receiver.
    Method(String),
    /// `A::B::m(…)` — qualifiers (outermost first) plus the callee.
    Path(Vec<String>, String),
    /// A path containing turbofish/generics the scanner does not model
    /// (`Vec::<u8>::with_capacity`); treated as external std.
    PathComplex,
}

/// One scanned call site with its resolution.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// File of the call.
    pub path: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// Crate the caller lives in.
    pub caller_crate: String,
    /// Enclosing function of the call.
    pub caller_symbol: String,
    /// Lexical shape.
    pub kind: CallKind,
    /// Resolution outcome.
    pub resolution: Resolution,
}

/// Std method names so common that an unqualified `.m(…)` on a
/// non-`self` receiver is assumed external *unless* the caller's own
/// crate defines a method of that name. Keeps `v.len()` from edging to
/// some other crate's `Clause::len` while still letting a same-crate
/// `self.heap.pop()` reach `Heap::pop`.
const STD_SHADOW: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "extend",
    "clear",
    "drain",
    "swap",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "retain",
    "last",
    "first",
    "take",
    "replace",
    "min",
    "max",
    "rev",
    "map",
    "filter",
    "fold",
    "sum",
    "count",
    "chain",
    "zip",
    "enumerate",
    "collect",
    "clone",
    "to_vec",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "abs",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "entry",
    "or_insert",
    "or_insert_with",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "find",
    "position",
    "any",
    "all",
    "join",
    "push_str",
    "write",
    "write_all",
    "flush",
    "lock",
    "send",
    "recv",
    "spawn",
    "elapsed",
    "resize",
    "fill",
    "copied",
    "cloned",
    "truncate",
    "reserve",
    "rotate_left",
    "keys",
    "values",
    "then",
    "then_some",
    "and_then",
    "map_or",
    "map_err",
    "ok",
    "err",
    "expect",
    "unwrap",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "min_by_key",
    "max_by_key",
    "binary_search",
    "windows",
    "chunks",
    "swap_remove",
    "split_off",
    "append",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
];

/// Identifiers that can never be a callee.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "as", "in",
    "move", "ref", "mut", "box", "dyn", "impl", "where", "unsafe", "let", "fn", "pub", "use",
    "mod", "struct", "enum", "trait", "union", "type", "const", "static", "async", "await",
    "yield", "self", "super", "crate",
];

/// A resolved `use` entry: the original (pre-rename) item name and the
/// workspace crate it came from, `None` when the path root is external.
#[derive(Clone, Debug)]
pub struct ImportTarget {
    /// `Some("hqs-base")` for workspace paths, `None` for std etc.
    pub krate: Option<String>,
    /// The item's original name (last path segment before any `as`).
    pub name: String,
}

/// One file's `use` map.
#[derive(Clone, Debug, Default)]
pub struct Imports {
    /// In-scope alias → target.
    pub map: HashMap<String, ImportTarget>,
    /// Number of glob imports (`use foo::*`) — unresolvable, counted
    /// for the conservatism report.
    pub globs: usize,
}

/// The workspace symbol table.
pub struct SymbolTable {
    /// Every discovered function definition.
    pub defs: Vec<FnDef>,
    by_key: HashMap<(String, String), Vec<usize>>,
    methods: HashMap<String, Vec<usize>>,
    types: HashMap<String, HashSet<String>>,
    dep_closure: HashMap<String, HashSet<String>>,
    crate_names: HashSet<String>,
}

impl SymbolTable {
    /// Builds the table from every non-test file in the workspace.
    #[must_use]
    pub fn build(ws: &Workspace) -> Self {
        let mut table = SymbolTable {
            defs: Vec::new(),
            by_key: HashMap::new(),
            methods: HashMap::new(),
            types: HashMap::new(),
            dep_closure: HashMap::new(),
            crate_names: ws.crates.iter().map(|c| c.name.clone()).collect(),
        };
        table.build_dep_closure(ws);
        for file in &ws.files {
            if crate::passes::is_test_path(&file.path) {
                continue;
            }
            table.collect_defs(file);
            table.collect_types(file);
        }
        table
    }

    fn build_dep_closure(&mut self, ws: &Workspace) {
        for c in &ws.crates {
            let mut seen: HashSet<String> = HashSet::new();
            let mut stack = vec![c.name.clone()];
            while let Some(cur) = stack.pop() {
                if !seen.insert(cur.clone()) {
                    continue;
                }
                if let Some(info) = ws.crate_named(&cur) {
                    for dep in &info.manifest.deps {
                        if self.crate_names.contains(dep) {
                            stack.push(dep.clone());
                        }
                    }
                }
            }
            self.dep_closure.insert(c.name.clone(), seen);
        }
    }

    fn collect_defs(&mut self, file: &SourceFile) {
        let mut seen: HashSet<String> = HashSet::new();
        let mut prev_fn = String::new();
        for (i, tok) in file.tokens.iter().enumerate() {
            if tok.is_trivia() {
                continue;
            }
            let ctx = &file.ctx[i];
            if ctx.in_fn == prev_fn {
                continue;
            }
            prev_fn = ctx.in_fn.clone();
            if ctx.in_fn.is_empty() || ctx.in_test || !seen.insert(ctx.in_fn.clone()) {
                continue;
            }
            let id = self.defs.len();
            self.defs.push(FnDef {
                crate_name: file.crate_name.clone(),
                symbol: ctx.in_fn.clone(),
                path: file.path.clone(),
                line: tok.line,
            });
            self.by_key
                .entry((file.crate_name.clone(), ctx.in_fn.clone()))
                .or_default()
                .push(id);
            let bare = self.defs[id].bare_name().to_string();
            if self.defs[id].type_prefix().is_some() {
                self.methods.entry(bare).or_default().push(id);
            }
            if let Some(ty) = self.defs[id].type_prefix() {
                self.types
                    .entry(file.crate_name.clone())
                    .or_default()
                    .insert(ty.to_string());
            }
        }
    }

    fn collect_types(&mut self, file: &SourceFile) {
        let code = crate::passes::code_indices(file);
        for (k, &i) in code.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident
                || !matches!(file.text_of(tok), "struct" | "enum" | "trait" | "union")
                || file.ctx[i].in_attr
            {
                continue;
            }
            if let Some(&j) = code.get(k + 1) {
                let name = &file.tokens[j];
                if name.kind == TokenKind::Ident {
                    self.types
                        .entry(file.crate_name.clone())
                        .or_default()
                        .insert(file.text_of(name).to_string());
                }
            }
        }
    }

    /// Definition ids for `(crate, symbol)`.
    #[must_use]
    pub fn lookup(&self, krate: &str, symbol: &str) -> &[usize] {
        self.by_key
            .get(&(krate.to_string(), symbol.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// The crates visible from `krate` (itself plus transitive deps).
    #[must_use]
    pub fn visible_from(&self, krate: &str) -> HashSet<String> {
        self.dep_closure.get(krate).cloned().unwrap_or_default()
    }

    /// Is `name` a type declared anywhere in the crates of `scope`?
    fn is_known_type(&self, scope: &HashSet<String>, name: &str) -> bool {
        scope
            .iter()
            .any(|c| self.types.get(c).is_some_and(|t| t.contains(name)))
    }

    fn methods_in(&self, krate: &str, name: &str) -> Vec<usize> {
        self.methods.get(name).map_or_else(Vec::new, |ids| {
            ids.iter()
                .filter(|&&id| self.defs[id].crate_name == krate)
                .copied()
                .collect()
        })
    }

    fn methods_in_deps(&self, krate: &str, name: &str) -> Vec<usize> {
        let scope = self.visible_from(krate);
        self.methods.get(name).map_or_else(Vec::new, |ids| {
            ids.iter()
                .filter(|&&id| {
                    let c = &self.defs[id].crate_name;
                    c != krate && scope.contains(c)
                })
                .copied()
                .collect()
        })
    }

    /// Maps a snake_case path root (`hqs_base`) to a workspace crate
    /// name (`hqs-base`), if it is one.
    fn crate_from_root(&self, root: &str) -> Option<String> {
        let dashed = root.replace('_', "-");
        self.crate_names.contains(&dashed).then_some(dashed)
    }

    /// Resolves one call site.
    #[must_use]
    pub fn resolve(
        &self,
        krate: &str,
        caller_symbol: &str,
        imports: &Imports,
        kind: &CallKind,
    ) -> Resolution {
        match kind {
            CallKind::Free(name) => self.resolve_free(krate, imports, name),
            CallKind::SelfMethod(name) => {
                if let Some((ty, _)) = caller_symbol.split_once("::") {
                    let hits = self.lookup(krate, &format!("{ty}::{name}"));
                    if !hits.is_empty() {
                        return Resolution::Resolved(hits.to_vec());
                    }
                }
                self.resolve_method(krate, name)
            }
            CallKind::Method(name) => self.resolve_method(krate, name),
            CallKind::Path(quals, name) => {
                self.resolve_path(krate, caller_symbol, imports, quals, name)
            }
            CallKind::PathComplex => Resolution::External(ExternalKind::Std),
        }
    }

    fn resolve_free(&self, krate: &str, imports: &Imports, name: &str) -> Resolution {
        let local = self.lookup(krate, name);
        if !local.is_empty() {
            return Resolution::Resolved(local.to_vec());
        }
        if let Some(target) = imports.map.get(name) {
            return match &target.krate {
                None => Resolution::External(ExternalKind::Std),
                Some(k) => {
                    if is_uppercase(&target.name) {
                        Resolution::External(ExternalKind::Constructor)
                    } else {
                        let hits = self.lookup(k, &target.name);
                        if hits.is_empty() {
                            Resolution::External(ExternalKind::Std)
                        } else {
                            Resolution::Resolved(hits.to_vec())
                        }
                    }
                }
            };
        }
        if is_uppercase(name) {
            return Resolution::External(ExternalKind::Constructor);
        }
        if name == "drop" {
            return Resolution::External(ExternalKind::Std);
        }
        Resolution::Unknown
    }

    fn resolve_method(&self, krate: &str, name: &str) -> Resolution {
        let same = self.methods_in(krate, name);
        match same.len() {
            1 => return Resolution::Resolved(same),
            n if n > 1 => return Resolution::Ambiguous(same),
            _ => {}
        }
        if STD_SHADOW.contains(&name) {
            return Resolution::External(ExternalKind::Std);
        }
        let deps = self.methods_in_deps(krate, name);
        match deps.len() {
            0 => Resolution::External(ExternalKind::Std),
            1 => Resolution::Resolved(deps),
            _ => Resolution::Ambiguous(deps),
        }
    }

    fn resolve_path(
        &self,
        krate: &str,
        caller_symbol: &str,
        imports: &Imports,
        quals: &[String],
        name: &str,
    ) -> Resolution {
        let root = quals[0].as_str();
        if root == "Self" {
            if let Some((ty, _)) = caller_symbol.split_once("::") {
                let hits = self.lookup(krate, &format!("{ty}::{name}"));
                if !hits.is_empty() {
                    return Resolution::Resolved(hits.to_vec());
                }
            }
            return Resolution::External(ExternalKind::Derived);
        }
        // Work out the target crate and the qualifiers within it.
        let (target, rest): (Option<String>, Vec<String>) =
            if matches!(root, "crate" | "self" | "super") {
                let rest = quals
                    .iter()
                    .skip_while(|q| matches!(q.as_str(), "crate" | "self" | "super"))
                    .cloned()
                    .collect();
                (Some(krate.to_string()), rest)
            } else if let Some(k) = self.crate_from_root(root) {
                (Some(k), quals[1..].to_vec())
            } else if let Some(t) = imports.map.get(root) {
                match &t.krate {
                    None => return Resolution::External(ExternalKind::Std),
                    Some(k) => {
                        let mut rest = vec![t.name.clone()];
                        rest.extend(quals[1..].iter().cloned());
                        (Some(k.clone()), rest)
                    }
                }
            } else if matches!(root, "std" | "core" | "alloc") {
                return Resolution::External(ExternalKind::Std);
            } else {
                (None, quals.to_vec())
            };

        if let Some(target) = target {
            return self.resolve_in_crate(&target, &rest, name);
        }
        // Unqualified `A::m` / `a::m` relative to the caller crate.
        match rest.last() {
            Some(last) if is_uppercase(last) => {
                if is_uppercase(name) {
                    return Resolution::External(ExternalKind::Constructor);
                }
                let local = self.lookup(krate, &format!("{last}::{name}"));
                if !local.is_empty() {
                    return Resolution::Resolved(local.to_vec());
                }
                let scope = self.visible_from(krate);
                let mut hits: Vec<usize> = Vec::new();
                for c in &scope {
                    if c != krate {
                        hits.extend_from_slice(self.lookup(c, &format!("{last}::{name}")));
                    }
                }
                match hits.len() {
                    1 => Resolution::Resolved(hits),
                    n if n > 1 => Resolution::Ambiguous(hits),
                    _ if self.is_known_type(&scope, last) => {
                        Resolution::External(ExternalKind::Derived)
                    }
                    _ => Resolution::External(ExternalKind::Std),
                }
            }
            // Module-qualified free call (`jsonl::write(…)`).
            _ => {
                let hits = self.lookup(krate, name);
                if hits.is_empty() {
                    Resolution::External(ExternalKind::Std)
                } else {
                    Resolution::Resolved(hits.to_vec())
                }
            }
        }
    }

    /// Resolves `rest…::name(…)` inside a known workspace crate.
    fn resolve_in_crate(&self, krate: &str, rest: &[String], name: &str) -> Resolution {
        match rest.last() {
            Some(last) if is_uppercase(last) => {
                let hits = self.lookup(krate, &format!("{last}::{name}"));
                if !hits.is_empty() {
                    Resolution::Resolved(hits.to_vec())
                } else if is_uppercase(name) {
                    Resolution::External(ExternalKind::Constructor)
                } else {
                    Resolution::External(ExternalKind::Derived)
                }
            }
            _ => {
                if is_uppercase(name) {
                    return Resolution::External(ExternalKind::Constructor);
                }
                let hits = self.lookup(krate, name);
                if hits.is_empty() {
                    Resolution::External(ExternalKind::Derived)
                } else {
                    Resolution::Resolved(hits.to_vec())
                }
            }
        }
    }
}

fn is_uppercase(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Parses every `use` declaration in the file into an [`Imports`] map.
#[must_use]
pub fn parse_imports(file: &SourceFile, table: &SymbolTable) -> Imports {
    let code = crate::passes::code_indices(file);
    let texts: Vec<&str> = code
        .iter()
        .map(|&i| file.tokens[i].text(&file.text))
        .collect();
    let mut imports = Imports::default();
    let mut k = 0;
    while k < texts.len() {
        if texts[k] == "use" && !file.ctx[code[k]].in_attr {
            // Collect tokens up to the terminating `;`.
            let start = k + 1;
            let mut end = start;
            while end < texts.len() && texts[end] != ";" {
                end += 1;
            }
            let toks = &texts[start..end];
            let mut pos = 0;
            let mut prefix: Vec<String> = Vec::new();
            parse_use_tree(
                toks,
                &mut pos,
                &mut prefix,
                &mut imports,
                &file.crate_name,
                table,
            );
            k = end;
        }
        k += 1;
    }
    imports
}

/// Recursive descent over one `use` tree (`a::b::{c, d as e, f::*}`).
fn parse_use_tree(
    toks: &[&str],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    imports: &mut Imports,
    krate: &str,
    table: &SymbolTable,
) {
    let depth = prefix.len();
    loop {
        match toks.get(*pos).copied() {
            Some("{") => {
                *pos += 1;
                loop {
                    match toks.get(*pos).copied() {
                        Some("}") | None => {
                            *pos += 1;
                            break;
                        }
                        Some(",") => *pos += 1,
                        Some(_) => {
                            parse_use_tree(toks, pos, prefix, imports, krate, table);
                        }
                    }
                }
                prefix.truncate(depth);
                return;
            }
            Some("*") => {
                imports.globs += 1;
                *pos += 1;
                prefix.truncate(depth);
                return;
            }
            Some(seg) if is_ident_like(seg) => {
                prefix.push(seg.to_string());
                *pos += 1;
                if toks.get(*pos).copied() == Some(":") && toks.get(*pos + 1).copied() == Some(":")
                {
                    *pos += 2;
                    continue;
                }
                // Terminal segment; check for `as` rename.
                let mut alias = seg.to_string();
                if toks.get(*pos).copied() == Some("as") {
                    if let Some(renamed) = toks.get(*pos + 1) {
                        alias = (*renamed).to_string();
                        *pos += 2;
                    }
                }
                record_import(&alias, prefix, imports, krate, table);
                prefix.truncate(depth);
                return;
            }
            _ => {
                // `::` at the path start, stray punctuation: skip it.
                *pos += 1;
                if *pos > toks.len() {
                    return;
                }
                if toks.get(*pos).is_none() {
                    prefix.truncate(depth);
                    return;
                }
            }
        }
    }
}

fn record_import(
    alias: &str,
    path: &[String],
    imports: &mut Imports,
    krate: &str,
    table: &SymbolTable,
) {
    let Some(root) = path.first() else { return };
    let name = path.last().cloned().unwrap_or_default();
    let target_crate = if matches!(root.as_str(), "crate" | "self" | "super") {
        Some(krate.to_string())
    } else {
        table.crate_from_root(root)
    };
    imports.map.insert(
        alias.to_string(),
        ImportTarget {
            krate: target_crate,
            name,
        },
    );
}

fn is_ident_like(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// Scans one file for call sites and resolves each against the table.
#[must_use]
pub fn scan_calls(file: &SourceFile, table: &SymbolTable, imports: &Imports) -> Vec<CallSite> {
    let code = crate::passes::code_indices(file);
    let texts: Vec<&str> = code
        .iter()
        .map(|&i| file.tokens[i].text(&file.text))
        .collect();
    let at = |k: usize| -> &str { texts.get(k).copied().unwrap_or("") };
    let locals = local_callables(&texts);
    let mut sites = Vec::new();
    for k in 0..code.len() {
        let i = code[k];
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = texts[k];
        if KEYWORDS.contains(&text) || text == "Self" {
            continue;
        }
        let ctx = &file.ctx[i];
        if ctx.in_fn.is_empty() || ctx.in_test || ctx.in_attr {
            continue;
        }
        // Forward: require `(`, possibly through a turbofish. A `::`
        // followed by an identifier means this token is a qualifier —
        // the callee will be visited at its own position.
        let mut j = k + 1;
        if at(j) == "!" {
            continue; // macro invocation
        }
        if at(j) == ":" && at(j + 1) == ":" {
            if at(j + 2) != "<" {
                continue;
            }
            let Some(after) = skip_generics(&texts, j + 2) else {
                continue;
            };
            j = after;
        }
        if at(j) != "(" {
            continue;
        }
        // Backward: classify the shape.
        let prev = if k > 0 { texts[k - 1] } else { "" };
        if prev == "fn" {
            continue; // definition or fn-pointer type, not a call
        }
        let kind = if prev == "." {
            let recv = if k >= 2 { texts[k - 2] } else { "" };
            let recv_prev = if k >= 3 { texts[k - 3] } else { "" };
            if recv == "self" && recv_prev != "." {
                CallKind::SelfMethod(text.to_string())
            } else {
                CallKind::Method(text.to_string())
            }
        } else if prev == ":" && k >= 2 && texts[k - 2] == ":" {
            match collect_path_back(file, &code, &texts, k) {
                Some(quals) => CallKind::Path(quals, text.to_string()),
                None => CallKind::PathComplex,
            }
        } else {
            CallKind::Free(text.to_string())
        };
        let mut resolution = table.resolve(&file.crate_name, &ctx.in_fn, imports, &kind);
        // A bare call the table cannot target is still exact when the
        // file itself binds the name as a closure or nested fn.
        if matches!(resolution, Resolution::Unknown)
            && matches!(&kind, CallKind::Free(n) if locals.contains(&n.as_str()))
        {
            resolution = Resolution::LocalClosure;
        }
        sites.push(CallSite {
            path: file.path.clone(),
            line: tok.line,
            caller_crate: file.crate_name.clone(),
            caller_symbol: ctx.in_fn.clone(),
            kind,
            resolution,
        });
    }
    sites
}

/// Names a file binds as callables with no [`FnDef`]: closures
/// (`name = |…|`, `name = move |…|`) and `fn` items (nested fns are
/// not in the symbol table; top-level ones resolve earlier anyway, so
/// over-collecting them is harmless — the set is only consulted for
/// sites the table already failed to target).
fn local_callables<'a>(texts: &[&'a str]) -> std::collections::HashSet<&'a str> {
    let mut names = std::collections::HashSet::new();
    for w in texts.windows(3) {
        if w[0] == "fn" {
            names.insert(w[1]);
        } else if w[1] == "=" && (w[2] == "|" || w[2] == "move") {
            names.insert(w[0]);
        }
    }
    names
}

/// Skips a balanced `<…>` starting at `open` (which must be `<`);
/// returns the position after the closing `>`. `>` preceded by `-` is
/// an arrow inside a fn-pointer type, not a closer.
fn skip_generics(texts: &[&str], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while k < texts.len() {
        match texts[k] {
            "<" => depth += 1,
            ">" if k > 0 && texts[k - 1] == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
        k += 1;
        if k - open > 64 {
            return None; // degenerate; give up rather than scan the file
        }
    }
    None
}

/// Collects the `::`-separated qualifiers before the callee at view
/// position `k`, outermost first. Returns `None` when the path carries
/// generics the scanner does not model.
fn collect_path_back(
    file: &SourceFile,
    code: &[usize],
    texts: &[&str],
    k: usize,
) -> Option<Vec<String>> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = k;
    while j >= 3 && texts[j - 1] == ":" && texts[j - 2] == ":" {
        let p = j - 3;
        if texts[p] == ">" {
            return None; // `Vec::<u8>::new` and friends
        }
        let tok = &file.tokens[code[p]];
        if tok.kind != TokenKind::Ident {
            break;
        }
        segs.push(texts[p].to_string());
        j = p;
    }
    segs.reverse();
    if segs.is_empty() {
        None
    } else {
        Some(segs)
    }
}

/// Conservative-construct counts for one file: constructs the graph
/// cannot see through.
#[derive(Clone, Copy, Debug, Default)]
pub struct Conservative {
    /// Closure literals (heuristic: `|` after `(`/`,`/`=`/`=>` or
    /// after `move`).
    pub closures: usize,
    /// `dyn Trait` sites (dynamic dispatch).
    pub dyn_sites: usize,
    /// `fn(…)` pointer types.
    pub fn_ptr_types: usize,
}

/// Counts conservative constructs in one file.
#[must_use]
pub fn count_conservative(file: &SourceFile) -> Conservative {
    let code = crate::passes::code_indices(file);
    let texts: Vec<&str> = code
        .iter()
        .map(|&i| file.tokens[i].text(&file.text))
        .collect();
    let mut c = Conservative::default();
    for k in 0..texts.len() {
        match texts[k] {
            "|" => {
                let prev = if k > 0 { texts[k - 1] } else { "" };
                if matches!(prev, "(" | "," | "=" | ">" | "move") {
                    c.closures += 1;
                }
            }
            "dyn" => c.dyn_sites += 1,
            "fn" if texts.get(k + 1).copied() == Some("(") => c.fn_ptr_types += 1,
            _ => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::workspace::CrateInfo;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str, &str)>, crates: Vec<(&str, &str, Vec<&str>)>) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            crates: crates
                .into_iter()
                .map(|(name, dir, deps)| CrateInfo {
                    name: name.into(),
                    dir: dir.into(),
                    manifest: Manifest {
                        name: name.into(),
                        deps: deps.into_iter().map(String::from).collect(),
                        dev_deps: vec![],
                    },
                })
                .collect(),
            files: files
                .into_iter()
                .map(|(path, krate, text)| {
                    SourceFile::analyze(path.into(), krate.into(), text.into())
                })
                .collect(),
        }
    }

    fn site_for<'a>(sites: &'a [CallSite], callee: &str) -> &'a CallSite {
        sites
            .iter()
            .find(|s| match &s.kind {
                CallKind::Free(n)
                | CallKind::SelfMethod(n)
                | CallKind::Method(n)
                | CallKind::Path(_, n) => n == callee,
                CallKind::PathComplex => false,
            })
            .unwrap_or_else(|| panic!("no site calling {callee}"))
    }

    #[test]
    fn free_and_self_method_resolution() {
        let w = ws(
            vec![(
                "crates/sat/src/lib.rs",
                "hqs-sat",
                "pub struct Solver;\n\
                 impl Solver {\n\
                     pub fn propagate(&mut self) { self.helper(); free_fn(); }\n\
                     fn helper(&self) {}\n\
                 }\n\
                 fn free_fn() {}\n",
            )],
            vec![("hqs-sat", "crates/sat", vec![])],
        );
        let table = SymbolTable::build(&w);
        let imports = parse_imports(&w.files[0], &table);
        let sites = scan_calls(&w.files[0], &table, &imports);
        assert!(matches!(
            site_for(&sites, "helper").resolution,
            Resolution::Resolved(_)
        ));
        assert!(matches!(
            site_for(&sites, "free_fn").resolution,
            Resolution::Resolved(_)
        ));
    }

    #[test]
    fn method_call_through_use_as_rename() {
        let w = ws(
            vec![
                (
                    "crates/base/src/lib.rs",
                    "hqs-base",
                    "pub struct Counter;\nimpl Counter { pub fn fresh() -> Self { Counter } }\n",
                ),
                (
                    "crates/sat/src/lib.rs",
                    "hqs-sat",
                    "use hqs_base::Counter as Tally;\n\
                     pub fn make() { let _t = Tally::fresh(); }\n",
                ),
            ],
            vec![
                ("hqs-base", "crates/base", vec![]),
                ("hqs-sat", "crates/sat", vec!["hqs-base"]),
            ],
        );
        let table = SymbolTable::build(&w);
        let imports = parse_imports(&w.files[1], &table);
        assert_eq!(
            imports.map.get("Tally").map(|t| t.name.as_str()),
            Some("Counter")
        );
        let sites = scan_calls(&w.files[1], &table, &imports);
        let site = site_for(&sites, "fresh");
        match &site.resolution {
            Resolution::Resolved(ids) => {
                assert_eq!(table.defs[ids[0]].symbol, "Counter::fresh");
                assert_eq!(table.defs[ids[0]].crate_name, "hqs-base");
            }
            other => panic!("expected resolved, got {other:?}"),
        }
    }

    #[test]
    fn std_paths_and_constructors_are_external() {
        let w = ws(
            vec![(
                "crates/sat/src/lib.rs",
                "hqs-sat",
                "use std::collections::HashMap;\n\
                 pub fn f() {\n\
                     let _m: HashMap<u32, u32> = HashMap::new();\n\
                     let _v = Vec::<u8>::with_capacity(4);\n\
                     let _s = Some(1);\n\
                     let _t = std::mem::take(&mut vec![1]);\n\
                 }\n",
            )],
            vec![("hqs-sat", "crates/sat", vec![])],
        );
        let table = SymbolTable::build(&w);
        let imports = parse_imports(&w.files[0], &table);
        let sites = scan_calls(&w.files[0], &table, &imports);
        for s in &sites {
            assert!(
                matches!(s.resolution, Resolution::External(_)),
                "{s:?} should be external"
            );
        }
    }

    #[test]
    fn closure_param_call_is_unknown() {
        let w = ws(
            vec![(
                "crates/sat/src/lib.rs",
                "hqs-sat",
                "pub fn f(should_stop: impl Fn() -> bool) { if should_stop() {} }\n",
            )],
            vec![("hqs-sat", "crates/sat", vec![])],
        );
        let table = SymbolTable::build(&w);
        let imports = parse_imports(&w.files[0], &table);
        let sites = scan_calls(&w.files[0], &table, &imports);
        assert!(matches!(
            site_for(&sites, "should_stop").resolution,
            Resolution::Unknown
        ));
    }

    #[test]
    fn grouped_imports_and_globs() {
        let w = ws(
            vec![(
                "crates/sat/src/lib.rs",
                "hqs-sat",
                "use hqs_base::{Budget, cancel::{CancelToken, poll as check_poll}};\n\
                 use super::*;\n",
            )],
            vec![
                ("hqs-base", "crates/base", vec![]),
                ("hqs-sat", "crates/sat", vec!["hqs-base"]),
            ],
        );
        let table = SymbolTable::build(&w);
        let imports = parse_imports(&w.files[0], &table);
        assert_eq!(imports.globs, 1);
        assert_eq!(
            imports.map.get("Budget").map(|t| t.name.as_str()),
            Some("Budget")
        );
        assert_eq!(
            imports.map.get("check_poll").map(|t| t.name.as_str()),
            Some("poll")
        );
        assert_eq!(
            imports
                .map
                .get("CancelToken")
                .and_then(|t| t.krate.as_deref()),
            Some("hqs-base")
        );
    }
}
