//! Per-function control-flow graphs built from the token/scope stream.
//!
//! The builder is a recursive descent over a function body's non-trivia
//! token view: it opens basic blocks at control keywords and closes
//! them at their joins, producing a [`Cfg`] with explicit edges for
//!
//! * `if`/`else if`/`else` branches (true/false edges into a join),
//! * `match` arms (one arm edge per arm, all re-joining),
//! * `loop`/`while`/`for` bodies (a head block, a back edge from the
//!   body end, and a loop-exit edge),
//! * `break` / `continue`, including labeled `break 'outer` /
//!   `continue 'outer` forms resolved against the enclosing loop stack
//!   (labeled block expressions `'b: { … }` are break targets too),
//! * early `return`, and
//! * `?` — a split edge to the function exit alongside the fall-through
//!   edge, so "this statement may leave the function" is a real path.
//!
//! The builder is deliberately *not* a parser. Struct literals, closure
//! bodies and plain `{}` blocks are treated as straight-line code (a
//! closure's control effects stay local to the statement that owns it),
//! and malformed input degrades into larger straight-line blocks rather
//! than an error — exactly the posture of the lexer underneath. What
//! the passes need is sound *path* structure for the constructs that
//! carry solver control flow, and those are modeled precisely.
//!
//! Block 0 is the function entry, block 1 the function exit; every
//! `return`/`?`/fall-off-the-end edge targets block 1. Each block
//! records the view positions (indices into the file's
//! [`crate::passes::code_indices`] vector) of the tokens it contains
//! plus the brace-scope depth it lives at — the scope depth is what
//! lets the guard-liveness dataflow kill a `MutexGuard` binding when
//! control leaves the scope that owns it.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Index of the synthetic entry block in [`Cfg::blocks`].
pub const ENTRY: usize = 0;
/// Index of the synthetic exit block in [`Cfg::blocks`].
pub const EXIT: usize = 1;

/// Why an edge exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Sequential fall-through (including branch re-joins).
    Seq,
    /// Condition held (`if`/`while` body entry).
    True,
    /// Condition failed (skip to join / loop exit).
    False,
    /// One `match` arm.
    Arm,
    /// Loop body end back to the loop head.
    Back,
    /// `continue` to the loop head.
    Continue,
    /// `break` to the loop's (or labeled block's) join.
    Break,
    /// `for`/`loop` head to the code after the loop.
    LoopExit,
    /// `return` to the function exit.
    Return,
    /// `?` early exit to the function exit.
    Question,
}

/// One basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// View positions (into the file's code-index vector) of the tokens
    /// in this block, in source order.
    pub tokens: Vec<usize>,
    /// 1-based line of the first token (or of the construct that opened
    /// the block when it is still empty).
    pub line: u32,
    /// Brace-scope depth of the block's statements: the function body
    /// is depth 1, each nested brace scope adds one. Join blocks carry
    /// the depth of the surrounding scope.
    pub scope: u32,
    /// Successor edges.
    pub succs: Vec<(usize, EdgeKind)>,
    /// Predecessor block ids (derived from `succs` at seal time).
    pub preds: Vec<usize>,
}

/// One loop in the function, in source order.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The head block: condition for `while`/`for`, the body start
    /// gateway for `loop`. `continue` and the back edge target it.
    pub head: usize,
    /// The join block control reaches after the loop exits.
    pub exit: usize,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Line of the first token inside the body (annotation anchor).
    pub body_line: u32,
    /// 1-based nesting depth within the function.
    pub depth: u32,
    /// `'label` if the loop is labeled (without the quote).
    pub label: Option<String>,
}

/// The control-flow graph of one function body.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Qualified function name (`Type::fn` or `fn`).
    pub symbol: String,
    /// Basic blocks; `blocks[ENTRY]` is the entry, `blocks[EXIT]` the
    /// exit.
    pub blocks: Vec<Block>,
    /// Every loop, in source order.
    pub loops: Vec<LoopInfo>,
}

impl Cfg {
    /// Blocks in the body of the loop `l`: every block reachable from
    /// the loop head without traversing an edge back into the head and
    /// without passing through the loop's exit block.
    #[must_use]
    pub fn loop_body(&self, l: &LoopInfo) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![l.head];
        seen[l.head] = true;
        seen[l.exit] = true; // barrier, removed from the result below
        while let Some(b) = stack.pop() {
            for &(s, _) in &self.blocks[b].succs {
                if s != l.head && s != EXIT && !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen[l.exit] = false;
        (0..self.blocks.len()).filter(|&b| seen[b]).collect()
    }
}

/// Builds the CFG for every function body in `file`. `code` must be the
/// file's [`crate::passes::code_indices`] view; bodies are the maximal
/// runs of code tokens the scope tracker attributes to one function.
#[must_use]
pub fn build_all(file: &SourceFile, code: &[usize]) -> Vec<Cfg> {
    let mut cfgs = Vec::new();
    let mut k = 0;
    while k < code.len() {
        let ctx = &file.ctx[code[k]];
        if ctx.in_fn.is_empty() || ctx.in_attr {
            k += 1;
            continue;
        }
        let symbol = ctx.in_fn.clone();
        let start = k;
        while k < code.len() {
            let c = &file.ctx[code[k]];
            if c.in_fn != symbol {
                break;
            }
            k += 1;
        }
        // The run ends with the body's closing `}` (the tracker pops the
        // fn scope after attributing it); the builder treats a stray
        // close as end-of-body either way.
        cfgs.push(build_fn(file, code, start, k, symbol));
    }
    cfgs
}

/// Builds the CFG for one function body spanning view positions
/// `[start, end)` of `code`.
#[must_use]
pub fn build_fn(
    file: &SourceFile,
    code: &[usize],
    start: usize,
    end: usize,
    symbol: String,
) -> Cfg {
    let first_line = code.get(start).map_or(0, |&i| file.tokens[i].line);
    let mut b = Builder {
        file,
        code,
        pos: start,
        end,
        blocks: vec![
            Block {
                tokens: Vec::new(),
                line: first_line,
                scope: 1,
                succs: Vec::new(),
                preds: Vec::new(),
            },
            Block {
                tokens: Vec::new(),
                line: first_line,
                scope: 0,
                succs: Vec::new(),
                preds: Vec::new(),
            },
        ],
        cur: ENTRY,
        scope: 1,
        targets: Vec::new(),
        loops: Vec::new(),
        loop_depth: 0,
    };
    b.parse_stmts(Stop::EndOfBody);
    let last = b.cur;
    b.edge(last, EXIT, EdgeKind::Seq);
    let mut blocks = b.blocks;
    let edges: Vec<(usize, usize)> = blocks
        .iter()
        .enumerate()
        .flat_map(|(i, blk)| blk.succs.iter().map(move |&(s, _)| (i, s)))
        .collect();
    for (i, s) in edges {
        if !blocks[s].preds.contains(&i) {
            blocks[s].preds.push(i);
        }
    }
    Cfg {
        symbol,
        blocks,
        loops: b.loops,
    }
}

/// What ends the statement list currently being parsed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stop {
    /// End of the function body span (stray `}` tokens are consumed).
    EndOfBody,
    /// The matching `}` of a brace scope.
    CloseBrace,
    /// A `,` at nesting level 0, or the match's closing `}` (not
    /// consumed): a blockless match-arm body.
    ArmEnd,
}

/// A `break`/`continue` target on the construct stack.
struct Target {
    /// `continue` destination; `None` for labeled plain blocks.
    head: Option<usize>,
    /// `break` destination.
    exit: usize,
    /// Loop/block label, without the leading quote.
    label: Option<String>,
    /// Is this a loop (an unlabeled `break` binds to the innermost
    /// loop, never to a labeled block)?
    is_loop: bool,
}

struct Builder<'a> {
    file: &'a SourceFile,
    code: &'a [usize],
    pos: usize,
    end: usize,
    blocks: Vec<Block>,
    cur: usize,
    scope: u32,
    targets: Vec<Target>,
    loops: Vec<LoopInfo>,
    loop_depth: u32,
}

impl<'a> Builder<'a> {
    fn text(&self, k: usize) -> &'a str {
        if k < self.end {
            self.code
                .get(k)
                .map_or("", |&i| self.file.tokens[i].text(&self.file.text))
        } else {
            ""
        }
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        if k < self.end {
            self.code.get(k).map(|&i| self.file.tokens[i].kind)
        } else {
            None
        }
    }

    fn line(&self, k: usize) -> u32 {
        self.code
            .get(k.min(self.end.saturating_sub(1)))
            .map_or(0, |&i| self.file.tokens[i].line)
    }

    fn new_block(&mut self, line: u32, scope: u32) -> usize {
        self.blocks.push(Block {
            tokens: Vec::new(),
            line,
            scope,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if !self.blocks[from]
            .succs
            .iter()
            .any(|&(s, k)| s == to && k == kind)
        {
            self.blocks[from].succs.push((to, kind));
        }
    }

    /// Appends the current token to the current block and advances.
    fn push_tok(&mut self) {
        let line = self.line(self.pos);
        let b = &mut self.blocks[self.cur];
        if b.tokens.is_empty() && b.line == 0 {
            b.line = line;
        }
        b.tokens.push(self.pos);
        self.pos += 1;
    }

    /// Is the token at view position `k` an expression tail a postfix
    /// `?` or an index `[` could apply to?
    fn is_expr_end(&self, k: usize) -> bool {
        match self.kind(k) {
            Some(TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Str) => true,
            Some(TokenKind::Punct) => matches!(self.text(k), ")" | "]" | "}"),
            _ => false,
        }
    }

    /// Consumes tokens into the current block up to (not including) a
    /// `{` at bracket-nesting level 0. Used for `if`/`while` conditions,
    /// `for` headers and `match` scrutinees, where Rust itself forbids
    /// bare struct literals. Returns false if no `{` was found.
    fn consume_header(&mut self) -> bool {
        let mut depth = 0i32;
        while self.pos < self.end {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return true,
                "}" if depth <= 0 => return false,
                ";" if depth <= 0 => return false,
                _ => {}
            }
            self.push_tok();
        }
        false
    }

    /// The statement-list parser: builds blocks until the stop
    /// condition is met. The stopping token (`}` / `,`) is *not*
    /// consumed for `ArmEnd`; the `}` *is* consumed for `CloseBrace`.
    fn parse_stmts(&mut self, stop: Stop) {
        let mut depth = 0i32; // () / [] nesting within the list
        while self.pos < self.end {
            let text = self.text(self.pos);
            let kind = self.kind(self.pos);
            // Attribute tokens inside bodies (`#[cfg(...)]`) carry no
            // control flow; skip them entirely.
            if self.file.ctx[self.code[self.pos]].in_attr {
                self.pos += 1;
                continue;
            }
            match text {
                "}" if depth <= 0 => {
                    match stop {
                        Stop::CloseBrace => {
                            self.pos += 1; // consume the matching brace
                        }
                        Stop::ArmEnd => {} // match's own brace: leave it
                        Stop::EndOfBody => {
                            self.pos += 1; // stray close: tolerate
                            continue;
                        }
                    }
                    return;
                }
                "," if depth <= 0 && stop == Stop::ArmEnd => return,
                "(" | "[" => {
                    depth += 1;
                    self.push_tok();
                }
                ")" | "]" => {
                    depth -= 1;
                    self.push_tok();
                }
                "{" => {
                    // Plain block / struct literal / closure body:
                    // straight-line as far as paths are concerned, but a
                    // real scope for guard lifetimes.
                    self.pos += 1;
                    self.scope += 1;
                    let inner = self.new_block(self.line(self.pos), self.scope);
                    self.edge(self.cur, inner, EdgeKind::Seq);
                    self.cur = inner;
                    self.parse_stmts(Stop::CloseBrace);
                    self.scope -= 1;
                    let after = self.new_block(self.line(self.pos), self.scope);
                    self.edge(self.cur, after, EdgeKind::Seq);
                    self.cur = after;
                }
                "if" if kind == Some(TokenKind::Ident) => self.parse_if(),
                "match" if kind == Some(TokenKind::Ident) => self.parse_match(),
                "loop" | "while" if kind == Some(TokenKind::Ident) => {
                    self.parse_loop(text.to_string(), None);
                }
                "for" if kind == Some(TokenKind::Ident) => {
                    // `for<'a>` HRTB is a type position, not a loop.
                    if self.text(self.pos + 1) == "<" {
                        self.push_tok();
                    } else {
                        self.parse_loop("for".to_string(), None);
                    }
                }
                "break" if kind == Some(TokenKind::Ident) => self.parse_break(),
                "continue" if kind == Some(TokenKind::Ident) => self.parse_continue(),
                "return" if kind == Some(TokenKind::Ident) => {
                    self.push_tok();
                    // The value expression (if any) stays in this block;
                    // statement parsing continues and the `;` or brace
                    // handling will see it. The exit edge is what
                    // matters for paths.
                    self.edge(self.cur, EXIT, EdgeKind::Return);
                    let dead = self.new_block(self.line(self.pos), self.scope);
                    self.cur = dead; // unreachable continuation
                }
                "?" if self.is_expr_end(self.pos.wrapping_sub(1))
                    // A `?` right where the enclosing fn body's run ends
                    // is the trailing `}`'s neighbour; guard pos-1 >= 0
                    // via wrapping + is_expr_end's Option handling.
                    =>
                {
                    self.push_tok();
                    self.edge(self.cur, EXIT, EdgeKind::Question);
                    let cont = self.new_block(self.line(self.pos), self.scope);
                    self.edge(self.cur, cont, EdgeKind::Seq);
                    self.cur = cont;
                }
                _ if kind == Some(TokenKind::Lifetime) && self.text(self.pos + 1) == ":" => {
                    // `'label: loop|while|for|{`
                    let label = text.trim_start_matches('\'').to_string();
                    let after = self.text(self.pos + 2);
                    match after {
                        "loop" | "while" | "for" => {
                            self.push_tok(); // 'label
                            self.push_tok(); // :
                            let kw = self.text(self.pos).to_string();
                            self.parse_loop(kw, Some(label));
                        }
                        "{" => {
                            self.push_tok(); // 'label
                            self.push_tok(); // :
                            self.pos += 1; // {
                            let join = self.new_block(self.line(self.pos), self.scope);
                            self.targets.push(Target {
                                head: None,
                                exit: join,
                                label: Some(label),
                                is_loop: false,
                            });
                            self.scope += 1;
                            let inner = self.new_block(self.line(self.pos), self.scope);
                            self.edge(self.cur, inner, EdgeKind::Seq);
                            self.cur = inner;
                            self.parse_stmts(Stop::CloseBrace);
                            self.scope -= 1;
                            self.targets.pop();
                            self.edge(self.cur, join, EdgeKind::Seq);
                            self.cur = join;
                        }
                        _ => self.push_tok(),
                    }
                }
                _ => self.push_tok(),
            }
        }
    }

    fn parse_if(&mut self) {
        self.push_tok(); // `if`
        if !self.consume_header() {
            return; // malformed; tokens already appended
        }
        let cond = self.cur;
        let join = self.new_block(self.line(self.pos), self.scope);
        // then-branch
        self.pos += 1; // `{`
        self.scope += 1;
        let then_entry = self.new_block(self.line(self.pos), self.scope);
        self.edge(cond, then_entry, EdgeKind::True);
        self.cur = then_entry;
        self.parse_stmts(Stop::CloseBrace);
        self.scope -= 1;
        self.edge(self.cur, join, EdgeKind::Seq);
        // else?
        if self.text(self.pos) == "else" {
            self.pos += 1;
            if self.text(self.pos) == "if" {
                let else_entry = self.new_block(self.line(self.pos), self.scope);
                self.edge(cond, else_entry, EdgeKind::False);
                self.cur = else_entry;
                self.parse_if();
                self.edge(self.cur, join, EdgeKind::Seq);
            } else if self.text(self.pos) == "{" {
                self.pos += 1;
                self.scope += 1;
                let else_entry = self.new_block(self.line(self.pos), self.scope);
                self.edge(cond, else_entry, EdgeKind::False);
                self.cur = else_entry;
                self.parse_stmts(Stop::CloseBrace);
                self.scope -= 1;
                self.edge(self.cur, join, EdgeKind::Seq);
            } else {
                // Malformed `else`: treat as fall-through.
                self.edge(cond, join, EdgeKind::False);
            }
        } else {
            self.edge(cond, join, EdgeKind::False);
        }
        self.cur = join;
    }

    fn parse_match(&mut self) {
        self.push_tok(); // `match`
        if !self.consume_header() {
            return;
        }
        let scrutinee = self.cur;
        let join = self.new_block(self.line(self.pos), self.scope);
        self.pos += 1; // `{`
        self.scope += 1;
        let mut any_arm = false;
        while self.pos < self.end && self.text(self.pos) != "}" {
            // One arm: pattern (and guard) up to `=>`, then the body.
            let arm = self.new_block(self.line(self.pos), self.scope);
            self.edge(scrutinee, arm, EdgeKind::Arm);
            self.cur = arm;
            any_arm = true;
            // Pattern/guard scan: `=` followed by `>` at nesting 0 is
            // the arrow (ranges spell `..=`, comparisons never produce
            // an `=` with `>` *after* it).
            let mut depth = 0i32;
            while self.pos < self.end {
                match self.text(self.pos) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth <= 0 && self.text(self.pos + 1) == ">" => break,
                    "}" if depth <= 0 => break, // malformed arm
                    _ => {}
                }
                self.push_tok();
            }
            if self.text(self.pos) == "=" {
                self.pos += 2; // `=>`
            }
            if self.text(self.pos) == "{" {
                self.pos += 1;
                self.scope += 1;
                self.parse_stmts(Stop::CloseBrace);
                self.scope -= 1;
            } else {
                self.parse_stmts(Stop::ArmEnd);
            }
            self.edge(self.cur, join, EdgeKind::Seq);
            if self.text(self.pos) == "," {
                self.pos += 1;
            }
        }
        if self.text(self.pos) == "}" {
            self.pos += 1;
        }
        self.scope -= 1;
        if !any_arm {
            self.edge(scrutinee, join, EdgeKind::Seq);
        }
        self.cur = join;
    }

    fn parse_loop(&mut self, kw: String, label: Option<String>) {
        let kw_line = self.line(self.pos);
        self.push_tok(); // loop/while/for keyword
        let head = self.new_block(kw_line, self.scope);
        self.edge(self.cur, head, EdgeKind::Seq);
        self.cur = head;
        // while/for headers run in the head block; `loop` has none.
        if kw != "loop" && !self.consume_header() {
            return;
        }
        if kw == "loop" && self.text(self.pos) != "{" {
            return; // malformed
        }
        let exit = self.new_block(self.line(self.pos), self.scope);
        self.pos += 1; // `{`
        self.scope += 1;
        self.loop_depth += 1;
        let body = self.new_block(self.line(self.pos), self.scope);
        let body_line = self.line(self.pos);
        match kw.as_str() {
            "while" => {
                self.edge(head, body, EdgeKind::True);
                self.edge(head, exit, EdgeKind::False);
            }
            "for" => {
                self.edge(head, body, EdgeKind::True);
                self.edge(head, exit, EdgeKind::LoopExit);
            }
            _ => {
                self.edge(head, body, EdgeKind::Seq);
            }
        }
        let loop_index = self.loops.len();
        self.loops.push(LoopInfo {
            head,
            exit,
            line: kw_line,
            body_line,
            depth: self.loop_depth,
            label: label.clone(),
        });
        self.targets.push(Target {
            head: Some(head),
            exit,
            label,
            is_loop: true,
        });
        self.cur = body;
        self.parse_stmts(Stop::CloseBrace);
        self.targets.pop();
        self.loop_depth -= 1;
        self.scope -= 1;
        self.edge(self.cur, head, EdgeKind::Back);
        // Keep body_line honest when the body opened with a nested
        // construct (the block may have been created before any token).
        if self.blocks[body].tokens.is_empty() {
            self.loops[loop_index].body_line = self.blocks[body].line;
        }
        self.cur = exit;
    }

    /// Resolves `break`/`continue` targets against the construct stack.
    fn target_index(&self, label: Option<&str>, need_loop: bool) -> Option<usize> {
        match label {
            Some(l) => self
                .targets
                .iter()
                .rposition(|t| t.label.as_deref() == Some(l)),
            None => self.targets.iter().rposition(|t| !need_loop || t.is_loop),
        }
    }

    fn parse_break(&mut self) {
        self.push_tok(); // `break`
        let label = if self.kind(self.pos) == Some(TokenKind::Lifetime) {
            let l = self.text(self.pos).trim_start_matches('\'').to_string();
            self.push_tok();
            Some(l)
        } else {
            None
        };
        // `break value` tokens (if any) keep flowing into the current
        // block via the main loop; the edge is what matters.
        if let Some(t) = self.target_index(label.as_deref(), true) {
            let exit = self.targets[t].exit;
            self.edge(self.cur, exit, EdgeKind::Break);
        }
        let dead = self.new_block(self.line(self.pos), self.scope);
        self.cur = dead;
    }

    fn parse_continue(&mut self) {
        self.push_tok(); // `continue`
        let label = if self.kind(self.pos) == Some(TokenKind::Lifetime) {
            let l = self.text(self.pos).trim_start_matches('\'').to_string();
            self.push_tok();
            Some(l)
        } else {
            None
        };
        if let Some(t) = self.target_index(label.as_deref(), true) {
            if let Some(head) = self.targets[t].head {
                self.edge(self.cur, head, EdgeKind::Continue);
            }
        }
        let dead = self.new_block(self.line(self.pos), self.scope);
        self.cur = dead;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::code_indices;

    fn cfg_of(src: &str) -> Cfg {
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        let cfgs = build_all(&file, &code);
        assert_eq!(cfgs.len(), 1, "expected one fn, got {}", cfgs.len());
        cfgs.into_iter().next().expect("one cfg")
    }

    fn block_texts(cfg: &Cfg, src: &str) -> Vec<Vec<String>> {
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        cfg.blocks
            .iter()
            .map(|b| {
                b.tokens
                    .iter()
                    .map(|&k| file.tokens[code[k]].text(&file.text).to_string())
                    .collect()
            })
            .collect()
    }

    /// Find the block containing a token with the given text.
    fn block_of(cfg: &Cfg, src: &str, needle: &str) -> usize {
        let texts = block_texts(cfg, src);
        texts
            .iter()
            .position(|b| b.iter().any(|t| t == needle))
            .unwrap_or_else(|| panic!("token {needle} in no block: {texts:?}"))
    }

    fn has_edge(cfg: &Cfg, from: usize, to: usize, kind: EdgeKind) -> bool {
        cfg.blocks[from]
            .succs
            .iter()
            .any(|&(s, k)| s == to && k == kind)
    }

    #[test]
    fn straight_line_is_one_path() {
        let src = "fn f() { a; b; c; }";
        let cfg = cfg_of(src);
        let b = block_of(&cfg, src, "a");
        assert_eq!(b, block_of(&cfg, src, "c"));
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn if_else_branches_and_join() {
        let src = "fn f() { if c { t; } else { e; } after; }";
        let cfg = cfg_of(src);
        let cond = block_of(&cfg, src, "c");
        let t = block_of(&cfg, src, "t");
        let e = block_of(&cfg, src, "e");
        let after = block_of(&cfg, src, "after");
        assert!(has_edge(&cfg, cond, t, EdgeKind::True));
        assert!(has_edge(&cfg, cond, e, EdgeKind::False));
        assert!(has_edge(&cfg, t, after, EdgeKind::Seq));
        assert!(has_edge(&cfg, e, after, EdgeKind::Seq));
    }

    #[test]
    fn if_without_else_has_false_edge_to_join() {
        let src = "fn f() { if c { t; } after; }";
        let cfg = cfg_of(src);
        let cond = block_of(&cfg, src, "c");
        let after = block_of(&cfg, src, "after");
        assert!(has_edge(&cfg, cond, after, EdgeKind::False));
    }

    #[test]
    fn else_if_chain() {
        let src = "fn f() { if a { x; } else if b { y; } else { z; } after; }";
        let cfg = cfg_of(src);
        let ca = block_of(&cfg, src, "a");
        let cb = block_of(&cfg, src, "b");
        let after = block_of(&cfg, src, "after");
        assert!(has_edge(&cfg, ca, cb, EdgeKind::False));
        assert!(has_edge(&cfg, cb, block_of(&cfg, src, "y"), EdgeKind::True));
        assert!(has_edge(
            &cfg,
            cb,
            block_of(&cfg, src, "z"),
            EdgeKind::False
        ));
        assert!(has_edge(
            &cfg,
            block_of(&cfg, src, "x"),
            after,
            EdgeKind::Seq
        ));
    }

    #[test]
    fn match_arms_rejoin() {
        let src = "fn f(x: u8) { match x { 0 => { a; } 1 => b(), _ => {} } after; }";
        let cfg = cfg_of(src);
        let scr = block_of(&cfg, src, "x");
        let a = block_of(&cfg, src, "a");
        let b = block_of(&cfg, src, "b");
        let after = block_of(&cfg, src, "after");
        assert!(
            cfg.blocks[scr]
                .succs
                .iter()
                .filter(|&&(_, k)| k == EdgeKind::Arm)
                .count()
                >= 3
        );
        assert!(
            has_edge(&cfg, a, after, EdgeKind::Seq)
                || cfg.blocks[a].succs.iter().any(|&(s, _)| s == after)
        );
        // arm bodies flow to the join, which reaches `after`
        let join = cfg.blocks[b].succs[0].0;
        assert!(has_edge(&cfg, join, after, EdgeKind::Seq) || join == after);
    }

    #[test]
    fn while_loop_shape() {
        let src = "fn f() { while c { body; } after; }";
        let cfg = cfg_of(src);
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        let body = block_of(&cfg, src, "body");
        assert!(has_edge(&cfg, l.head, body, EdgeKind::True));
        assert!(has_edge(&cfg, body, l.head, EdgeKind::Back));
        assert!(has_edge(&cfg, l.head, l.exit, EdgeKind::False));
        assert!(cfg.loop_body(l).contains(&body));
    }

    #[test]
    fn loop_with_break_and_continue() {
        let src = "fn f() { loop { if c { break; } if d { continue; } tail; } after; }";
        let cfg = cfg_of(src);
        let l = &cfg.loops[0];
        let cb = block_of(&cfg, src, "break");
        let cc = block_of(&cfg, src, "continue");
        assert!(has_edge(&cfg, cb, l.exit, EdgeKind::Break));
        assert!(has_edge(&cfg, cc, l.head, EdgeKind::Continue));
        let tail = block_of(&cfg, src, "tail");
        assert!(has_edge(&cfg, tail, l.head, EdgeKind::Back));
    }

    #[test]
    fn labeled_break_skips_inner_loop() {
        let src = "fn f() { 'outer: loop { loop { if c { break 'outer; } body; } } after; }";
        let cfg = cfg_of(src);
        assert_eq!(cfg.loops.len(), 2);
        let outer = &cfg.loops[0];
        assert_eq!(outer.label.as_deref(), Some("outer"));
        let br = block_of(&cfg, src, "break");
        assert!(has_edge(&cfg, br, outer.exit, EdgeKind::Break));
        let inner = &cfg.loops[1];
        assert!(!has_edge(&cfg, br, inner.exit, EdgeKind::Break));
    }

    #[test]
    fn labeled_continue_targets_outer_head() {
        let src = "fn f() { 'o: while a { while b { continue 'o; } } }";
        let cfg = cfg_of(src);
        let outer = &cfg.loops[0];
        let cc = block_of(&cfg, src, "continue");
        assert!(has_edge(&cfg, cc, outer.head, EdgeKind::Continue));
    }

    #[test]
    fn early_return_edges_to_exit() {
        let src = "fn f() { if c { return; } after; }";
        let cfg = cfg_of(src);
        let r = block_of(&cfg, src, "return");
        assert!(has_edge(&cfg, r, EXIT, EdgeKind::Return));
    }

    #[test]
    fn question_mark_splits_block() {
        let src = "fn f() -> Result<(), E> { let x = g()?; use_it(x); Ok(()) }";
        let cfg = cfg_of(src);
        let q = block_of(&cfg, src, "?");
        assert!(has_edge(&cfg, q, EXIT, EdgeKind::Question));
        let after = block_of(&cfg, src, "use_it");
        assert!(has_edge(&cfg, q, after, EdgeKind::Seq));
        assert_ne!(q, after);
    }

    #[test]
    fn question_in_loop_leaves_loop_body() {
        let src = "fn f() -> Result<(), E> { loop { step()?; tail; } }";
        let cfg = cfg_of(src);
        let q = block_of(&cfg, src, "?");
        assert!(has_edge(&cfg, q, EXIT, EdgeKind::Question));
        let l = &cfg.loops[0];
        assert!(cfg.loop_body(l).contains(&q));
    }

    #[test]
    fn for_loop_head_and_exit() {
        let src = "fn f(v: &[u8]) { for x in v.iter() { body; } after; }";
        let cfg = cfg_of(src);
        let l = &cfg.loops[0];
        assert!(has_edge(&cfg, l.head, l.exit, EdgeKind::LoopExit));
        assert!(has_edge(
            &cfg,
            block_of(&cfg, src, "body"),
            l.head,
            EdgeKind::Back
        ));
    }

    #[test]
    fn nested_loop_depths() {
        let src = "fn f() { while a { for x in y { inner; } } }";
        let cfg = cfg_of(src);
        assert_eq!(cfg.loops.len(), 2);
        assert_eq!(cfg.loops[0].depth, 1);
        assert_eq!(cfg.loops[1].depth, 2);
    }

    #[test]
    fn scope_depth_tracks_braces() {
        let src = "fn f() { a; { b; } c; }";
        let cfg = cfg_of(src);
        let a = block_of(&cfg, src, "a");
        let b = block_of(&cfg, src, "b");
        let c = block_of(&cfg, src, "c");
        assert_eq!(cfg.blocks[a].scope, 1);
        assert_eq!(cfg.blocks[b].scope, 2);
        assert_eq!(cfg.blocks[c].scope, 1);
    }

    #[test]
    fn closure_in_call_does_not_derail() {
        // The closure's braces are a scope, not a branch; the statement
        // list keeps flowing and loop structure survives.
        let src = "fn f(v: &[u8]) { for x in v.iter().map(|y| { y + 1 }) { body; } after; }";
        let cfg = cfg_of(src);
        assert_eq!(cfg.loops.len(), 1);
        let after = block_of(&cfg, src, "after");
        assert!(
            has_edge(&cfg, cfg.loops[0].exit, after, EdgeKind::Seq) || cfg.loops[0].exit == after
        );
    }

    #[test]
    fn loop_body_excludes_code_after_exit() {
        let src = "fn f() { while c { body; } after; }";
        let cfg = cfg_of(src);
        let l = &cfg.loops[0];
        let body_blocks = cfg.loop_body(l);
        assert!(!body_blocks.contains(&block_of(&cfg, src, "after")));
    }

    #[test]
    fn match_arm_with_control_flow() {
        let src = "fn f(x: u8) { loop { match x { 0 => continue, 1 => break, _ => { tail; } } } }";
        let cfg = cfg_of(src);
        let l = &cfg.loops[0];
        let cc = block_of(&cfg, src, "continue");
        let cb = block_of(&cfg, src, "break");
        assert!(has_edge(&cfg, cc, l.head, EdgeKind::Continue));
        assert!(has_edge(&cfg, cb, l.exit, EdgeKind::Break));
    }

    #[test]
    fn two_fns_two_cfgs() {
        let src = "fn a() { x; } fn b() { y; }";
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        let cfgs = build_all(&file, &code);
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].symbol, "a");
        assert_eq!(cfgs[1].symbol, "b");
    }
}
