//! Diagnostics: the unit of output shared by every pass, with JSON
//! round-tripping used by both the report artifact and the baseline.

use crate::json::{self, Json};

/// One finding from one pass.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Which pass produced it: `layering`, `panic-path`, `hot-alloc`,
    /// `newtype`, `audit` or `annotation`.
    pub pass: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The enclosing symbol (`Type::fn`, fn name, or crate name for
    /// manifest-level findings); may be empty.
    pub symbol: String,
    /// Human-readable description. Stable across line drift — the
    /// baseline keys on it.
    pub message: String,
}

impl Diagnostic {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("pass".into(), Json::String(self.pass.clone())),
            ("path".into(), Json::String(self.path.clone())),
            ("line".into(), Json::Number(f64::from(self.line))),
            ("symbol".into(), Json::String(self.symbol.clone())),
            ("message".into(), Json::String(self.message.clone())),
        ])
    }

    /// Deserializes from a JSON object produced by [`Self::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let obj = v.as_object().ok_or("diagnostic is not an object")?;
        let get_str = |key: &str| -> Result<String, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("diagnostic missing string field `{key}`"))
        };
        let line = obj
            .iter()
            .find(|(k, _)| k == "line")
            .and_then(|(_, v)| v.as_number())
            .ok_or("diagnostic missing number field `line`")?;
        Ok(Diagnostic {
            pass: get_str("pass")?,
            path: get_str("path")?,
            // JSON numbers are f64; line numbers fit losslessly.
            line: line as u32,
            symbol: get_str("symbol")?,
            message: get_str("message")?,
        })
    }
}

/// Serializes a diagnostic slice as a JSON array (pretty-printed,
/// deterministic ordering is the caller's responsibility).
#[must_use]
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let arr = Json::Array(diags.iter().map(Diagnostic::to_json).collect());
    json::emit_pretty(&arr)
}

/// Parses a JSON array of diagnostics.
pub fn from_json_array(text: &str) -> Result<Vec<Diagnostic>, String> {
    let v = json::parse(text)?;
    let arr = v.as_array().ok_or("expected a JSON array of diagnostics")?;
    arr.iter().map(Diagnostic::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let diags = vec![
            Diagnostic {
                pass: "panic-path".into(),
                path: "crates/sat/src/solver.rs".into(),
                line: 42,
                symbol: "Solver::propagate".into(),
                message: "`.unwrap()` in hot-path fn".into(),
            },
            Diagnostic {
                pass: "newtype".into(),
                path: "crates/core/src/elim.rs".into(),
                line: 7,
                symbol: String::new(),
                message: "raw `as u32` cast on Var with \"quotes\" and \\ backslash".into(),
            },
        ];
        let text = to_json_array(&diags);
        let back = from_json_array(&text).expect("parse back");
        assert_eq!(diags, back);
    }

    #[test]
    fn empty_array() {
        assert_eq!(from_json_array("[]").expect("empty"), vec![]);
        assert_eq!(from_json_array(&to_json_array(&[])).expect("rt"), vec![]);
    }
}
