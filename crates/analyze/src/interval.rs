//! Interval / constant propagation over integer locals, as a
//! [`Domain`] instance of the generic dataflow engine.
//!
//! The abstract state ([`Env`]) maps local identifiers to [`Interval`]s
//! `[lo, hi]` (with ±∞ endpoints and an extra "excludes zero" bit so
//! the idiomatic `if n != 0` guard is representable). A variable absent
//! from the map is unknown (⊤); the special [`Env::Unreachable`] value
//! is the join identity, so dead branches contribute nothing.
//!
//! Facts come from three places:
//!
//! * **transfer** — token-level effects inside a block: literal `let`s
//!   and assignments, `±=` shifts by literals, copies between tracked
//!   locals, `for i in a..b` range bindings, `assert!`/`debug_assert!`
//!   constraints, and conservative forgetting on anything else that
//!   writes the variable (`&mut x`, compound ops, unknown right-hand
//!   sides);
//! * **edge refinement** — a `True`/`False` branch edge of an
//!   `if x != 0` / `while i < 10` style condition sharpens the fact on
//!   that edge only (the path-sensitivity the hot-transitive downgrades
//!   in [`crate::passes::value_range`] rely on);
//! * **widening** — a bound that keeps growing around a loop back edge
//!   is widened to ±∞ after [`crate::dataflow::WIDEN_AFTER`] rounds,
//!   which restores termination on the infinite-height lattice.
//!
//! The analysis is deliberately untyped: any identifier assigned an
//! integer literal is tracked, and every unknown construct degrades to
//! ⊤ rather than guessing — the passes only ever *prove* safety from a
//! fact, so ⊤ can cost precision but never soundness.

use std::collections::BTreeMap;

use crate::cfg::{Cfg, EdgeKind};
use crate::dataflow::{Direction, Domain};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// −∞ endpoint sentinel.
pub const NEG_INF: i128 = i128::MIN;
/// +∞ endpoint sentinel.
pub const POS_INF: i128 = i128::MAX;

/// A (possibly unbounded) integer interval, plus an "excludes zero"
/// refinement so `x != 0` is expressible when the sign is unknown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound ([`NEG_INF`] when unbounded).
    pub lo: i128,
    /// Upper bound ([`POS_INF`] when unbounded).
    pub hi: i128,
    nonzero: bool,
}

impl Interval {
    /// `[lo, hi]`, normalizing the zero-exclusion bit from the bounds.
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Self {
        Interval {
            lo,
            hi,
            nonzero: lo > 0 || hi < 0,
        }
    }

    /// The singleton `[v, v]`.
    #[must_use]
    pub fn constant(v: i128) -> Self {
        Self::new(v, v)
    }

    /// The unconstrained interval `[−∞, +∞]`.
    #[must_use]
    pub fn top() -> Self {
        Self::new(NEG_INF, POS_INF)
    }

    /// Is zero provably not a value of this interval?
    #[must_use]
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0 || self.hi < 0 || self.nonzero
    }

    /// The smallest interval containing both (the lattice join).
    #[must_use]
    pub fn hull(self, other: Self) -> Self {
        let mut r = Self::new(self.lo.min(other.lo), self.hi.max(other.hi));
        r.nonzero = self.excludes_zero() && other.excludes_zero();
        r
    }

    /// Shifts both bounds by `delta`, keeping infinities infinite. The
    /// zero-exclusion bit is recomputed from the bounds alone (a
    /// shifted "nonzero" set may now contain zero).
    #[must_use]
    pub fn shift(self, delta: i128) -> Self {
        let lo = if self.lo == NEG_INF {
            NEG_INF
        } else {
            self.lo.saturating_add(delta)
        };
        let hi = if self.hi == POS_INF {
            POS_INF
        } else {
            self.hi.saturating_add(delta)
        };
        Self::new(lo, hi)
    }

    /// Intersects with `[−∞, v]`; `None` when empty (unreachable).
    #[must_use]
    pub fn clamp_le(self, v: i128) -> Option<Self> {
        if self.lo > v {
            return None;
        }
        let mut r = Self::new(self.lo, self.hi.min(v));
        r.nonzero = r.nonzero || self.nonzero;
        Some(r)
    }

    /// Intersects with `[v, +∞]`; `None` when empty.
    #[must_use]
    pub fn clamp_ge(self, v: i128) -> Option<Self> {
        if self.hi < v {
            return None;
        }
        let mut r = Self::new(self.lo.max(v), self.hi);
        r.nonzero = r.nonzero || self.nonzero;
        Some(r)
    }

    /// Intersects with `[v, v]`; `None` when empty.
    #[must_use]
    pub fn only(self, v: i128) -> Option<Self> {
        if v < self.lo || v > self.hi || (v == 0 && self.nonzero) {
            return None;
        }
        Some(Self::constant(v))
    }

    /// Removes the single value `v` (trims an endpoint, or records the
    /// zero exclusion); `None` when the result is empty.
    #[must_use]
    pub fn remove(self, v: i128) -> Option<Self> {
        if self.lo == v && self.hi == v {
            return None;
        }
        let mut r = self;
        if r.lo == v {
            r.lo += 1;
        } else if r.hi == v {
            r.hi -= 1;
        }
        if v == 0 {
            r.nonzero = true;
        }
        r.nonzero = r.nonzero || r.lo > 0 || r.hi < 0;
        Some(r)
    }
}

/// The abstract state at a program point.
#[derive(Clone, Debug, PartialEq)]
pub enum Env {
    /// No path reaches this point (the join identity).
    Unreachable,
    /// Reachable with the recorded per-variable facts; absent
    /// variables are unknown (⊤). `BTreeMap` keeps iteration — and
    /// therefore every downstream report — deterministic.
    Known(BTreeMap<String, Interval>),
}

impl Env {
    /// Looks up a variable's interval (⊤ when untracked/unreachable).
    #[must_use]
    pub fn get(&self, var: &str) -> Interval {
        match self {
            Env::Unreachable => Interval::top(),
            Env::Known(map) => map.get(var).copied().unwrap_or_else(Interval::top),
        }
    }
}

/// One comparison operator in a guard or assertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator describing the branch where this comparison is
    /// false.
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its operands swapped (`5 < x` ⇒ `x > 5`).
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// A parsed `var <op> literal` comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cmp {
    /// The compared identifier.
    pub var: String,
    /// The operator, normalized so the identifier is on the left.
    pub op: CmpOp,
    /// The literal operand.
    pub value: i128,
}

/// The interval analysis over one function body.
pub struct IntervalDomain<'a> {
    file: &'a SourceFile,
    code: &'a [usize],
}

impl<'a> IntervalDomain<'a> {
    /// A domain instance for `file`'s code view.
    #[must_use]
    pub fn new(file: &'a SourceFile, code: &'a [usize]) -> Self {
        IntervalDomain { file, code }
    }

    /// Text of the token at block-token index `i` of `ts` ("" past the
    /// end).
    fn txt(&self, ts: &[usize], i: usize) -> &'a str {
        ts.get(i).map_or("", |&vp| {
            self.file.tokens[self.code[vp]].text(&self.file.text)
        })
    }

    fn kind(&self, ts: &[usize], i: usize) -> Option<TokenKind> {
        ts.get(i).map(|&vp| self.file.tokens[self.code[vp]].kind)
    }

    /// Parses an optionally-negated integer literal at `i`. Returns the
    /// value and the number of tokens consumed.
    fn int_at(&self, ts: &[usize], i: usize) -> Option<(i128, usize)> {
        let (start, sign) = if self.txt(ts, i) == "-" {
            (i + 1, -1)
        } else {
            (i, 1)
        };
        if self.kind(ts, start) != Some(TokenKind::Int) {
            return None;
        }
        let text = self.txt(ts, start).replace('_', "");
        // Strip a type suffix (`10usize`, `3i64`) and reject non-decimal
        // bases — precision lost, never soundness.
        let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty()
            || text.starts_with("0x")
            || text.starts_with("0b")
            || text.starts_with("0o")
        {
            return None;
        }
        let v: i128 = digits.parse().ok()?;
        Some((sign * v, start - i + 1))
    }

    /// Parses `ident <op> lit` or `lit <op> ident` starting at `i`,
    /// normalized to the identifier on the left. Returns the comparison
    /// and the index one past its last token.
    #[must_use]
    pub fn parse_cmp(&self, ts: &[usize], i: usize) -> Option<(Cmp, usize)> {
        // Identifier-first form.
        if self.kind(ts, i) == Some(TokenKind::Ident) {
            let var = self.txt(ts, i).to_string();
            let (op, oplen) = self.parse_op(ts, i + 1)?;
            let (value, consumed) = self.int_at(ts, i + 1 + oplen)?;
            return Some((Cmp { var, op, value }, i + 1 + oplen + consumed));
        }
        // Literal-first form: flip so the identifier leads.
        let (value, consumed) = self.int_at(ts, i)?;
        let (op, oplen) = self.parse_op(ts, i + consumed)?;
        let j = i + consumed + oplen;
        if self.kind(ts, j) == Some(TokenKind::Ident) {
            let var = self.txt(ts, j).to_string();
            return Some((
                Cmp {
                    var,
                    op: op.flip(),
                    value,
                },
                j + 1,
            ));
        }
        None
    }

    /// Parses a comparison operator at `i` (single-char punct tokens:
    /// `<=` is `<` `=`). Returns the op and its token count.
    fn parse_op(&self, ts: &[usize], i: usize) -> Option<(CmpOp, usize)> {
        match (self.txt(ts, i), self.txt(ts, i + 1)) {
            ("=", "=") => Some((CmpOp::Eq, 2)),
            ("!", "=") => Some((CmpOp::Ne, 2)),
            ("<", "=") => Some((CmpOp::Le, 2)),
            (">", "=") => Some((CmpOp::Ge, 2)),
            ("<", _) => Some((CmpOp::Lt, 1)),
            (">", _) => Some((CmpOp::Gt, 1)),
            _ => None,
        }
    }

    /// Applies one comparison as a constraint to `env`.
    fn constrain(env: &mut Env, cmp: &Cmp) {
        let Env::Known(map) = env else { return };
        let cur = map.get(&cmp.var).copied().unwrap_or_else(Interval::top);
        let next = match cmp.op {
            CmpOp::Eq => cur.only(cmp.value),
            CmpOp::Ne => cur.remove(cmp.value),
            CmpOp::Lt => cur.clamp_le(cmp.value - 1),
            CmpOp::Le => cur.clamp_le(cmp.value),
            CmpOp::Gt => cur.clamp_ge(cmp.value + 1),
            CmpOp::Ge => cur.clamp_ge(cmp.value),
        };
        match next {
            Some(iv) => {
                map.insert(cmp.var.clone(), iv);
            }
            // Contradiction: this path cannot be taken.
            None => *env = Env::Unreachable,
        }
    }

    /// Applies the effect of the pattern *starting* at block-token
    /// index `j` to `env`. Patterns that don't start at `j` are
    /// ignored; the caller sweeps every position.
    fn step(&self, env: &mut Env, ts: &[usize], j: usize) {
        let Env::Known(_) = env else { return };
        let text = self.txt(ts, j);
        match self.kind(ts, j) {
            Some(TokenKind::Ident) => {}
            Some(TokenKind::Punct) if text == "&" && self.txt(ts, j + 1) == "mut" => {
                // `&mut x` hands out a write path the analysis cannot
                // see through: forget the variable.
                if self.kind(ts, j + 2) == Some(TokenKind::Ident) {
                    if let Env::Known(map) = env {
                        map.remove(self.txt(ts, j + 2));
                    }
                }
                return;
            }
            _ => return,
        }
        match text {
            "assert" | "debug_assert"
                if self.txt(ts, j + 1) == "!" && self.txt(ts, j + 2) == "(" =>
            {
                if let Some((cmp, _)) = self.parse_cmp(ts, j + 3) {
                    Self::constrain(env, &cmp);
                }
            }
            "assert_ne" | "debug_assert_ne"
                if self.txt(ts, j + 1) == "!" && self.txt(ts, j + 2) == "(" =>
            {
                // `assert_ne!(x, 0)` ⇒ x != 0.
                if self.kind(ts, j + 3) == Some(TokenKind::Ident) && self.txt(ts, j + 4) == "," {
                    if let Some((value, _)) = self.int_at(ts, j + 5) {
                        let cmp = Cmp {
                            var: self.txt(ts, j + 3).to_string(),
                            op: CmpOp::Ne,
                            value,
                        };
                        Self::constrain(env, &cmp);
                    }
                }
            }
            // `for i in a..b`: the CFG may split the `for` keyword from
            // the binding, so anchor on the `in` keyword (which only
            // occurs in `for` headers) with the bound ident before it.
            "in" if j >= 1 && self.kind(ts, j - 1) == Some(TokenKind::Ident) => {
                let var = self.txt(ts, j - 1).to_string();
                let Env::Known(map) = env else { return };
                // Literal `a..b` / `a..=b` endpoints bind a fresh,
                // bounded variable; anything else makes it unknown.
                let bound = self.int_at(ts, j + 1).and_then(|(lo, used)| {
                    let dots = j + 1 + used;
                    if self.txt(ts, dots) != "." || self.txt(ts, dots + 1) != "." {
                        return None;
                    }
                    let (inclusive, hi_at) = if self.txt(ts, dots + 2) == "=" {
                        (true, dots + 3)
                    } else {
                        (false, dots + 2)
                    };
                    let (hi, _) = self.int_at(ts, hi_at)?;
                    Some(Interval::new(lo, if inclusive { hi } else { hi - 1 }))
                });
                match bound {
                    Some(iv) if iv.lo <= iv.hi => {
                        map.insert(var, iv);
                    }
                    _ => {
                        map.remove(&var);
                    }
                }
            }
            _ => {
                // Assignment forms rooted at a plain identifier. Field
                // writes (`a.b = …`) and type ascriptions (`x: i32 =`)
                // are excluded by the previous-token guard.
                if j > 0 && matches!(self.txt(ts, j - 1), "." | ":") {
                    return;
                }
                let nxt = self.txt(ts, j + 1);
                if nxt == "="
                    && self.txt(ts, j + 2) != "="
                    && !matches!(
                        if j > 0 { self.txt(ts, j - 1) } else { "" },
                        "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                    )
                {
                    let Env::Known(map) = env else { return };
                    match self.rhs_value(map, ts, j + 2) {
                        Some(iv) => {
                            map.insert(text.to_string(), iv);
                        }
                        None => {
                            map.remove(text);
                        }
                    }
                } else if matches!(nxt, "+" | "-") && self.txt(ts, j + 2) == "=" {
                    let Env::Known(map) = env else { return };
                    let delta = self
                        .int_at(ts, j + 3)
                        .filter(|&(_, used)| self.txt(ts, j + 3 + used) == ";");
                    match (map.get(text).copied(), delta) {
                        (Some(iv), Some((d, _))) => {
                            let d = if nxt == "-" { -d } else { d };
                            map.insert(text.to_string(), iv.shift(d));
                        }
                        _ => {
                            map.remove(text);
                        }
                    }
                } else if matches!(nxt, "*" | "/" | "%" | "&" | "|" | "^")
                    && self.txt(ts, j + 2) == "="
                {
                    // Other compound assignments: forget.
                    if let Env::Known(map) = env {
                        map.remove(text);
                    }
                } else if matches!(nxt, "<" | ">")
                    && self.txt(ts, j + 2) == nxt
                    && self.txt(ts, j + 3) == "="
                {
                    // `x <<= k` / `x >>= k`.
                    if let Env::Known(map) = env {
                        map.remove(text);
                    }
                }
            }
        }
    }

    /// Evaluates a right-hand side at `i` (must run to the closing
    /// `;`): a literal, a tracked local, or `v.len()` (⇒ `[0, +∞]`).
    fn rhs_value(
        &self,
        map: &BTreeMap<String, Interval>,
        ts: &[usize],
        i: usize,
    ) -> Option<Interval> {
        if let Some((v, used)) = self.int_at(ts, i) {
            if self.txt(ts, i + used) == ";" {
                return Some(Interval::constant(v));
            }
            return None;
        }
        if self.kind(ts, i) == Some(TokenKind::Ident) {
            if self.txt(ts, i + 1) == ";" {
                return Some(
                    map.get(self.txt(ts, i))
                        .copied()
                        .unwrap_or_else(Interval::top),
                );
            }
            if self.txt(ts, i + 1) == "."
                && self.txt(ts, i + 2) == "len"
                && self.txt(ts, i + 3) == "("
                && self.txt(ts, i + 4) == ")"
                && self.txt(ts, i + 5) == ";"
            {
                return Some(Interval::new(0, POS_INF));
            }
        }
        None
    }

    /// The branch condition of `from` (the last `if`/`while`
    /// comparison in the block), if it is simple enough to refine on:
    /// a single `ident <op> lit` comparison, optionally part of an
    /// `&&` conjunction (every comparison conjunct is returned; any
    /// `||` disables refinement entirely).
    fn branch_cmps(&self, cfg: &Cfg, from: usize) -> Vec<Cmp> {
        let ts = &cfg.blocks[from].tokens;
        let kw = ts
            .iter()
            .enumerate()
            .rev()
            .find(|&(_, &vp)| {
                matches!(
                    self.file.tokens[self.code[vp]].text(&self.file.text),
                    "if" | "while"
                )
            })
            .map(|(i, _)| i);
        // A `while` head block holds only the condition — the keyword
        // sits in the predecessor. Its True/False successor pair marks
        // it as a condition anyway; parse from the top.
        let start = match kw {
            Some(i) => i + 1,
            None => 0,
        };
        // `if let` / `while let` bind patterns, not comparisons.
        if self.txt(ts, start) == "let" {
            return Vec::new();
        }
        if (start.saturating_sub(1)..ts.len()).any(|i| self.txt(ts, i) == "|") {
            return Vec::new();
        }
        let mut cmps = Vec::new();
        let mut i = start;
        while i < ts.len() {
            if let Some((cmp, next)) = self.parse_cmp(ts, i) {
                cmps.push(cmp);
                i = next;
            } else {
                i += 1;
            }
        }
        cmps
    }
}

impl Domain for IntervalDomain<'_> {
    type Fact = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg) -> Env {
        Env::Unreachable
    }

    fn boundary(&self, _cfg: &Cfg) -> Env {
        Env::Known(BTreeMap::new())
    }

    fn join(&self, acc: &mut Env, other: &Env) {
        match (&mut *acc, other) {
            (_, Env::Unreachable) => {}
            (Env::Unreachable, known) => *acc = known.clone(),
            (Env::Known(a), Env::Known(b)) => {
                // Pointwise hull; a variable missing on either side is
                // unknown on that path, hence unknown at the join.
                a.retain(|k, _| b.contains_key(k));
                for (k, iv) in a.iter_mut() {
                    *iv = iv.hull(b[k]);
                }
            }
        }
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &Env) -> Env {
        let mut env = fact.clone();
        let ts = &cfg.blocks[block].tokens;
        for j in 0..ts.len() {
            self.step(&mut env, ts, j);
        }
        env
    }

    fn refine_edge(&self, cfg: &Cfg, from: usize, kind: EdgeKind, fact: &Env) -> Env {
        let mut env = fact.clone();
        match kind {
            EdgeKind::True => {
                for cmp in self.branch_cmps(cfg, from) {
                    Self::constrain(&mut env, &cmp);
                }
            }
            EdgeKind::False => {
                // ¬(a && b) is a disjunction: only a lone comparison
                // refines the false edge soundly.
                let cmps = self.branch_cmps(cfg, from);
                if let [cmp] = cmps.as_slice() {
                    let neg = Cmp {
                        var: cmp.var.clone(),
                        op: cmp.op.negate(),
                        value: cmp.value,
                    };
                    Self::constrain(&mut env, &neg);
                }
            }
            _ => {}
        }
        env
    }

    fn widen(&self, old: &Env, new: &Env) -> Env {
        let (Env::Known(o), Env::Known(n)) = (old, new) else {
            return new.clone();
        };
        let mut widened = BTreeMap::new();
        for (k, niv) in n {
            let iv = match o.get(k) {
                Some(oiv) => {
                    let lo = if niv.lo < oiv.lo { NEG_INF } else { niv.lo };
                    let hi = if niv.hi > oiv.hi { POS_INF } else { niv.hi };
                    let mut w = Interval::new(lo, hi);
                    w.nonzero = niv.excludes_zero() && oiv.excludes_zero();
                    w
                }
                None => *niv,
            };
            widened.insert(k.clone(), iv);
        }
        Env::Known(widened)
    }
}

/// Replays the block prefix `ts[..upto]` on top of `entry`, yielding
/// the environment *before* the token at block index `upto` — the
/// query the value-range pass makes at each division site.
#[must_use]
pub fn env_before(
    dom: &IntervalDomain<'_>,
    cfg: &Cfg,
    block: usize,
    upto: usize,
    entry: &Env,
) -> Env {
    let mut env = entry.clone();
    let ts = &cfg.blocks[block].tokens;
    for j in 0..upto.min(ts.len()) {
        dom.step(&mut env, ts, j);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::solve_domain;
    use crate::passes::code_indices;

    fn cfg_of(src: &str) -> (Cfg, SourceFile, Vec<usize>) {
        let file = SourceFile::analyze("t.rs".into(), "hqs-test".into(), src.into());
        let code = code_indices(&file);
        let cfgs = crate::cfg::build_all(&file, &code);
        assert_eq!(cfgs.len(), 1);
        (cfgs.into_iter().next().expect("cfg"), file, code)
    }

    fn env_at_marker(src: &str, marker: &str) -> Env {
        let (cfg, file, code) = cfg_of(src);
        let dom = IntervalDomain::new(&file, &code);
        let sol = solve_domain(&cfg, &dom);
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (j, &vp) in block.tokens.iter().enumerate() {
                if file.tokens[code[vp]].text(&file.text) == marker {
                    return env_before(&dom, &cfg, b, j, &sol.in_[b]);
                }
            }
        }
        panic!("marker {marker} not found");
    }

    #[test]
    fn literal_let_and_shift() {
        let env = env_at_marker("fn f() { let mut x = 3; x += 2; marker; }", "marker");
        assert_eq!(env.get("x"), Interval::constant(5));
    }

    #[test]
    fn copy_and_reassign_unknown() {
        let env = env_at_marker(
            "fn f(n: usize) { let x = 7; let y = x; let z = n; marker; }",
            "marker",
        );
        assert_eq!(env.get("y"), Interval::constant(7));
        assert_eq!(env.get("z"), Interval::top());
    }

    #[test]
    fn true_edge_refines_false_edge_negates() {
        let src = "fn f(n: i64) { if n != 0 { t_mark; } else { e_mark; } }";
        let t = env_at_marker(src, "t_mark");
        assert!(t.get("n").excludes_zero());
        let e = env_at_marker(src, "e_mark");
        assert_eq!(e.get("n"), Interval::constant(0));
    }

    #[test]
    fn guard_with_conjunction_refines_true_only() {
        let src = "fn f(n: i64, m: i64) { if n > 0 && m < 4 { t_mark; } else { e_mark; } }";
        let t = env_at_marker(src, "t_mark");
        assert_eq!(t.get("n").lo, 1);
        assert_eq!(t.get("m").hi, 3);
        // The false edge of a conjunction proves nothing about either.
        let e = env_at_marker(src, "e_mark");
        assert_eq!(e.get("n"), Interval::top());
        assert_eq!(e.get("m"), Interval::top());
    }

    #[test]
    fn assert_constrains() {
        let env = env_at_marker("fn f(n: i64) { assert!(n > 2); marker; }", "marker");
        assert_eq!(env.get("n").lo, 3);
    }

    #[test]
    fn join_hulls_and_drops() {
        let src = "fn f(c: bool) { let mut x = 1; if c { x = 9; } else { x = 2; } marker; }";
        let env = env_at_marker(src, "marker");
        assert_eq!(env.get("x"), Interval::new(2, 9));
    }

    #[test]
    fn loop_increment_widens_to_infinity() {
        let src = "fn f() { let mut x = 0; loop { x += 1; if c { break; } } marker; }";
        let env = env_at_marker(src, "marker");
        let iv = env.get("x");
        assert_eq!(iv.hi, POS_INF, "{iv:?}");
        assert!(iv.lo <= 1, "{iv:?}"); // lower bound stays finite
    }

    #[test]
    fn for_range_binds_bounds() {
        let env = env_at_marker("fn f() { for i in 0..10 { marker; } }", "marker");
        assert_eq!(env.get("i"), Interval::new(0, 9));
    }

    #[test]
    fn mut_borrow_forgets() {
        let env = env_at_marker("fn f() { let mut x = 3; touch(&mut x); marker; }", "marker");
        assert_eq!(env.get("x"), Interval::top());
    }

    // ---- lattice laws ----

    fn samples() -> Vec<Interval> {
        vec![
            Interval::constant(0),
            Interval::constant(5),
            Interval::new(-3, 7),
            Interval::new(1, POS_INF),
            Interval::new(NEG_INF, -1),
            Interval::top(),
            Interval::top().remove(0).expect("nonzero top"),
        ]
    }

    fn le(a: Interval, b: Interval) -> bool {
        // a ⊑ b: every value of a is a value of b.
        b.lo <= a.lo && a.hi <= b.hi && (a.excludes_zero() || !b.excludes_zero())
    }

    #[test]
    fn interval_hull_semilattice_laws() {
        for a in samples() {
            assert_eq!(a.hull(a), a, "idempotence {a:?}");
            for b in samples() {
                assert_eq!(a.hull(b), b.hull(a), "commutativity");
                assert!(le(a, a.hull(b)) && le(b, a.hull(b)), "upper bound");
                for c in samples() {
                    assert_eq!(a.hull(b).hull(c), a.hull(b.hull(c)), "associativity");
                }
            }
        }
    }

    #[test]
    fn widen_is_an_upper_bound_of_new() {
        let (cfg, file, code) = cfg_of("fn f() { a; }");
        let _ = &cfg;
        let dom = IntervalDomain::new(&file, &code);
        for o in samples() {
            for n in samples() {
                let mut old = BTreeMap::new();
                old.insert("x".to_string(), o);
                let mut new = BTreeMap::new();
                new.insert("x".to_string(), n);
                let w = dom.widen(&Env::Known(old), &Env::Known(new));
                assert!(le(n, w.get("x")), "widen({o:?}, {n:?}) = {:?}", w.get("x"));
            }
        }
    }

    /// Transfer monotonicity: a larger entry environment never yields a
    /// smaller exit environment.
    #[test]
    fn interval_transfer_is_monotone() {
        let (cfg, file, code) = cfg_of("fn f() { x += 1; assert!(x > 0); let y = x; }");
        let dom = IntervalDomain::new(&file, &code);
        // Find the single interior block carrying the statements.
        let block = cfg
            .blocks
            .iter()
            .position(|b| !b.tokens.is_empty())
            .expect("body block");
        for a in samples() {
            for b in samples() {
                if !le(a, b) {
                    continue;
                }
                let mut ea = BTreeMap::new();
                ea.insert("x".to_string(), a);
                let mut eb = BTreeMap::new();
                eb.insert("x".to_string(), b);
                let ta = dom.transfer(&cfg, block, &Env::Known(ea));
                let tb = dom.transfer(&cfg, block, &Env::Known(eb));
                match (&ta, &tb) {
                    (Env::Unreachable, _) => {} // ⊥ ⊑ anything
                    (Env::Known(_), Env::Unreachable) => {
                        panic!("larger input became unreachable: {a:?} vs {b:?}")
                    }
                    (Env::Known(ma), Env::Known(_)) => {
                        for var in ma.keys() {
                            assert!(
                                le(ta.get(var), tb.get(var)),
                                "{var}: {:?} ⋢ {:?} (inputs {a:?} ⊑ {b:?})",
                                ta.get(var),
                                tb.get(var)
                            );
                        }
                    }
                }
            }
        }
    }
}
