//! Minimal Cargo.toml reading for the layering pass.
//!
//! This is not a TOML parser — it understands exactly the subset the
//! workspace's manifests use: `[section]` headers, `key = "value"`
//! pairs, and `key = { path = "...", ... }` inline tables. That is all
//! the layering pass needs to recover the declared dependency graph.

/// A parsed crate manifest: the package name plus its declared
/// dependencies, split by kind.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// `[dependencies]` entries (crate names as written).
    pub deps: Vec<String>,
    /// `[dev-dependencies]` entries.
    pub dev_deps: Vec<String>,
}

/// Parses the subset of Cargo.toml described in the module docs.
#[must_use]
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if let Some(name) = rest.strip_suffix(']') {
                section = name.trim().to_string();
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"').to_string();
        let value = line[eq + 1..].trim();
        // Dependencies are commonly written with dotted keys
        // (`hqs-base.workspace = true`); the crate name is the first
        // segment.
        let dep_name = key.split('.').next().unwrap_or(&key).to_string();
        match section.as_str() {
            "package" if key == "name" => {
                m.name = value.trim_matches('"').to_string();
            }
            "dependencies" => m.deps.push(dep_name),
            "dev-dependencies" => m.dev_deps.push(dep_name),
            _ => {}
        }
    }
    m
}

fn strip_comment(line: &str) -> &str {
    // Good enough: none of the workspace manifests put `#` in strings.
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let m = parse(
            r#"
[package]
name = "hqs-sat" # the CDCL solver
version.workspace = true

[dependencies]
hqs-base = { path = "../base" }
hqs-cnf = { path = "../cnf" }

[dev-dependencies]
hqs-proof = { path = "../proof" }
"#,
        );
        assert_eq!(m.name, "hqs-sat");
        assert_eq!(m.deps, vec!["hqs-base", "hqs-cnf"]);
        assert_eq!(m.dev_deps, vec!["hqs-proof"]);
    }

    #[test]
    fn empty_sections() {
        let m = parse("[package]\nname = \"x\"\n[dependencies]\n");
        assert_eq!(m.name, "x");
        assert!(m.deps.is_empty());
    }
}
