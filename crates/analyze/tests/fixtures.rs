//! Fixture-corpus integration tests: every seeded violation class in
//! `crates/analyze/fixtures/` must be detected, the clean fixtures must
//! produce zero findings, and every finding must survive a JSON
//! round-trip.
//!
//! The tests build [`Workspace`] values in memory (the fixture files are
//! excluded from real workspace walks) so the layering tests can pair
//! sources with synthetic manifests.

use std::path::PathBuf;

use hqs_analyze::callgraph::CallGraph;
use hqs_analyze::config::{AnalyzeConfig, HotFn, HotPaths, OrderingSite};
use hqs_analyze::diag::{self, Diagnostic};
use hqs_analyze::manifest::Manifest;
use hqs_analyze::passes::value_range::Proofs;
use hqs_analyze::passes::{
    self, determinism, hot_alloc, hot_transitive, layering, newtype, panic_path, source_audit,
    value_range,
};
use hqs_analyze::source::SourceFile;
use hqs_analyze::workspace::{CrateInfo, Workspace};

const BAD_PANIC: &str = include_str!("../fixtures/bad_panic.rs");
const BAD_TRANSITIVE: &str = include_str!("../fixtures/bad_transitive.rs");
const BAD_CANCEL: &str = include_str!("../fixtures/bad_cancel.rs");
const BAD_CANCEL_PATHS: &str = include_str!("../fixtures/bad_cancel_paths.rs");
const BAD_ORDERING: &str = include_str!("../fixtures/bad_ordering.rs");
const BAD_LOCKHOLD: &str = include_str!("../fixtures/bad_lockhold.rs");
const BAD_LOCKORDER: &str = include_str!("../fixtures/bad_lockorder.rs");
const CLEAN_TRANSITIVE: &str = include_str!("../fixtures/clean_transitive.rs");
const CLEAN_CONCURRENCY: &str = include_str!("../fixtures/clean_concurrency.rs");
const BAD_ALLOC: &str = include_str!("../fixtures/bad_alloc.rs");
const BAD_NEWTYPE: &str = include_str!("../fixtures/bad_newtype.rs");
const BAD_AUDIT: &str = include_str!("../fixtures/bad_audit.rs");
const BAD_ANNOTATIONS: &str = include_str!("../fixtures/bad_annotations.rs");
const BAD_LAYERING: &str = include_str!("../fixtures/bad_layering.rs");
const CLEAN_HOT: &str = include_str!("../fixtures/clean_hot.rs");
const CLEAN_STRINGS: &str = include_str!("../fixtures/clean_strings.rs");
const BAD_DETERMINISM: &str = include_str!("../fixtures/bad_determinism.rs");
const CLEAN_DETERMINISM: &str = include_str!("../fixtures/clean_determinism.rs");
const BAD_VALUE_RANGE: &str = include_str!("../fixtures/bad_value_range.rs");
const CLEAN_VALUE_RANGE: &str = include_str!("../fixtures/clean_value_range.rs");

fn member(name: &str, dir: &str, deps: &[&str], dev_deps: &[&str]) -> CrateInfo {
    CrateInfo {
        name: name.to_string(),
        dir: dir.to_string(),
        manifest: Manifest {
            name: name.to_string(),
            deps: deps.iter().map(ToString::to_string).collect(),
            dev_deps: dev_deps.iter().map(ToString::to_string).collect(),
        },
    }
}

fn workspace(crates: Vec<CrateInfo>, files: Vec<(&str, &str, &str)>) -> Workspace {
    Workspace {
        root: PathBuf::from("."),
        crates,
        files: files
            .into_iter()
            .map(|(path, crate_name, text)| {
                SourceFile::analyze(path.to_string(), crate_name.to_string(), text.to_string())
            })
            .collect(),
    }
}

fn hot_propagate() -> HotPaths {
    HotPaths {
        functions: vec![HotFn {
            crate_name: "hqs-sat".to_string(),
            symbol: "Solver::propagate".to_string(),
        }],
    }
}

fn cfg_with(hot: HotPaths) -> AnalyzeConfig {
    AnalyzeConfig {
        hot,
        ..AnalyzeConfig::default()
    }
}

fn count_containing(diags: &[Diagnostic], needle: &str) -> usize {
    diags.iter().filter(|d| d.message.contains(needle)).count()
}

#[test]
fn bad_panic_detects_every_class() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_panic.rs", "hqs-sat", BAD_PANIC)],
    );
    let diags = panic_path::run(&ws, &hot_propagate());
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert_eq!(count_containing(&diags, "`.unwrap(…)`"), 1);
    assert_eq!(count_containing(&diags, "`.expect(…)`"), 1);
    assert_eq!(count_containing(&diags, "`panic!`"), 1);
    assert_eq!(count_containing(&diags, "`unreachable!`"), 1);
    assert_eq!(count_containing(&diags, "`[…]` indexing"), 1);
    // Only the declared-hot fn is held to the standard; `cold_helper`
    // indexes a slice without any finding.
    assert!(diags.iter().all(|d| d.symbol == "Solver::propagate"));
}

#[test]
fn bad_alloc_detects_every_class() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_alloc.rs", "hqs-sat", BAD_ALLOC)],
    );
    let diags = hot_alloc::run(&ws, &hot_propagate());
    assert_eq!(diags.len(), 7, "{diags:#?}");
    for needle in [
        "`.clone()`",
        "`.to_vec()`",
        "`.collect()`",
        "`Vec::new`",
        "`Box::new`",
        "`format!`",
        "`vec!`",
    ] {
        assert_eq!(count_containing(&diags, needle), 1, "missing {needle}");
    }
    // The post-loop `to_string` allocation is fine even in a hot fn.
    assert!(diags.iter().all(|d| d.line <= 21), "{diags:#?}");
}

#[test]
fn bad_newtype_detects_every_class() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &["hqs-base"], &[])],
        vec![("crates/sat/src/bad_newtype.rs", "hqs-sat", BAD_NEWTYPE)],
    );
    let diags = newtype::run(&ws);
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert_eq!(count_containing(&diags, "`.index() as usize`"), 2);
    assert_eq!(count_containing(&diags, "`.code() as usize`"), 1);
    assert_eq!(count_containing(&diags, "integer-literal arithmetic"), 1);
    assert_eq!(count_containing(&diags, "`Var::new(…)`"), 1);
}

#[test]
fn newtype_pass_exempts_base_and_tests() {
    let ws = workspace(
        vec![member("hqs-base", "crates/base", &[], &[])],
        vec![
            ("crates/base/src/bad_newtype.rs", "hqs-base", BAD_NEWTYPE),
            ("crates/sat/tests/bad_newtype.rs", "hqs-sat", BAD_NEWTYPE),
        ],
    );
    assert!(newtype::run(&ws).is_empty());
}

#[test]
fn bad_audit_detects_every_class() {
    // As a crate root the file is also missing #![forbid(unsafe_code)]
    // and `//!` docs.
    let ws = workspace(
        vec![member("hqs-audit", "crates/audit", &[], &[])],
        vec![("crates/audit/src/lib.rs", "hqs-audit", BAD_AUDIT)],
    );
    let findings = source_audit::run(&ws);
    assert_eq!(findings.hard.len(), 5, "{:#?}", findings.hard);
    assert_eq!(count_containing(&findings.hard, "`todo!`"), 1);
    assert_eq!(count_containing(&findings.hard, "`unimplemented!`"), 1);
    assert_eq!(count_containing(&findings.hard, "`dbg!`"), 1);
    assert_eq!(count_containing(&findings.hard, "forbid(unsafe_code)"), 1);
    assert_eq!(
        count_containing(&findings.hard, "crate-level documentation"),
        1
    );
    assert_eq!(
        findings.unwrap_sites.len(),
        1,
        "{:#?}",
        findings.unwrap_sites
    );
    assert_eq!(findings.unwrap_sites[0].symbol, "risky");
}

#[test]
fn bad_annotations_are_findings() {
    let ws = workspace(
        vec![member("hqs-base", "crates/base", &[], &[])],
        vec![("crates/base/src/ann.rs", "hqs-base", BAD_ANNOTATIONS)],
    );
    let diags = passes::run_all(&ws, &AnalyzeConfig::default());
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.pass == "annotation"));
    assert_eq!(count_containing(&diags, "empty reason"), 1);
    assert_eq!(count_containing(&diags, "unknown allow kind"), 1);
    // The well-formed allow(alloc) covers lines that never produce an
    // alloc finding: the two-way ratchet reports it as stale.
    let stale = diags
        .iter()
        .find(|d| d.message.contains("suppresses nothing"))
        .expect("stale-allow finding");
    assert_eq!(stale.line, 9);
    assert!(
        stale.message.contains("stale `analyze::allow(alloc)`"),
        "{}",
        stale.message
    );
}

#[test]
fn bad_layering_detects_every_class() {
    // hqs-base declaring a dependency on hqs-cnf is both outside its
    // allowed set and a declared cycle; hqs-rogue is not registered in
    // the layering table; the source fixture uses a dev-dependency
    // outside tests, an undeclared crate, and another crate's internal
    // module.
    let ws = workspace(
        vec![
            member("hqs-base", "crates/base", &["hqs-cnf"], &[]),
            member("hqs-cnf", "crates/cnf", &["hqs-base"], &[]),
            member("hqs-proof", "crates/proof", &["hqs-base", "hqs-cnf"], &[]),
            member("hqs-rogue", "crates/rogue", &[], &[]),
            member("hqs-sat", "crates/sat", &["hqs-base"], &["hqs-proof"]),
        ],
        vec![("crates/sat/src/lib.rs", "hqs-sat", BAD_LAYERING)],
    );
    let diags = layering::run(&ws);
    assert_eq!(diags.len(), 6, "{diags:#?}");
    assert_eq!(
        count_containing(&diags, "is not registered in the layering table"),
        1
    );
    assert_eq!(count_containing(&diags, "may not depend on"), 1);
    assert_eq!(count_containing(&diags, "dependency cycle"), 1);
    assert_eq!(
        count_containing(&diags, "dev-dependency and may only be used from test code"),
        1
    );
    assert_eq!(count_containing(&diags, "is not a declared dependency"), 1);
    assert_eq!(
        count_containing(&diags, "reaches into an internal module"),
        1
    );
}

#[test]
fn bad_transitive_flags_panic_with_full_call_chain() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/bad_transitive.rs",
            "hqs-sat",
            BAD_TRANSITIVE,
        )],
    );
    let diags = passes::run_all(&ws, &cfg_with(hot_propagate()));
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.pass == "hot-transitive"));
    let unwrap = diags
        .iter()
        .find(|d| d.message.contains("`.unwrap(…)`"))
        .expect("unwrap finding");
    assert_eq!(unwrap.symbol, "Solver::helper_two");
    // The diagnostic names the full chain from the seed to the sink.
    assert!(
        unwrap.message.contains(
            "[hot via hqs-sat::Solver::propagate → Solver::helper_one → Solver::helper_two]"
        ),
        "{}",
        unwrap.message
    );
    // Implicit panic shapes are reported through the whole closure,
    // seed included: `split_at` in the seed, `%` by a non-literal in a
    // reached helper.
    let split = diags
        .iter()
        .find(|d| d.message.contains("`.split_at(…)`"))
        .expect("split_at finding");
    assert_eq!(split.symbol, "Solver::propagate");
    let div = diags
        .iter()
        .find(|d| d.message.contains("`%` by a non-literal divisor"))
        .expect("modulo finding");
    assert_eq!(div.symbol, "Solver::helper_one");
    assert!(div.message.contains("checked_rem"), "{}", div.message);
}

#[test]
fn bad_cancel_flags_only_the_unpolled_loop() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_cancel.rs", "hqs-sat", BAD_CANCEL)],
    );
    let cfg = AnalyzeConfig {
        cancel: vec![HotFn {
            crate_name: "hqs-sat".to_string(),
            symbol: "Solver::solve_rounds".to_string(),
        }],
        ..AnalyzeConfig::default()
    };
    let diags = passes::run_all(&ws, &cfg);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.pass, "cancel-poll");
    assert_eq!(d.symbol, "Solver::solve_rounds");
    // The polled `loop` (budget.check) passes; only the bare `while`
    // spin is flagged, anchored at its header, with the concrete
    // unpolled iteration path rendered.
    assert_eq!(d.line, 27, "{diags:#?}");
    assert!(
        d.message
            .contains("without a cancellation poll [path: L27 → L29 → back to L27]"),
        "{}",
        d.message
    );
}

#[test]
fn cancel_paths_labeled_break_and_question_edges() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/bad_cancel_paths.rs",
            "hqs-sat",
            BAD_CANCEL_PATHS,
        )],
    );
    let cfg = AnalyzeConfig {
        cancel: ["Solver::solve_rounds", "Solver::solve_inner"]
            .iter()
            .map(|s| HotFn {
                crate_name: "hqs-sat".to_string(),
                symbol: (*s).to_string(),
            })
            .collect(),
        ..AnalyzeConfig::default()
    };
    let diags = passes::run_all(&ws, &cfg);
    // `solve_rounds` polls at the head; its `?` early exit and labeled
    // `break 'outer` are extra exits, not unpolled cycles. Only
    // `solve_inner`'s fast-path `continue` is flagged.
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.pass, "cancel-poll");
    assert_eq!(d.symbol, "Solver::solve_inner");
    assert_eq!(d.line, 37, "{diags:#?}");
    assert!(
        d.message.contains("without a cancellation poll [path:")
            && d.message.contains("back to L37"),
        "{}",
        d.message
    );
}

#[test]
fn bad_lockorder_cycle_renders_both_chains() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_lockorder.rs", "hqs-sat", BAD_LOCKORDER)],
    );
    let analysis = passes::analyze(&ws, &AnalyzeConfig::default());
    // The graph has both directions: alpha → beta composed through the
    // `grab_beta` call, beta → alpha intra-function.
    assert_eq!(
        analysis.lock_graph.cycles(),
        vec![vec![
            "hqs-sat/alpha".to_string(),
            "hqs-sat/beta".to_string()
        ]]
    );
    assert_eq!(analysis.diags.len(), 1, "{:#?}", analysis.diags);
    let d = &analysis.diags[0];
    assert_eq!(d.pass, "lock-order");
    assert_eq!(d.symbol, "hqs-sat/alpha ⇄ hqs-sat/beta");
    assert!(
        d.message
            .contains("lock-order cycle between {hqs-sat/alpha, hqs-sat/beta}"),
        "{}",
        d.message
    );
    // Composed chain: alpha held, call reaches beta through the graph.
    assert!(
        d.message.contains(
            "`hqs-sat/alpha` held via `guard` (crates/sat/src/bad_lockorder.rs:16) → \
             Pair::forward calls Pair::grab_beta at crates/sat/src/bad_lockorder.rs:17, \
             which acquires `hqs-sat/beta`"
        ),
        "{}",
        d.message
    );
    // Intra chain: beta held, alpha temp-acquired two lines later.
    assert!(
        d.message.contains(
            "`hqs-sat/beta` held via `g` (crates/sat/src/bad_lockorder.rs:28) → acquires \
             `hqs-sat/alpha` at crates/sat/src/bad_lockorder.rs:29 in Pair::backward"
        ),
        "{}",
        d.message
    );
}

#[test]
fn bad_ordering_flags_unlisted_site_and_stale_entry() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_ordering.rs", "hqs-sat", BAD_ORDERING)],
    );
    let cfg = AnalyzeConfig {
        ordering_allow: vec![OrderingSite {
            path: "crates/sat/src/bad_ordering.rs".to_string(),
            symbol: "Flag::clear".to_string(),
            variant: "Release".to_string(),
        }],
        ..AnalyzeConfig::default()
    };
    let diags = passes::run_all(&ws, &cfg);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.pass == "concurrency-ordering"));
    assert_eq!(
        count_containing(&diags, "is not in the committed allowlist"),
        1
    );
    assert_eq!(
        count_containing(&diags, "stale ordering allowlist entry"),
        1
    );
}

#[test]
fn bad_lockhold_flags_solver_call_and_alloc_under_guard() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![("crates/sat/src/bad_lockhold.rs", "hqs-sat", BAD_LOCKHOLD)],
    );
    let diags = passes::run_all(&ws, &cfg_with(hot_propagate()));
    let lock: Vec<_> = diags
        .iter()
        .filter(|d| d.pass == "concurrency-lock")
        .collect();
    assert_eq!(lock.len(), 2, "{diags:#?}");
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(lock.iter().any(|d| d
        .message
        .contains("solver call `solve(…)` while MutexGuard `guard`")));
    assert!(lock
        .iter()
        .any(|d| d.message.contains("allocation while MutexGuard `guard`")));
}

#[test]
fn clean_concurrency_with_allowlisted_site_is_clean() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/clean_concurrency.rs",
            "hqs-sat",
            CLEAN_CONCURRENCY,
        )],
    );
    let cfg = AnalyzeConfig {
        hot: hot_propagate(),
        ordering_allow: vec![OrderingSite {
            path: "crates/sat/src/clean_concurrency.rs".to_string(),
            symbol: "Solver::propagate".to_string(),
            variant: "Relaxed".to_string(),
        }],
        ..AnalyzeConfig::default()
    };
    let diags = passes::run_all(&ws, &cfg);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn clean_fixtures_produce_zero_findings() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![
            ("crates/sat/src/clean_hot.rs", "hqs-sat", CLEAN_HOT),
            ("crates/sat/src/clean_strings.rs", "hqs-sat", CLEAN_STRINGS),
            (
                "crates/sat/src/clean_transitive.rs",
                "hqs-sat",
                CLEAN_TRANSITIVE,
            ),
        ],
    );
    let diags = passes::run_all(&ws, &cfg_with(hot_propagate()));
    assert!(diags.is_empty(), "{diags:#?}");
    let findings = source_audit::run(&ws);
    assert!(findings.hard.is_empty(), "{:#?}", findings.hard);
    assert!(
        findings.unwrap_sites.is_empty(),
        "{:#?}",
        findings.unwrap_sites
    );
}

fn det_root() -> AnalyzeConfig {
    AnalyzeConfig {
        determinism_roots: vec![HotFn {
            crate_name: "hqs-sat".to_string(),
            symbol: "Writer::emit".to_string(),
        }],
        ..AnalyzeConfig::default()
    }
}

#[test]
fn bad_determinism_flags_every_source_with_chain() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/bad_determinism.rs",
            "hqs-sat",
            BAD_DETERMINISM,
        )],
    );
    let graph = CallGraph::build(&ws);
    let diags = determinism::run(&ws, &det_root(), &graph);
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.pass == "determinism"));
    assert_eq!(
        count_containing(&diags, "`for` over hash-bound `counts`"),
        1
    );
    assert_eq!(count_containing(&diags, "`counts.keys()`"), 1);
    assert_eq!(count_containing(&diags, "`Instant::now()`"), 1);
    assert_eq!(count_containing(&diags, "`env::var`"), 1);
    // The wall-clock finding names the seed-to-sink chain verbatim.
    let clock = diags
        .iter()
        .find(|d| d.message.contains("Instant"))
        .expect("wall-clock finding");
    assert_eq!(clock.symbol, "Writer::stamp");
    assert!(
        clock
            .message
            .contains("[deterministic via hqs-sat::Writer::emit → Writer::stamp]"),
        "{}",
        clock.message
    );
}

#[test]
fn clean_determinism_reports_nothing() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/clean_determinism.rs",
            "hqs-sat",
            CLEAN_DETERMINISM,
        )],
    );
    // Through `run_all` so the two-way ratchet also validates the
    // fixture's allow annotation as *used* (a stale allow would be a
    // finding of its own).
    let diags = passes::run_all(&ws, &det_root());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn bad_value_range_keeps_unprovable_sites_and_advises_hot_loop() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/bad_value_range.rs",
            "hqs-sat",
            BAD_VALUE_RANGE,
        )],
    );
    let analysis = passes::analyze(&ws, &cfg_with(hot_propagate()));
    // Wrong-variable guard, missing guard, and a bound killed by
    // `clear()` all stay findings; the loop-guarded `v[i]` does not.
    assert_eq!(analysis.diags.len(), 3, "{:#?}", analysis.diags);
    assert!(analysis.diags.iter().all(|d| d.pass == "hot-transitive"));
    assert_eq!(
        count_containing(&analysis.diags, "`/` by a non-literal divisor"),
        1
    );
    assert_eq!(count_containing(&analysis.diags, "`.split_at(…)`"), 2);
    // The monotone-index loop earns exactly one iterator advisory.
    assert_eq!(analysis.advisories.len(), 1, "{:#?}", analysis.advisories);
    let adv = &analysis.advisories[0];
    assert_eq!(adv.pass, "value-range");
    assert_eq!(adv.symbol, "sum_squares");
    assert!(
        adv.message.contains("`v[i]`") && adv.message.contains("iter().enumerate()"),
        "{}",
        adv.message
    );
}

#[test]
fn clean_value_range_proofs_discharge_every_site() {
    let ws = workspace(
        vec![member("hqs-sat", "crates/sat", &[], &[])],
        vec![(
            "crates/sat/src/clean_value_range.rs",
            "hqs-sat",
            CLEAN_VALUE_RANGE,
        )],
    );
    let cfg = cfg_with(hot_propagate());
    let graph = CallGraph::build(&ws);
    // Before: with no proofs, every guarded site is an implicit-panic
    // finding — the false-positive class the refinement removes.
    let before = hot_transitive::run(&ws, &cfg, &graph, &Proofs::default());
    assert_eq!(before.len(), 4, "{before:#?}");
    // After: the interval and bounds-predicate dataflow prove all of
    // them, and nothing else in the analysis fires.
    let vr = value_range::run(&ws, &cfg, &graph);
    assert_eq!(vr.proofs.len(), 4);
    let analysis = passes::analyze(&ws, &cfg);
    assert!(analysis.diags.is_empty(), "{:#?}", analysis.diags);
    assert!(analysis.advisories.is_empty(), "{:#?}", analysis.advisories);
}

#[test]
fn every_fixture_finding_round_trips_through_json() {
    let sat = |path: &str, text: &str| {
        workspace(
            vec![member("hqs-sat", "crates/sat", &[], &[])],
            vec![(path, "hqs-sat", text)],
        )
    };
    let hot = hot_propagate();
    let mut all = Vec::new();
    all.extend(panic_path::run(
        &sat("crates/sat/src/a.rs", BAD_PANIC),
        &hot,
    ));
    all.extend(hot_alloc::run(&sat("crates/sat/src/b.rs", BAD_ALLOC), &hot));
    all.extend(newtype::run(&sat("crates/sat/src/c.rs", BAD_NEWTYPE)));
    let audit = source_audit::run(&sat("crates/sat/src/lib.rs", BAD_AUDIT));
    all.extend(audit.hard);
    all.extend(audit.unwrap_sites);
    all.extend(passes::run_all(
        &sat("crates/sat/src/d.rs", BAD_ANNOTATIONS),
        &AnalyzeConfig::default(),
    ));
    assert!(
        all.len() >= 20,
        "fixture corpus shrank to {} findings",
        all.len()
    );
    let text = diag::to_json_array(&all);
    let back = diag::from_json_array(&text).expect("round-trip parse");
    assert_eq!(all, back);
}
