//! Regression tests against the *real* workspace, not fixtures: the
//! call-graph resolver and the lock-order graph are only useful if
//! they keep working on the code they were built for, so `cargo test`
//! itself holds the line.

use std::path::Path;

use hqs_analyze::callgraph::CallGraph;
use hqs_analyze::config;
use hqs_analyze::passes::{determinism, lock_order};
use hqs_analyze::Workspace;

fn load_real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    Workspace::load(&root).expect("load real workspace")
}

/// The resolver floor also gates CI (`[callgraph]
/// min-resolution-percent` under `--check-baseline`), but that only
/// fires when CI runs xtask; this keeps the floor under plain
/// `cargo test` so a resolver regression fails close to the edit.
#[test]
fn call_site_resolution_rate_stays_above_floor() {
    let ws = load_real_workspace();
    assert!(
        ws.files.len() > 50,
        "workspace walk found only {} files — wrong root?",
        ws.files.len()
    );
    let graph = CallGraph::build(&ws);
    let rate = graph.stats.resolution_rate();
    assert!(
        rate >= 92.0,
        "call-site resolution rate {rate:.2}% fell below the 92% floor \
         ({} of {} production sites resolved or external)",
        graph.stats.resolved + graph.stats.external,
        graph.stats.total_sites
    );
}

/// The workspace's locks must stay in an acyclic acquisition order —
/// the lock-order pass fails CI on a cycle, and this asserts the same
/// invariant (plus non-trivial coverage) from `cargo test`.
#[test]
fn workspace_lock_order_graph_is_acyclic() {
    let ws = load_real_workspace();
    let graph = CallGraph::build(&ws);
    let lock_graph = lock_order::build(&ws, &graph);
    assert!(
        lock_graph.nodes.len() >= 4,
        "expected the engine/obs lock classes to be discovered, got {:?}",
        lock_graph.nodes
    );
    let cycles = lock_graph.cycles();
    assert!(
        cycles.is_empty(),
        "lock-order cycle(s) in the workspace: {cycles:?}"
    );
}

/// Everything reachable from the `[determinism]` roots in
/// analyze-hot-paths.toml is run-to-run reproducible: the taint pass
/// must stay clean on the real workspace (unjustified hash-order
/// iteration, wall-clock, or environment reads fail here before CI).
#[test]
fn workspace_determinism_closure_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let ws = load_real_workspace();
    let text = std::fs::read_to_string(root.join("analyze-hot-paths.toml"))
        .expect("read analyze-hot-paths.toml");
    let (cfg, warnings) = config::parse(&text);
    assert!(warnings.is_empty(), "config warnings: {warnings:?}");
    assert!(
        cfg.determinism_roots.len() >= 4,
        "expected the solve/certificate roots to be configured, got {:?}",
        cfg.determinism_roots
    );
    let graph = CallGraph::build(&ws);
    let diags = determinism::run(&ws, &cfg, &graph);
    assert!(
        diags.is_empty(),
        "nondeterminism reached a solver output path:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}:{} {}", d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
