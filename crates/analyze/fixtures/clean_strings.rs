//! Fixture: banned tokens inside strings and comments are data, not
//! code. The lexer must produce zero findings here.
//!
//! Docs may mention `.unwrap()` and `panic!` and `todo!(` freely.

pub struct Solver {
    messages: Vec<String>,
}

impl Solver {
    pub fn propagate(&mut self) -> usize {
        /* a block comment with .unwrap() and v[0] inside
           /* even nested: panic!("no") and Vec::new() */
           still one comment */
        let mut total = 0;
        for m in &self.messages {
            // .unwrap() in a line comment is fine, as is x[0].
            total += m.len();
        }
        total
    }

    pub fn banned_catalogue(&self) -> (&'static str, &'static str, char, u8) {
        let plain = ".unwrap() and .expect(msg) and panic!(now) and v[0]";
        let raw = r#"dbg!(x) and todo!() and "quoted .unwrap()" here"#;
        let hashed = r##"raw with "# inside: Vec::new() in a loop"##;
        let lifetime_not_char: &'static str = plain;
        let ch = 'a';
        let byte = b'x';
        let bytes = b"clone() to_vec() collect()";
        let _ = (raw, hashed, bytes);
        (lifetime_not_char, "format!(no) vec![1] Box::new(2)", ch, byte)
    }
}
