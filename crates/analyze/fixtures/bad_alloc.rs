//! Fixture: every hot-loop allocation violation class.

pub struct Solver {
    items: Vec<Vec<u32>>,
}

impl Solver {
    pub fn propagate(&mut self) -> usize {
        let mut total = 0;
        for item in &self.items {
            let copy = item.clone(); // clone in hot loop
            let slice = item.to_vec(); // to_vec in hot loop
            let gathered: Vec<u32> = item.iter().copied().collect(); // collect in hot loop
            let mut scratch = Vec::new(); // Vec::new in hot loop
            let boxed = Box::new(item.len()); // Box::new in hot loop
            let label = format!("{}", item.len()); // format! in hot loop
            let literal = vec![1, 2, 3]; // vec! in hot loop
            total += copy.len() + slice.len() + gathered.len() + scratch.len();
            scratch.push(*boxed as u32);
            total += label.len() + literal.len();
        }
        // Outside any loop: allocation is fine even in a hot fn.
        let summary = self.items.len().to_string();
        total + summary.len()
    }
}
