//! Fixture: implicit-panic shapes the value-range dataflow proves
//! safe. With proofs the transitive pass reports nothing here; with an
//! empty proof set every marked site below is a finding — the
//! before/after pair the refinement is measured by.

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        let total = 17u32;
        let n = self.width();
        let mut acc = 0;
        if n != 0 {
            acc += total / n; // proven: the guard excludes zero
        }
        let d = 4;
        acc += total % d; // proven: literal-bound divisor
        acc + split_sum(&self.data, 1) + pick(&self.data, 2)
    }

    fn width(&self) -> u32 {
        self.data.len() as u32
    }
}

fn split_sum(v: &[u32], k: usize) -> u32 {
    if k <= v.len() {
        let (low, _high) = v.split_at(k); // proven: guarded bound
        low.iter().sum()
    } else {
        0
    }
}

fn pick(v: &[u32], i: usize) -> u32 {
    if i < v.len() {
        v[i] // proven: strict guarded bound
    } else {
        0
    }
}
