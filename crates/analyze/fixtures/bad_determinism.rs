//! Fixture: nondeterminism sources in the callee closure of a
//! declared deterministic root. `emit` is the root; the hash-ordered
//! `for`, the wall-clock read two calls down, the `keys()` walk and
//! the environment read must all be flagged with their chains.

use std::collections::HashMap;
use std::time::Instant;

pub struct Writer {
    counts: HashMap<u32, u32>,
}

impl Writer {
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counts {
            out.push_str(&format!("{k}={v}\n")); // hash order reaches output
        }
        out.push_str(&self.stamp());
        out
    }

    fn stamp(&self) -> String {
        let t = Instant::now(); // wall clock below the root
        let seed = std::env::var("SOLVER_SEED").unwrap_or_default();
        format!("{t:?} {seed} {}", self.first())
    }

    fn first(&self) -> u32 {
        self.counts.keys().next().copied().unwrap_or(0)
    }
}
