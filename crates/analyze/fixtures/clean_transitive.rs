//! Fixture: helpers reached from a hot seed, written to the hot-path
//! standard — `get`/`match` instead of indexing, and one justified
//! annotated site. No findings expected.

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        self.helper_one(3)
    }

    fn helper_one(&self, i: usize) -> u32 {
        self.helper_two(i) + 1
    }

    fn helper_two(&self, i: usize) -> u32 {
        match self.data.get(i) {
            // analyze::allow(panic): i + 1 is in bounds whenever i is
            Some(_) => self.data[0],
            None => 0,
        }
    }
}
