//! Fixture: a hot function written to the hot-path standard — no
//! findings expected from any pass.

pub struct Solver {
    data: Vec<u32>,
    scratch: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self, i: usize) -> u32 {
        // Scratch reuse instead of per-iteration allocation.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut total = 0;
        for &item in &self.data {
            // `get` + `match` instead of indexing/unwrap.
            match self.data.get(i) {
                Some(&v) => total += v.saturating_add(item),
                None => total += 1,
            }
            scratch.push(total);
        }
        // `unwrap_or` never panics, so no annotation is needed — and
        // the two-way ratchet would flag one as stale if it were here.
        let head = scratch.first().copied().unwrap_or(0);
        self.scratch = scratch;
        total + head
    }
}
