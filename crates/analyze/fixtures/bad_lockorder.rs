//! Fixture: a two-function lock-order cycle. `forward` holds `alpha`
//! and calls `grab_beta`, which acquires `beta` — a composed edge
//! through the call graph. `backward` holds `beta` and temp-acquires
//! `alpha` directly — an intra-function edge. Opposite orders: a
//! deadlockable cycle, reported once with both chains rendered.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let guard = self.alpha.lock().unwrap();
        let total = guard.len() as u32 + self.grab_beta();
        drop(guard);
        total
    }

    fn grab_beta(&self) -> u32 {
        let g = self.beta.lock().unwrap();
        g.iter().sum()
    }

    pub fn backward(&self) -> u32 {
        let g = self.beta.lock().unwrap();
        let head = self.alpha.lock().unwrap().first().copied().unwrap_or(0);
        g.len() as u32 + head
    }
}
