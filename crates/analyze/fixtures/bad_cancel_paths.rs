//! Fixture: path-sensitive cancellation coverage. `solve_rounds` polls
//! at the loop head, so the `?` early exit and the labeled break are
//! just extra exits — every *iterating* path passes the poll: clean.
//! `solve_inner`'s fast path `continue`s around the poll: flagged, with
//! the concrete unpolled path rendered.

pub struct Budget;

impl Budget {
    pub fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

pub struct Solver {
    budget: Budget,
}

impl Solver {
    pub fn solve_rounds(&mut self) -> Result<u32, String> {
        let mut total = 0;
        let mut i = 0;
        'outer: loop {
            self.budget.check()?;
            i += 1;
            if i > 50 {
                break 'outer;
            }
            total += i;
        }
        Ok(total)
    }

    pub fn solve_inner(&mut self) -> Result<u32, String> {
        let mut total = 0;
        let mut i = 0;
        while i < 100 {
            i += 1;
            if total > 10 {
                continue; // fast path skips the poll below
            }
            self.budget.check()?;
            total += i;
        }
        Ok(total)
    }
}
