//! Fixture: an atomic `Ordering::` site that is not in the committed
//! allowlist.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Flag {
    inner: AtomicBool,
}

impl Flag {
    pub fn is_set(&self) -> bool {
        self.inner.load(Ordering::Relaxed) // unlisted ordering site
    }
}
