//! Fixture: a hot-path function holding a shard MutexGuard across a
//! solver call and an allocation.

use std::sync::Mutex;

pub struct Inner;

impl Inner {
    pub fn solve(&self, x: u32) -> u32 {
        x
    }
}

pub struct Solver {
    shard: Mutex<Vec<u32>>,
    inner: Inner,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        let guard = self.shard.lock().unwrap(); // analyze::allow(panic): poisoning is fatal here
        let fed = self.inner.solve(guard.len() as u32); // solver call under the guard
        let grown: Vec<u32> = Vec::new(); // allocation under the guard
        fed + grown.len() as u32 + guard.len() as u32
    }
}
