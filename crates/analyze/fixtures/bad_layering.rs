//! Fixture: source-level layering violations. The integration test
//! pairs this file with synthetic manifests in which `hqs-proof` is a
//! dev-dependency of the owning crate and `hqs-cnf` is not declared at
//! all.

use hqs_base::lit::Lit; // reach-through into an internal module

pub fn helper() -> u32 {
    let a = hqs_proof::check(); // dev-dependency used outside test code
    let b = hqs_cnf::parse(); // crate not declared in [dependencies]
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn dev_dep_in_test_is_fine() {
        let _ = hqs_proof::check();
    }
}
