//! Fixture: every newtype-discipline violation class.

use hqs_base::{Lit, Var};

pub fn raw_casts(v: Var, l: Lit, n: usize) -> usize {
    let a = v.index() as usize; // raw cast on Var accessor
    let b = l.code() as usize; // raw cast on Lit accessor
    let c = v.index() + 1; // integer-literal arithmetic
    let w = Var::new(n as u32); // raw cast feeding Var::new
    a + b + c as usize + w.index() as usize // and one more cast
}
