//! Fixture: implicit-panic shapes the value-range dataflow must *not*
//! prove — a guard on the wrong variable, no guard at all, a bound
//! killed by a length-changing call — plus a hot loop whose monotone
//! index earns the iterator advisory (its `v[i]` itself is proven by
//! the loop guard, so the advisory is the only output for it).

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        let mut scratch = self.data.clone();
        sum_squares(&self.data)
            + ratio(9, 3, self.data.len() as u32)
            + head(&self.data, 1)
            + shrink(&mut scratch, 1)
    }
}

fn ratio(x: u32, m: u32, n: u32) -> u32 {
    if m != 0 {
        return x / n; // guard is on `m`, not `n`: not proven
    }
    0
}

fn head(v: &[u32], k: usize) -> u32 {
    let (low, _high) = v.split_at(k); // no bound established
    low.len() as u32
}

fn shrink(v: &mut Vec<u32>, k: usize) -> u32 {
    if k < v.len() {
        v.clear(); // kills the bound: the length changed
        let (low, _high) = v.split_at(k); // not proven (and really panics)
        return low.len() as u32;
    }
    0
}

fn sum_squares(v: &[u32]) -> u32 {
    let mut i = 0;
    let mut acc = 0;
    while i < v.len() {
        acc += v[i] * v[i]; // in bounds, but bounds-checked: advisory
        i += 1;
    }
    acc
}
