pub fn unfinished() {
    todo!() // todo! violation
}

pub fn unstarted() {
    unimplemented!() // unimplemented! violation
}

pub fn noisy(x: u32) -> u32 {
    dbg!(x) // dbg! violation
}

pub fn risky() -> u32 {
    "7".parse::<u32>().unwrap() // library unwrap site
}
