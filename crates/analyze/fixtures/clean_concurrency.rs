//! Fixture: concurrency idioms done right — an allowlisted ordering
//! site, a guard dropped before the solver call, and a statement-scoped
//! guard temporary. No findings expected.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub struct Inner;

impl Inner {
    pub fn solve(&self, x: u32) -> u32 {
        x
    }
}

pub struct Solver {
    cancelled: AtomicBool,
    shard: Mutex<Vec<u32>>,
    inner: Inner,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        let guard = self.shard.lock().unwrap(); // analyze::allow(panic): poisoning is fatal here
        let snapshot = guard.len() as u32;
        drop(guard);
        let fed = self.inner.solve(snapshot); // guard already dropped
        // Statement-scoped temporary: the guard drops at the `;`.
        let head = self.shard.lock().unwrap().first().copied().unwrap_or(0); // analyze::allow(panic): poisoning is fatal here
        fed + head + self.cancelled.load(Ordering::Relaxed) as u32
    }
}
