//! Fixture: a solver-entry function with one loop that polls
//! cancellation and one that never does.

pub struct Budget;

impl Budget {
    pub fn check(&self) -> bool {
        true
    }
}

pub struct Solver {
    budget: Budget,
    work: Vec<u32>,
}

impl Solver {
    pub fn solve_rounds(&mut self) -> u32 {
        let mut total = 0;
        loop {
            // Polled: the budget check observes cancellation.
            if self.budget.check() {
                break;
            }
            total += 1;
        }
        while total < 100 {
            // Unpolled: this loop can spin past a cancel request.
            total += self.work.len() as u32;
        }
        total
    }
}
