//! Fixture: a panic two calls below a declared-hot seed. The seed
//! itself is clean of *explicit* panic shapes — only the transitive
//! pass, walking the call graph, can see that `helper_two` runs on the
//! hot path. The seed also carries an *implicit* panic (`split_at`)
//! and `helper_one` divides by a non-literal: those shapes have no
//! panic vocabulary, so the transitive pass owns them even inside the
//! seed.

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        let (low, _high) = self.data.split_at(1); // length precondition
        let _ = low;
        self.helper_one(3)
    }

    fn helper_one(&self, i: usize) -> u32 {
        self.helper_two(i) % self.width() // divisor could be zero
    }

    fn helper_two(&self, i: usize) -> u32 {
        *self.data.get(i).unwrap() // panic two calls below the seed
    }

    fn width(&self) -> u32 {
        self.data.len() as u32
    }
}
