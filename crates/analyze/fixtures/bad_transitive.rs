//! Fixture: a panic two calls below a declared-hot seed. The seed
//! itself is clean — only the transitive pass, walking the call graph,
//! can see that `helper_two` runs on the hot path.

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self) -> u32 {
        self.helper_one(3)
    }

    fn helper_one(&self, i: usize) -> u32 {
        self.helper_two(i) + 1
    }

    fn helper_two(&self, i: usize) -> u32 {
        *self.data.get(i).unwrap() // panic two calls below the seed
    }
}
