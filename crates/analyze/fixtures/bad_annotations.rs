//! Fixture: malformed `analyze::allow` annotations are findings, and
//! so are well-formed ones that suppress nothing (the two-way ratchet).

pub fn f(v: &[u32]) -> u32 {
    // analyze::allow(panic):
    let a = v[0];
    // analyze::allow(bogus): not a real kind
    let b = v[1];
    // analyze::allow(alloc): stale — nothing below allocates
    a + b
}
