//! Fixture: malformed `analyze::allow` annotations are findings.

pub fn f(v: &[u32]) -> u32 {
    // analyze::allow(panic):
    let a = v[0];
    // analyze::allow(bogus): not a real kind
    let b = v[1];
    a + b
}
