//! Fixture: the deterministic mirror of `bad_determinism.rs` — ordered
//! iteration via `BTreeMap`, keyed `HashMap` *lookups* (order never
//! observed), and one justified allow for an order-insensitive fold.
//! The determinism pass must report nothing.

use std::collections::{BTreeMap, HashMap};

pub struct Writer {
    counts: BTreeMap<u32, u32>,
    cache: HashMap<u32, u32>,
}

impl Writer {
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counts {
            out.push_str(&format!("{k}={v}\n")); // BTreeMap: key order
        }
        if let Some(hit) = self.cache.get(&0) {
            out.push_str(&hit.to_string()); // keyed lookup, order-free
        }
        out.push_str(&self.total().to_string());
        out
    }

    fn total(&self) -> u32 {
        // analyze::allow(determinism): summation is order-insensitive
        self.cache.values().sum()
    }
}
