//! Fixture: every panic-path violation class, inside a declared-hot fn.

pub struct Solver {
    data: Vec<u32>,
}

impl Solver {
    pub fn propagate(&mut self, i: usize) -> u32 {
        let first = self.data.get(0).unwrap(); // unwrap violation
        let second = self.data.get(1).expect("second"); // expect violation
        if *first > *second {
            panic!("inverted"); // panic! violation
        }
        if i > self.data.len() {
            unreachable!(); // unreachable! violation
        }
        self.data[i] // indexing violation
    }

    pub fn cold_helper(&self) -> u32 {
        // Not declared hot: unwrap and indexing are audit/allowlist
        // business, not panic-path findings.
        self.data[0]
    }
}
