//! Resource budgets and cooperative cancellation for any-time solvers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. The portfolio engine hands one token to every
/// racing worker; each existing budget poll site
/// ([`Budget::check`], [`Budget::stop_requested`]) then doubles as a
/// cancellation point, so cancellation latency is bounded by the
/// solvers' poll cadence rather than requiring any new plumbing.
///
/// The first [`cancel`](CancelToken::cancel) call wins and records its
/// reason; later calls are no-ops.
///
/// # Examples
///
/// ```
/// use hqs_base::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel("portfolio winner arrived");
/// assert!(observer.is_cancelled());
/// assert_eq!(observer.reason().as_deref(), Some("portfolio winner arrived"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. The first caller's `reason` is recorded; later
    /// calls leave the stored reason untouched.
    pub fn cancel(&self, reason: &str) {
        // Record the reason before publishing the flag so any observer
        // that sees `cancelled` also sees a reason.
        {
            let mut slot = match self.inner.reason.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            if slot.is_none() {
                *slot = Some(reason.to_string());
            }
        }
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Returns `true` once any clone of this token has been cancelled.
    ///
    /// A single atomic load — cheap enough for inner solver loops.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The reason recorded by the winning [`cancel`](CancelToken::cancel)
    /// call, if any.
    #[must_use]
    pub fn reason(&self) -> Option<String> {
        match self.inner.reason.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

/// A resource budget shared by the QBF/DQBF solvers: a wall-clock deadline
/// (the paper's 2-hour timeout), a node-count ceiling (the analogue of
/// the paper's 8 GB memory limit — AIG nodes are the dominating
/// allocation), and an optional shared [`CancelToken`] through which a
/// portfolio driver can tear down losing workers cooperatively.
///
/// # Examples
///
/// ```
/// use hqs_base::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_timeout(Duration::from_secs(60))
///     .with_node_limit(1_000_000);
/// assert!(!budget.time_exhausted());
/// assert!(budget.nodes_exhausted(2_000_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<usize>,
    cancel: Option<CancelToken>,
}

/// Why a solver stopped without an answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exhaustion {
    /// The wall-clock deadline passed (paper: "TO").
    Timeout,
    /// The node/memory ceiling was hit (paper: "MO").
    Memout,
    /// The shared [`CancelToken`] fired — another portfolio worker won
    /// the race, or the driver tore the run down.
    Cancelled,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Timeout => write!(f, "timeout"),
            Exhaustion::Memout => write!(f, "memout"),
            Exhaustion::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Budget::default()
    }

    /// Limits wall-clock time, measured from this call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Limits the number of live AIG nodes.
    #[must_use]
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.node_limit = Some(nodes);
        self
    }

    /// Attaches a shared cancellation token: every
    /// [`check`](Budget::check) / [`stop_requested`](Budget::stop_requested)
    /// poll then observes it.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Returns `true` once the attached token (if any) has fired.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Returns `true` if the deadline has passed.
    #[must_use]
    pub fn time_exhausted(&self) -> bool {
        // analyze::allow(determinism): the wall-clock deadline is an explicit, user-requested bound; deterministic runs set no time budget
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns `true` if `nodes` exceeds the node ceiling.
    #[must_use]
    pub fn nodes_exhausted(&self, nodes: usize) -> bool {
        self.node_limit.is_some_and(|limit| nodes > limit)
    }

    /// Returns `true` when the solve should stop for a reason that is
    /// not node-count dependent: cancellation or the deadline. This is
    /// the poll used as the `should_stop` callback of incremental SAT
    /// runs, where no node count is available.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.cancelled() || self.time_exhausted()
    }

    /// The exhaustion to report after [`stop_requested`](Budget::stop_requested)
    /// returned `true`: [`Exhaustion::Cancelled`] when the token fired,
    /// [`Exhaustion::Timeout`] otherwise.
    #[must_use]
    pub fn stop_reason(&self) -> Exhaustion {
        if self.cancelled() {
            Exhaustion::Cancelled
        } else {
            Exhaustion::Timeout
        }
    }

    /// Convenience check combining all limits. Cancellation is reported
    /// first (it is the cheapest check and the most urgent verdict),
    /// then the deadline, then the node ceiling.
    #[must_use]
    pub fn check(&self, nodes: usize) -> Option<Exhaustion> {
        if self.cancelled() {
            Some(Exhaustion::Cancelled)
        } else if self.time_exhausted() {
            Some(Exhaustion::Timeout)
        } else if self.nodes_exhausted(nodes) {
            Some(Exhaustion::Memout)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::new();
        assert!(!b.time_exhausted());
        assert!(!b.nodes_exhausted(usize::MAX));
        assert!(!b.stop_requested());
        assert_eq!(b.check(usize::MAX), None);
    }

    #[test]
    fn node_limit() {
        let b = Budget::new().with_node_limit(10);
        assert!(!b.nodes_exhausted(10));
        assert!(b.nodes_exhausted(11));
        assert_eq!(b.check(11), Some(Exhaustion::Memout));
    }

    #[test]
    fn elapsed_deadline() {
        let b = Budget::new().with_timeout(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.time_exhausted());
        assert!(b.stop_requested());
        assert_eq!(b.stop_reason(), Exhaustion::Timeout);
        assert_eq!(b.check(0), Some(Exhaustion::Timeout));
    }

    #[test]
    fn cancellation_is_shared_and_observed_first() {
        let token = CancelToken::new();
        let b = Budget::new()
            .with_timeout(Duration::from_secs(0))
            .with_node_limit(0)
            .with_cancel_token(token.clone());
        std::thread::sleep(Duration::from_millis(1));
        // Deadline already passed, but cancellation takes precedence
        // once the token fires.
        assert_eq!(b.check(1), Some(Exhaustion::Timeout));
        token.cancel("test");
        assert!(b.cancelled());
        assert!(b.stop_requested());
        assert_eq!(b.stop_reason(), Exhaustion::Cancelled);
        assert_eq!(b.check(1), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn first_cancel_reason_wins() {
        let token = CancelToken::new();
        assert_eq!(token.reason(), None);
        token.cancel("first");
        token.cancel("second");
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("first"));
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            token.cancel("from another thread");
        });
        handle.join().expect("cancelling thread");
        assert!(observer.is_cancelled());
        assert_eq!(observer.reason().as_deref(), Some("from another thread"));
    }
}
