//! Resource budgets for any-time solvers.

use std::time::{Duration, Instant};

/// A resource budget shared by the QBF/DQBF solvers: a wall-clock deadline
/// (the paper's 2-hour timeout) and a node-count ceiling (the analogue of
/// the paper's 8 GB memory limit — AIG nodes are the dominating
/// allocation).
///
/// # Examples
///
/// ```
/// use hqs_base::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_timeout(Duration::from_secs(60))
///     .with_node_limit(1_000_000);
/// assert!(!budget.time_exhausted());
/// assert!(budget.nodes_exhausted(2_000_000));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<usize>,
}

/// Why a solver stopped without an answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exhaustion {
    /// The wall-clock deadline passed (paper: "TO").
    Timeout,
    /// The node/memory ceiling was hit (paper: "MO").
    Memout,
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Budget::default()
    }

    /// Limits wall-clock time, measured from this call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Limits the number of live AIG nodes.
    #[must_use]
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.node_limit = Some(nodes);
        self
    }

    /// Returns `true` if the deadline has passed.
    #[must_use]
    pub fn time_exhausted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns `true` if `nodes` exceeds the node ceiling.
    #[must_use]
    pub fn nodes_exhausted(&self, nodes: usize) -> bool {
        self.node_limit.is_some_and(|limit| nodes > limit)
    }

    /// Convenience check combining both limits.
    #[must_use]
    pub fn check(&self, nodes: usize) -> Option<Exhaustion> {
        if self.time_exhausted() {
            Some(Exhaustion::Timeout)
        } else if self.nodes_exhausted(nodes) {
            Some(Exhaustion::Memout)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::new();
        assert!(!b.time_exhausted());
        assert!(!b.nodes_exhausted(usize::MAX));
        assert_eq!(b.check(usize::MAX), None);
    }

    #[test]
    fn node_limit() {
        let b = Budget::new().with_node_limit(10);
        assert!(!b.nodes_exhausted(10));
        assert!(b.nodes_exhausted(11));
        assert_eq!(b.check(11), Some(Exhaustion::Memout));
    }

    #[test]
    fn elapsed_deadline() {
        let b = Budget::new().with_timeout(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.time_exhausted());
        assert_eq!(b.check(0), Some(Exhaustion::Timeout));
    }
}
