//! A byte-budgeted, thread-safe LRU cache shared across solver sessions.
//!
//! The serving architecture keeps warm state — preprocessing results,
//! FRAIG-reduced cones, whole verdicts — alive between requests. All of
//! those caches share the same two requirements: a hard *byte* budget
//! (entries vary wildly in size, so an entry count is meaningless) and
//! cheap cross-thread statistics (the server's `stats` command reads hit
//! rates without taking the cache lock). [`ByteBudgetLru`] packages both.
//!
//! Recency is tracked with monotone stamps and a lazily-pruned queue, the
//! classic amortised-O(1) LRU without an intrusive list: every `get` or
//! `insert` pushes a fresh `(key, stamp)` pair, and eviction pops from
//! the front, skipping pairs whose stamp is no longer the key's current
//! one.
//!
//! # Examples
//!
//! ```
//! use hqs_base::ByteBudgetLru;
//!
//! let cache: ByteBudgetLru<u32, String> = ByteBudgetLru::new(64);
//! cache.insert(1, "one".to_string(), 32);
//! cache.insert(2, "two".to_string(), 32);
//! assert_eq!(cache.get(&1).as_deref(), Some("one"));
//! // Inserting a third 32-byte entry exceeds the 64-byte budget and
//! // evicts the least recently used key (2 — key 1 was just touched).
//! cache.insert(3, "three".to_string(), 32);
//! assert_eq!(cache.get(&2), None);
//! assert!(cache.get(&1).is_some() && cache.get(&3).is_some());
//! let stats = cache.stats();
//! assert_eq!(stats.evictions, 1);
//! ```

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time copy of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to stay inside the byte budget.
    pub evictions: u64,
    /// Bytes currently accounted to live entries.
    pub bytes: usize,
    /// Number of live entries.
    pub entries: usize,
}

impl CacheStatsSnapshot {
    /// Hit rate in `[0, 1]`; `0.0` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Hit/miss/eviction counters updated without holding the cache lock.
///
/// The counters are monotone and only ever summed or displayed, so
/// `Relaxed` loads and stores suffice: no other memory is published
/// through them.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Entry<V> {
    value: V,
    cost: usize,
    stamp: u64,
}

struct LruState<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Recency queue of `(key, stamp)`; stale pairs (stamp no longer the
    /// key's current one) are skipped during eviction.
    queue: VecDeque<(K, u64)>,
    bytes: usize,
    next_stamp: u64,
}

/// A thread-safe LRU cache bounded by a total byte budget.
///
/// Every entry carries a caller-supplied byte cost; inserting past the
/// budget evicts least-recently-used entries until the new entry fits.
/// An entry whose cost alone exceeds the budget is silently not stored.
/// The module docs in `cache.rs` show a worked example.
pub struct ByteBudgetLru<K, V> {
    state: Mutex<LruState<K, V>>,
    counters: CacheCounters,
    budget: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> ByteBudgetLru<K, V> {
    /// Creates an empty cache with the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        ByteBudgetLru {
            state: Mutex::new(LruState {
                map: HashMap::new(),
                queue: VecDeque::new(),
                bytes: 0,
                next_stamp: 0,
            }),
            counters: CacheCounters::default(),
            budget: budget_bytes,
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruState<K, V>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up `key`, cloning the value and refreshing its recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut state = self.lock();
        let stamp = state.next_stamp;
        state.next_stamp += 1;
        if let Some(entry) = state.map.get_mut(key) {
            entry.stamp = stamp;
            let value = entry.value.clone();
            state.queue.push_back((key.clone(), stamp));
            drop(state);
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        } else {
            drop(state);
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts `key → value`, charging `cost` bytes against the budget
    /// and evicting least-recently-used entries as needed. Replacing an
    /// existing key first releases the old entry's bytes. An entry whose
    /// cost alone exceeds the budget is not stored (and the key, if
    /// present, is removed rather than left stale).
    pub fn insert(&self, key: K, value: V, cost: usize) {
        let mut evicted = 0u64;
        {
            let mut state = self.lock();
            // analyze::allow(lock): std map removal under the cache's single lock takes no further lock
            if let Some(old) = state.map.remove(&key) {
                state.bytes -= old.cost;
            }
            if cost > self.budget {
                drop(state);
                return;
            }
            while state.bytes + cost > self.budget {
                let Some((victim, stamp)) = state.queue.pop_front() else {
                    break;
                };
                let live = state.map.get(&victim).is_some_and(|e| e.stamp == stamp);
                if live {
                    // The expect cannot fire: `live` just witnessed the key.
                    let gone = state.map.remove(&victim).expect("live LRU victim");
                    state.bytes -= gone.cost;
                    evicted += 1;
                }
            }
            let stamp = state.next_stamp;
            state.next_stamp += 1;
            state.queue.push_back((key.clone(), stamp));
            // analyze::allow(lock): std map insertion under the cache's single lock takes no further lock
            state.map.insert(key, Entry { value, cost, stamp });
            state.bytes += cost;
        }
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted to live entries.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Drops every entry (counters are retained).
    pub fn clear(&self) {
        let mut state = self.lock();
        // analyze::allow(lock) lines=2: std collection clears under the cache's single lock take no further lock
        state.map.clear();
        state.queue.clear();
        state.bytes = 0;
    }

    /// A consistent snapshot of counters plus current occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        let (bytes, entries) = {
            let state = self.lock();
            // analyze::allow(lock): std map len under the cache's single lock takes no further lock
            (state.bytes, state.map.len())
        };
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> std::fmt::Debug for ByteBudgetLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ByteBudgetLru")
            .field("budget", &self.budget)
            .field("bytes", &s.bytes)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_recency() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(100);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10, 10);
        assert_eq!(cache.get(&1), Some(10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes, 10);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(30);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 10);
        cache.insert(3, 3, 10);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(1));
        cache.insert(4, 4, 10);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(1));
        assert_eq!(cache.get(&3), Some(3));
        assert_eq!(cache.get(&4), Some(4));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(10);
        cache.insert(1, 1, 11);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.bytes(), 0);
        // Replacing a live key with an oversized value removes the key
        // instead of serving the stale value.
        cache.insert(2, 2, 5);
        cache.insert(2, 3, 11);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn replace_releases_old_cost() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(20);
        cache.insert(1, 1, 15);
        cache.insert(1, 2, 10);
        assert_eq!(cache.bytes(), 10);
        assert_eq!(cache.get(&1), Some(2));
        // Room for a second 10-byte entry without eviction.
        cache.insert(2, 2, 10);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_cascades_until_fit() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(30);
        cache.insert(1, 1, 10);
        cache.insert(2, 2, 10);
        cache.insert(3, 3, 10);
        cache.insert(4, 4, 30);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&4), Some(4));
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(100);
        cache.insert(1, 1, 10);
        let _ = cache.get(&1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn hit_rate() {
        let cache: ByteBudgetLru<u32, u32> = ByteBudgetLru::new(100);
        cache.insert(1, 1, 1);
        let _ = cache.get(&1);
        let _ = cache.get(&2);
        let s = cache.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache: Arc<ByteBudgetLru<u32, u32>> = Arc::new(ByteBudgetLru::new(1000));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    cache.insert(t * 100 + i, i, 8);
                    let _ = cache.get(&(t * 100 + i));
                }
            }));
        }
        for h in handles {
            h.join().expect("cache worker");
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.bytes <= 1000);
    }
}
