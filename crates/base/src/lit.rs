//! Variables and literals.

use std::fmt;

/// A Boolean variable, identified by a dense index starting at 0.
///
/// Variables are plain indices; meaning (universal/existential, name, …) is
/// attached by higher layers such as `hqs-cnf` prefixes or `hqs-core`
/// [DQBF prefixes]. The dense encoding lets solvers index arrays directly by
/// variable.
///
/// # Examples
///
/// ```
/// use hqs_base::Var;
/// let v = Var::new(7);
/// assert_eq!(v.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// The maximum representable variable index.
    pub const MAX_INDEX: u32 = (u32::MAX >> 1) - 1;

    /// Creates a variable from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Var::MAX_INDEX`].
    #[inline]
    #[must_use]
    pub fn new(index: u32) -> Self {
        assert!(index <= Self::MAX_INDEX, "variable index overflow");
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[inline]
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`, for direct array indexing.
    ///
    /// This is the only sanctioned way to turn a variable into a slice
    /// index: the `analyze` newtype pass flags raw `.index() as usize`
    /// casts outside `hqs-base`.
    #[inline]
    #[must_use]
    pub fn uidx(self) -> usize {
        self.0 as usize
    }

    /// Returns the smallest variable count that contains this variable,
    /// i.e. `index + 1`.
    ///
    /// Use it for `num_vars`-style bookkeeping (`ensure_vars(v.bound())`,
    /// `num_vars.max(v.bound())`) instead of open-coded index arithmetic.
    #[inline]
    #[must_use]
    pub fn bound(self) -> u32 {
        self.0 + 1
    }

    /// Renders this variable as its DIMACS identifier (`index + 1`).
    #[inline]
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        i64::from(self.0) + 1
    }

    /// Returns the positive literal of this variable.
    #[inline]
    #[must_use]
    pub fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    #[must_use]
    pub fn negative(self) -> Lit {
        Lit::negative(self)
    }

    /// Returns the literal of this variable with the given sign
    /// (`negative == true` means the negated literal).
    #[inline]
    #[must_use]
    pub fn lit(self, negative: bool) -> Lit {
        Lit::new(self, negative)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a sign.
///
/// Encoded as `2 * var + sign` in a single `u32` (sign bit set means the
/// literal is negated), the classic MiniSat encoding. This makes literal
/// vectors compact and allows direct indexing of watch lists by
/// [`Lit::code`].
///
/// # Examples
///
/// ```
/// use hqs_base::{Lit, Var};
/// let x = Var::new(3);
/// let p = Lit::positive(x);
/// let n = !p;
/// assert_eq!(n, Lit::negative(x));
/// assert_eq!(p.var(), n.var());
/// assert_ne!(p.code(), n.code());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign
    /// (`negative == true` yields the negated literal).
    #[inline]
    #[must_use]
    pub fn new(var: Var, negative: bool) -> Self {
        Lit(var.index() << 1 | u32::from(negative))
    }

    /// Creates the positive literal of `var`.
    #[inline]
    #[must_use]
    pub fn positive(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// Creates the negative literal of `var`.
    #[inline]
    #[must_use]
    pub fn negative(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// Reconstructs a literal from its [`code`](Lit::code).
    #[inline]
    #[must_use]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the variable of this literal.
    #[inline]
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if the literal is not negated.
    #[inline]
    #[must_use]
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Returns the dense integer code `2 * var + sign`.
    ///
    /// Useful as an index into per-literal arrays (e.g. watch lists).
    #[inline]
    #[must_use]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the [`code`](Lit::code) as a `usize`, for direct indexing
    /// of per-literal arrays such as watch lists.
    ///
    /// Like [`Var::uidx`], this is the sanctioned cast point: the
    /// `analyze` newtype pass flags raw `.code() as usize` casts outside
    /// `hqs-base`.
    #[inline]
    #[must_use]
    pub fn uidx(self) -> usize {
        self.0 as usize
    }

    /// Returns this literal with the given polarity applied on top:
    /// `lit.xor_sign(true)` flips the literal, `lit.xor_sign(false)` is a
    /// no-op.
    #[inline]
    #[must_use]
    pub fn xor_sign(self, flip: bool) -> Self {
        Lit(self.0 ^ u32::from(flip))
    }

    /// Parses a literal from a DIMACS-style signed integer
    /// (`1` ⇒ positive literal of variable 0, `-3` ⇒ negative literal of
    /// variable 2).
    ///
    /// Returns `None` for `0` (the DIMACS clause terminator) or an
    /// out-of-range magnitude.
    #[must_use]
    pub fn from_dimacs(value: i64) -> Option<Self> {
        if value == 0 {
            return None;
        }
        let magnitude = value.unsigned_abs();
        if magnitude > u64::from(Var::MAX_INDEX) + 1 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        let var = Var::new((magnitude - 1) as u32);
        Some(Lit::new(var, value < 0))
    }

    /// Renders this literal as a DIMACS-style signed integer
    /// (variable index + 1, negated literals negative).
    #[inline]
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        let magnitude = i64::from(self.var().index()) + 1;
        if self.is_negative() {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        Lit::positive(var)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0, 1, 17, 100_000] {
            assert_eq!(Var::new(i).index(), i);
        }
    }

    #[test]
    fn sanctioned_casts_and_bounds() {
        let v = Var::new(41);
        assert_eq!(v.uidx(), 41usize);
        assert_eq!(v.bound(), 42);
        assert_eq!(v.to_dimacs(), 42);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.uidx(), 82usize);
        assert_eq!(n.uidx(), 83usize);
        assert_eq!(p.uidx(), p.code() as usize);
    }

    #[test]
    #[should_panic(expected = "variable index overflow")]
    fn var_overflow_panics() {
        let _ = Var::new(Var::MAX_INDEX + 1);
    }

    #[test]
    fn lit_sign_and_var() {
        let v = Var::new(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert!(p.is_positive() && !p.is_negative());
        assert!(n.is_negative() && !n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code() ^ 1, n.code());
    }

    #[test]
    fn lit_xor_sign() {
        let p = Lit::positive(Var::new(2));
        assert_eq!(p.xor_sign(false), p);
        assert_eq!(p.xor_sign(true), !p);
    }

    #[test]
    fn dimacs_roundtrip() {
        for value in [1i64, -1, 2, -2, 42, -42] {
            let lit = Lit::from_dimacs(value).expect("valid literal");
            assert_eq!(lit.to_dimacs(), value);
        }
        assert_eq!(Lit::from_dimacs(0), None);
    }

    #[test]
    fn dimacs_mapping() {
        let lit = Lit::from_dimacs(3).unwrap();
        assert_eq!(lit.var().index(), 2);
        assert!(lit.is_positive());
        let lit = Lit::from_dimacs(-1).unwrap();
        assert_eq!(lit.var().index(), 0);
        assert!(lit.is_negative());
    }

    #[test]
    fn display_formats() {
        let v = Var::new(4);
        assert_eq!(v.to_string(), "v4");
        assert_eq!(Lit::positive(v).to_string(), "v4");
        assert_eq!(Lit::negative(v).to_string(), "!v4");
    }

    #[test]
    fn ordering_groups_by_variable() {
        let a = Var::new(1).positive();
        let b = Var::new(1).negative();
        let c = Var::new(2).positive();
        assert!(a < b && b < c);
    }
}
