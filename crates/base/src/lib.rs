//! Foundation types for the HQS DQBF solver stack.
//!
//! This crate defines the identifiers and small data structures that every
//! other crate in the workspace builds on:
//!
//! * [`Var`] — a Boolean variable, a dense index starting at 0.
//! * [`Lit`] — a literal (a variable together with a sign), encoded in a
//!   single `u32` so vectors of literals are cache-friendly.
//! * [`VarSet`] — a dense bitset over variables, used for dependency sets,
//!   supports and elimination sets.
//! * [`Assignment`] — a partial assignment mapping variables to
//!   [`TruthValue`]s.
//! * [`Budget`] / [`CancelToken`] — resource limits and the shared
//!   cooperative-cancellation flag observed at every budget poll site.
//! * [`ByteBudgetLru`] — the byte-budgeted LRU cache behind every
//!   cross-request warm cache of the serving architecture.
//! * [`InvariantViolation`] — the shared error type returned by the
//!   `check_invariants` audits across the solver crates.
//!
//! # Examples
//!
//! ```
//! use hqs_base::{Var, Lit, VarSet};
//!
//! let x = Var::new(0);
//! let y = Var::new(1);
//! let lit = Lit::positive(x);
//! assert_eq!(lit.var(), x);
//! assert!(!lit.is_negative());
//! assert_eq!(!lit, Lit::negative(x));
//!
//! let mut deps = VarSet::new();
//! deps.insert(x);
//! deps.insert(y);
//! assert_eq!(deps.len(), 2);
//! assert!(deps.contains(x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod budget;
mod cache;
pub mod check;
mod lit;
pub mod rng;
mod varset;

pub use assignment::{Assignment, TruthValue};
pub use budget::{Budget, CancelToken, Exhaustion};
pub use cache::{ByteBudgetLru, CacheStatsSnapshot};
pub use check::InvariantViolation;
pub use lit::{Lit, Var};
pub use rng::Rng;
pub use varset::VarSet;
