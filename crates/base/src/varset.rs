//! Dense bitsets over variables.

use crate::Var;
use std::fmt;

/// A dense bitset of [`Var`]s.
///
/// `VarSet` is the workhorse for dependency sets (`D_y` in the paper),
/// supports of AIG nodes, and elimination sets. It grows automatically on
/// insertion and keeps no trailing zero blocks, so structural equality
/// coincides with set equality.
///
/// # Examples
///
/// ```
/// use hqs_base::{Var, VarSet};
///
/// let a: VarSet = [Var::new(1), Var::new(3)].into_iter().collect();
/// let b: VarSet = [Var::new(3)].into_iter().collect();
/// assert!(b.is_subset(&a));
/// assert!(!a.is_subset(&b));
/// assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![Var::new(1)]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct VarSet {
    blocks: Vec<u64>,
}

const BITS: usize = 64;

impl VarSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        VarSet { blocks: Vec::new() }
    }

    /// Creates an empty set with capacity for variables `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: u32) -> Self {
        VarSet {
            blocks: Vec::with_capacity((capacity as usize).div_ceil(BITS)),
        }
    }

    /// Creates the set `{0, 1, …, n - 1}` of the first `n` variables.
    #[must_use]
    pub fn full(n: u32) -> Self {
        let n = n as usize;
        let mut blocks = vec![u64::MAX; n.div_ceil(BITS)];
        if !n.is_multiple_of(BITS) {
            if let Some(last) = blocks.last_mut() {
                *last = (1u64 << (n % BITS)) - 1;
            }
        }
        let mut set = VarSet { blocks };
        set.trim();
        set
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the number of variables in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if `var` is in the set.
    #[must_use]
    pub fn contains(&self, var: Var) -> bool {
        let idx = var.index() as usize;
        self.blocks
            .get(idx / BITS)
            .is_some_and(|b| b & (1 << (idx % BITS)) != 0)
    }

    /// Inserts `var`; returns `true` if it was not already present.
    pub fn insert(&mut self, var: Var) -> bool {
        let idx = var.index() as usize;
        let block = idx / BITS;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (idx % BITS);
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `var`; returns `true` if it was present.
    pub fn remove(&mut self, var: Var) -> bool {
        let idx = var.index() as usize;
        let block = idx / BITS;
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << (idx % BITS);
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        if present {
            self.trim();
        }
        present
    }

    /// Removes all variables.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &VarSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no variable.
    #[must_use]
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Returns `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &VarSet) -> VarSet {
        let (longer, shorter) = if self.blocks.len() >= other.blocks.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut blocks = longer.blocks.clone();
        for (b, s) in blocks.iter_mut().zip(&shorter.blocks) {
            *b |= s;
        }
        VarSet { blocks }
    }

    /// Returns `self ∩ other`.
    #[must_use]
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        let mut blocks: Vec<u64> = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a & b)
            .collect();
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        VarSet { blocks }
    }

    /// Returns `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &VarSet) -> VarSet {
        let mut blocks = self.blocks.clone();
        for (b, o) in blocks.iter_mut().zip(&other.blocks) {
            *b &= !o;
        }
        let mut set = VarSet { blocks };
        set.trim();
        set
    }

    /// Adds all variables of `other` to `self`.
    pub fn union_with(&mut self, other: &VarSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b |= o;
        }
    }

    /// Removes all variables of `other` from `self`.
    pub fn difference_with(&mut self, other: &VarSet) {
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b &= !o;
        }
        self.trim();
    }

    /// Keeps only variables also contained in `other`.
    pub fn intersect_with(&mut self, other: &VarSet) {
        if self.blocks.len() > other.blocks.len() {
            self.blocks.truncate(other.blocks.len());
        }
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b &= o;
        }
        self.trim();
    }

    /// Iterates over the variables in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(block_idx, &block)| BitIter {
                block,
                base: (block_idx * BITS) as u32,
            })
    }

    /// Returns the smallest variable in the set, if any.
    #[must_use]
    pub fn min(&self) -> Option<Var> {
        self.iter().next()
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

struct BitIter {
    block: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = Var;

    fn next(&mut self) -> Option<Var> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros();
        self.block &= self.block - 1;
        Some(Var::new(self.base + bit))
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut set = VarSet::new();
        for var in iter {
            set.insert(var);
        }
        set
    }
}

impl Extend<Var> for VarSet {
    fn extend<I: IntoIterator<Item = Var>>(&mut self, iter: I) {
        for var in iter {
            self.insert(var);
        }
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vars: &[u32]) -> VarSet {
        vars.iter().map(|&i| Var::new(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VarSet::new();
        assert!(s.insert(Var::new(70)));
        assert!(!s.insert(Var::new(70)));
        assert!(s.contains(Var::new(70)));
        assert!(!s.contains(Var::new(7)));
        assert!(s.remove(Var::new(70)));
        assert!(!s.remove(Var::new(70)));
        assert!(s.is_empty());
    }

    #[test]
    fn equality_ignores_trailing_blocks() {
        let mut a = set(&[1]);
        a.insert(Var::new(200));
        a.remove(Var::new(200));
        assert_eq!(a, set(&[1]));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set(&[1, 3, 65]);
        let b = set(&[3, 65]);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a));
        assert!(set(&[]).is_subset(&b));
        assert!(set(&[2, 4]).is_disjoint(&b));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 2, 64]);
        let b = set(&[2, 3]);
        assert_eq!(a.union(&b), set(&[0, 2, 3, 64]));
        assert_eq!(a.intersection(&b), set(&[2]));
        assert_eq!(a.difference(&b), set(&[0, 64]));
        assert_eq!(b.difference(&a), set(&[3]));
    }

    #[test]
    fn in_place_algebra() {
        let mut a = set(&[0, 2, 64]);
        a.union_with(&set(&[3]));
        assert_eq!(a, set(&[0, 2, 3, 64]));
        a.difference_with(&set(&[0, 64]));
        assert_eq!(a, set(&[2, 3]));
        a.intersect_with(&set(&[3, 9]));
        assert_eq!(a, set(&[3]));
    }

    #[test]
    fn full_set() {
        assert_eq!(VarSet::full(0), VarSet::new());
        assert_eq!(VarSet::full(3), set(&[0, 1, 2]));
        assert_eq!(VarSet::full(64).len(), 64);
        assert_eq!(VarSet::full(65).len(), 65);
        assert!(VarSet::full(65).contains(Var::new(64)));
        assert!(!VarSet::full(65).contains(Var::new(65)));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[129, 4, 0, 64]);
        let got: Vec<u32> = s.iter().map(Var::index).collect();
        assert_eq!(got, vec![0, 4, 64, 129]);
        assert_eq!(s.min(), Some(Var::new(0)));
        assert_eq!(s.len(), 4);
    }
}
