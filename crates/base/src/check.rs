//! The shared diagnostics type for runtime invariant audits.
//!
//! The AIG manager, the CDCL solver and the DQBF working state each
//! expose a `check_invariants` method auditing their structural
//! invariants; all of them report failures through
//! [`InvariantViolation`] so callers (tests, the `--paranoid` solver
//! mode) can handle the three uniformly.

use std::fmt;

/// A broken structural invariant, with a human-readable description of
/// the first violation found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    component: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Builds a violation report for `component` (a short static label
    /// such as `"strash"` or `"trail"`).
    #[must_use]
    pub fn new(component: &'static str, detail: String) -> Self {
        InvariantViolation { component, detail }
    }

    /// The audited component the violation belongs to (e.g. `"strash"`).
    #[must_use]
    pub fn component(&self) -> &'static str {
        self.component
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.component, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_component_and_detail() {
        let v = InvariantViolation::new("trail", "literal 3 unassigned".to_string());
        assert_eq!(v.component(), "trail");
        assert_eq!(v.to_string(), "[trail] literal 3 unassigned");
    }
}
