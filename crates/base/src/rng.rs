//! Deterministic pseudo-random number generation, implemented on `std`
//! alone.
//!
//! The workspace builds in hermetic environments with no access to a
//! crates.io mirror, so the randomised test suites, the fuzzers and the
//! benchmark generators all draw from this small xoshiro256** generator
//! instead of the `rand` crate. Generation is fully deterministic in the
//! seed, which the cross-checking tests rely on to reproduce failures.
//!
//! # Examples
//!
//! ```
//! use hqs_base::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range(0..10usize);
//! assert!(a < 10);
//! let b = rng.gen_range(1..=3u32);
//! assert!((1..=3).contains(&b));
//! let _coin = rng.gen_bool(0.5);
//!
//! // Same seed, same stream.
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0..10usize), a);
//! ```

use std::ops::{Range, RangeInclusive};

/// A seedable xoshiro256** pseudo-random generator.
///
/// Not cryptographically secure; statistically solid and fast, which is
/// all the test suites and benchmark generators need.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    ///
    /// The 256-bit state is expanded from the seed with SplitMix64, the
    /// initialisation recommended by the xoshiro authors; every seed
    /// (including 0) yields a non-degenerate state.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits give a value in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns a uniform value in `range`, which may be half-open
    /// (`lo..hi`) or inclusive (`lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform value in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform element of the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let z = rng.gen_range(0..=2u8);
            assert!(z <= 2);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle is astronomically unlikely to be the identity"
        );
    }
}
