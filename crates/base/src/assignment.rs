//! Partial assignments of variables to truth values.

use crate::{Lit, Var};
use std::fmt;
use std::ops::Not;

/// The value of a variable in a partial assignment.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum TruthValue {
    /// Assigned `false`.
    False,
    /// Assigned `true`.
    True,
    /// Not assigned.
    #[default]
    Unassigned,
}

impl TruthValue {
    /// Converts a `bool` into the corresponding assigned value.
    #[inline]
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        if value {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }

    /// Returns `Some(bool)` if assigned, `None` otherwise.
    #[inline]
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            TruthValue::False => Some(false),
            TruthValue::True => Some(true),
            TruthValue::Unassigned => None,
        }
    }

    /// Returns `true` if this value is assigned (true or false).
    #[inline]
    #[must_use]
    pub fn is_assigned(self) -> bool {
        self != TruthValue::Unassigned
    }
}

impl Not for TruthValue {
    type Output = TruthValue;

    #[inline]
    fn not(self) -> TruthValue {
        match self {
            TruthValue::False => TruthValue::True,
            TruthValue::True => TruthValue::False,
            TruthValue::Unassigned => TruthValue::Unassigned,
        }
    }
}

impl From<bool> for TruthValue {
    #[inline]
    fn from(value: bool) -> Self {
        TruthValue::from_bool(value)
    }
}

/// A partial assignment of variables to truth values, stored densely.
///
/// # Examples
///
/// ```
/// use hqs_base::{Assignment, Lit, TruthValue, Var};
///
/// let mut a = Assignment::new();
/// a.assign(Var::new(0), true);
/// assert_eq!(a.value(Var::new(0)), TruthValue::True);
/// assert_eq!(a.lit_value(Lit::negative(Var::new(0))), TruthValue::False);
/// assert_eq!(a.value(Var::new(9)), TruthValue::Unassigned);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<TruthValue>,
}

impl Assignment {
    /// Creates an empty assignment.
    #[must_use]
    pub fn new() -> Self {
        Assignment { values: Vec::new() }
    }

    /// Creates an assignment with all of `0..n` unassigned, pre-sized.
    #[must_use]
    pub fn with_num_vars(n: u32) -> Self {
        Assignment {
            values: vec![TruthValue::Unassigned; n as usize],
        }
    }

    /// Returns the value of `var`.
    #[inline]
    #[must_use]
    pub fn value(&self, var: Var) -> TruthValue {
        self.values
            .get(var.index() as usize)
            .copied()
            .unwrap_or(TruthValue::Unassigned)
    }

    /// Returns the value of `lit` under this assignment.
    #[inline]
    #[must_use]
    pub fn lit_value(&self, lit: Lit) -> TruthValue {
        let v = self.value(lit.var());
        if lit.is_negative() {
            !v
        } else {
            v
        }
    }

    /// Returns `true` if `lit` is assigned and satisfied.
    #[inline]
    #[must_use]
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == TruthValue::True
    }

    /// Assigns `var` to `value`.
    pub fn assign(&mut self, var: Var, value: bool) {
        let idx = var.index() as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, TruthValue::Unassigned);
        }
        self.values[idx] = TruthValue::from_bool(value);
    }

    /// Assigns the variable of `lit` so that `lit` becomes true.
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.is_positive());
    }

    /// Removes the assignment of `var`.
    pub fn unassign(&mut self, var: Var) {
        if let Some(slot) = self.values.get_mut(var.index() as usize) {
            *slot = TruthValue::Unassigned;
        }
    }

    /// Iterates over all assigned `(variable, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values.iter().enumerate().filter_map(|(i, v)| {
            #[allow(clippy::cast_possible_truncation)]
            v.to_bool().map(|b| (Var::new(i as u32), b))
        })
    }

    /// Returns the number of assigned variables.
    #[must_use]
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_assigned()).count()
    }
}

impl FromIterator<(Var, bool)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (Var, bool)>>(iter: I) -> Self {
        let mut a = Assignment::new();
        for (var, value) in iter {
            a.assign(var, value);
        }
        a
    }
}

impl FromIterator<Lit> for Assignment {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        let mut a = Assignment::new();
        for lit in iter {
            a.assign_lit(lit);
        }
        a
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_value_negation() {
        assert_eq!(!TruthValue::True, TruthValue::False);
        assert_eq!(!TruthValue::False, TruthValue::True);
        assert_eq!(!TruthValue::Unassigned, TruthValue::Unassigned);
    }

    #[test]
    fn assign_and_query() {
        let mut a = Assignment::new();
        let x = Var::new(2);
        a.assign(x, false);
        assert_eq!(a.value(x), TruthValue::False);
        assert_eq!(a.lit_value(Lit::negative(x)), TruthValue::True);
        assert!(a.satisfies(Lit::negative(x)));
        assert!(!a.satisfies(Lit::positive(x)));
        a.unassign(x);
        assert_eq!(a.value(x), TruthValue::Unassigned);
    }

    #[test]
    fn assign_lit_makes_lit_true() {
        let mut a = Assignment::new();
        let lit = Lit::negative(Var::new(4));
        a.assign_lit(lit);
        assert!(a.satisfies(lit));
    }

    #[test]
    fn from_iterators() {
        let a: Assignment = [(Var::new(0), true), (Var::new(3), false)]
            .into_iter()
            .collect();
        assert_eq!(a.assigned_count(), 2);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![(Var::new(0), true), (Var::new(3), false)]
        );
        let b: Assignment = [Lit::positive(Var::new(0)), Lit::negative(Var::new(3))]
            .into_iter()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_is_unassigned() {
        let a = Assignment::new();
        assert_eq!(a.value(Var::new(1000)), TruthValue::Unassigned);
    }
}
