//! Property-based tests of the foundation types: `VarSet` obeys the set
//! algebra laws, literals round-trip, assignments behave like maps.

use hqs_base::{Assignment, Lit, Var, VarSet};
use proptest::prelude::*;

fn arb_varset() -> impl Strategy<Value = VarSet> {
    prop::collection::vec(0u32..200, 0..16)
        .prop_map(|ids| ids.into_iter().map(Var::new).collect())
}

fn members(set: &VarSet) -> Vec<u32> {
    set.iter().map(Var::index).collect()
}

proptest! {
    #[test]
    fn union_intersection_difference_laws(a in arb_varset(), b in arb_varset()) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        for v in (0..210).map(Var::new) {
            prop_assert_eq!(union.contains(v), a.contains(v) || b.contains(v));
            prop_assert_eq!(inter.contains(v), a.contains(v) && b.contains(v));
            prop_assert_eq!(diff.contains(v), a.contains(v) && !b.contains(v));
        }
        // |A| + |B| = |A∪B| + |A∩B|
        prop_assert_eq!(a.len() + b.len(), union.len() + inter.len());
        // A\B and A∩B partition A.
        prop_assert_eq!(diff.len() + inter.len(), a.len());
    }

    #[test]
    fn in_place_matches_functional(a in arb_varset(), b in arb_varset()) {
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u, a.union(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(d, a.difference(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(i, a.intersection(&b));
    }

    #[test]
    fn subset_is_reflexive_transitive_antisymmetric(
        a in arb_varset(), b in arb_varset(), c in arb_varset())
    {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(&a, &b);
        }
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
    }

    #[test]
    fn iteration_is_sorted_and_complete(a in arb_varset()) {
        let items = members(&a);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&items, &sorted);
        prop_assert_eq!(items.len(), a.len());
        prop_assert_eq!(a.min().map(Var::index), items.first().copied());
    }

    #[test]
    fn insert_remove_roundtrip(a in arb_varset(), v in 0u32..200) {
        let var = Var::new(v);
        let mut s = a.clone();
        let was_in = s.contains(var);
        prop_assert_eq!(s.insert(var), !was_in);
        prop_assert!(s.contains(var));
        prop_assert!(s.remove(var));
        prop_assert!(!s.contains(var));
        if !was_in {
            prop_assert_eq!(&s, &a);
        }
    }

    #[test]
    fn lit_roundtrips(v in 0u32..1000, neg in any::<bool>()) {
        let lit = Lit::new(Var::new(v), neg);
        prop_assert_eq!(Lit::from_code(lit.code()), lit);
        prop_assert_eq!(Lit::from_dimacs(lit.to_dimacs()), Some(lit));
        prop_assert_eq!(!!lit, lit);
        prop_assert_eq!((!lit).var(), lit.var());
        prop_assert_ne!(!lit, lit);
    }

    #[test]
    fn assignment_behaves_like_a_map(pairs in prop::collection::vec((0u32..64, any::<bool>()), 0..32)) {
        let mut reference = std::collections::HashMap::new();
        let mut assignment = Assignment::new();
        for &(v, value) in &pairs {
            reference.insert(v, value);
            assignment.assign(Var::new(v), value);
        }
        for v in 0..70u32 {
            let expected = reference.get(&v).copied();
            prop_assert_eq!(assignment.value(Var::new(v)).to_bool(), expected);
        }
        prop_assert_eq!(assignment.assigned_count(), reference.len());
    }
}
