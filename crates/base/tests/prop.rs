//! Randomised property tests of the foundation types: `VarSet` obeys the
//! set algebra laws, literals round-trip, assignments behave like maps.
//!
//! Each test draws a few hundred cases from the deterministic [`Rng`], so
//! a failure reproduces from the printed seed.

use hqs_base::{Assignment, Lit, Rng, Var, VarSet};

const CASES: u64 = 300;

fn random_varset(rng: &mut Rng) -> VarSet {
    let n = rng.gen_range(0..16usize);
    (0..n).map(|_| Var::new(rng.gen_range(0..200u32))).collect()
}

fn members(set: &VarSet) -> Vec<u32> {
    set.iter().map(Var::index).collect()
}

#[test]
fn union_intersection_difference_laws() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = random_varset(&mut rng);
        let b = random_varset(&mut rng);
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        for v in (0..210).map(Var::new) {
            assert_eq!(
                union.contains(v),
                a.contains(v) || b.contains(v),
                "seed {seed}"
            );
            assert_eq!(
                inter.contains(v),
                a.contains(v) && b.contains(v),
                "seed {seed}"
            );
            assert_eq!(
                diff.contains(v),
                a.contains(v) && !b.contains(v),
                "seed {seed}"
            );
        }
        // |A| + |B| = |A∪B| + |A∩B|
        assert_eq!(a.len() + b.len(), union.len() + inter.len(), "seed {seed}");
        // A\B and A∩B partition A.
        assert_eq!(diff.len() + inter.len(), a.len(), "seed {seed}");
    }
}

#[test]
fn in_place_matches_functional() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let a = random_varset(&mut rng);
        let b = random_varset(&mut rng);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b), "seed {seed}");
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b), "seed {seed}");
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b), "seed {seed}");
    }
}

#[test]
fn subset_is_reflexive_transitive_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let a = random_varset(&mut rng);
        let b = random_varset(&mut rng);
        let c = random_varset(&mut rng);
        assert!(a.is_subset(&a), "seed {seed}");
        if a.is_subset(&b) && b.is_subset(&c) {
            assert!(a.is_subset(&c), "seed {seed}");
        }
        if a.is_subset(&b) && b.is_subset(&a) {
            assert_eq!(&a, &b, "seed {seed}");
        }
        assert_eq!(
            a.is_disjoint(&b),
            a.intersection(&b).is_empty(),
            "seed {seed}"
        );
        // A subset built by dropping members really is one.
        let mut sub = VarSet::new();
        for v in a.iter().filter(|_| rng.gen_bool(0.5)) {
            sub.insert(v);
        }
        assert!(sub.is_subset(&a), "seed {seed}");
    }
}

#[test]
fn iteration_is_sorted_and_complete() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let a = random_varset(&mut rng);
        let items = members(&a);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(&items, &sorted, "seed {seed}");
        assert_eq!(items.len(), a.len(), "seed {seed}");
        assert_eq!(
            a.min().map(Var::index),
            items.first().copied(),
            "seed {seed}"
        );
    }
}

#[test]
fn insert_remove_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let a = random_varset(&mut rng);
        let var = Var::new(rng.gen_range(0..200u32));
        let mut s = a.clone();
        let was_in = s.contains(var);
        assert_eq!(s.insert(var), !was_in, "seed {seed}");
        assert!(s.contains(var), "seed {seed}");
        assert!(s.remove(var), "seed {seed}");
        assert!(!s.contains(var), "seed {seed}");
        if !was_in {
            assert_eq!(&s, &a, "seed {seed}");
        }
    }
}

#[test]
fn lit_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + seed);
        let lit = Lit::new(Var::new(rng.gen_range(0..1000u32)), rng.gen_bool(0.5));
        assert_eq!(Lit::from_code(lit.code()), lit, "seed {seed}");
        assert_eq!(Lit::from_dimacs(lit.to_dimacs()), Some(lit), "seed {seed}");
        assert_eq!(!!lit, lit, "seed {seed}");
        assert_eq!((!lit).var(), lit.var(), "seed {seed}");
        assert_ne!(!lit, lit, "seed {seed}");
    }
}

#[test]
fn assignment_behaves_like_a_map() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + seed);
        let pairs: Vec<(u32, bool)> = (0..rng.gen_range(0..32usize))
            .map(|_| (rng.gen_range(0..64u32), rng.gen_bool(0.5)))
            .collect();
        let mut reference = std::collections::HashMap::new();
        let mut assignment = Assignment::new();
        for &(v, value) in &pairs {
            reference.insert(v, value);
            assignment.assign(Var::new(v), value);
        }
        for v in 0..70u32 {
            let expected = reference.get(&v).copied();
            assert_eq!(
                assignment.value(Var::new(v)).to_bool(),
                expected,
                "seed {seed}"
            );
        }
        assert_eq!(assignment.assigned_count(), reference.len(), "seed {seed}");
    }
}
