//! The end-to-end certification gate: `cargo run -p xtask -- certify`.
//!
//! Runs a corpus of DQBF instances — the small PEC smoke benchmarks plus a
//! deterministic random sweep — through
//! [`Session::solve_certified`](hqs_core::Session::solve_certified), so
//! every SAT verdict must ship a verifying Skolem certificate and every
//! UNSAT verdict a refutation whose DRAT proof is accepted by the
//! independent `hqs-proof` checker. It then corrupts known-good
//! certificates in deliberate ways and fails unless every corruption is
//! rejected. Any uncertified verdict or accepted corruption makes the
//! process exit non-zero, which is how CI consumes it.

use hqs_base::{Lit, Var};
use hqs_core::random::RandomDqbf;
use hqs_core::{extract_refutation, extract_skolem, CertifiedOutcome, Dqbf, HqsConfig, Session};
use hqs_pec::{benchmark_suite, Scale};
use std::process::ExitCode;

/// Expansion-based certification enumerates `2^universals` rows; corpus
/// instances beyond this are skipped to keep the gate fast.
const MAX_CORPUS_UNIVERSALS: usize = 10;

/// How many PEC smoke instances (post-filter) to certify.
const MAX_PEC_INSTANCES: usize = 12;

/// How many random formulas to certify.
const RANDOM_INSTANCES: u64 = 24;

/// Runs the certification gate; prints one line per instance and a
/// summary, returning a failure exit code on the first class of problem.
pub fn run() -> ExitCode {
    let mut failures = 0usize;
    let (mut sat, mut unsat, mut limit) = (0usize, 0usize, 0usize);

    for (name, dqbf) in corpus() {
        let mut session = match Session::builder()
            .config(HqsConfig {
                certify: true,
                initial_sat_check: true,
                ..HqsConfig::default()
            })
            .build()
        {
            Ok(session) => session,
            Err(error) => {
                failures += 1;
                eprintln!("certify: {name}: invalid config: {error}");
                continue;
            }
        };
        match session.solve_certified(&dqbf) {
            Ok(CertifiedOutcome::Sat(cert)) => {
                sat += 1;
                println!(
                    "certify: {name}: SAT, {} Skolem functions verified",
                    cert.functions.len()
                );
            }
            Ok(CertifiedOutcome::Unsat(cert)) => {
                unsat += 1;
                println!(
                    "certify: {name}: UNSAT, DRAT proof over {} expansion instances accepted",
                    cert.bindings.len()
                );
            }
            Ok(CertifiedOutcome::Limit(e)) => {
                limit += 1;
                println!("certify: {name}: no verdict within budget ({e:?})");
            }
            Err(err) => {
                failures += 1;
                eprintln!("certify: {name}: FAILED: {err}");
            }
        }
    }

    failures += corruption_checks();

    println!(
        "certify: {sat} SAT + {unsat} UNSAT certified, {limit} skipped on budget, \
         {failures} failure(s)"
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The instance corpus: filtered PEC smoke suite plus random formulas.
fn corpus() -> Vec<(String, Dqbf)> {
    let mut instances: Vec<(String, Dqbf)> = benchmark_suite(Scale::Smoke)
        .into_iter()
        .filter(|inst| {
            let mut bound = inst.dqbf.clone();
            bound.bind_free_vars();
            bound.universals().len() <= MAX_CORPUS_UNIVERSALS
        })
        .take(MAX_PEC_INSTANCES)
        .map(|inst| (inst.name.clone(), inst.dqbf))
        .collect();
    let shapes = [
        RandomDqbf::default(),
        RandomDqbf {
            num_universals: 6,
            num_existentials: 5,
            num_clauses: 20,
            ..RandomDqbf::default()
        },
        RandomDqbf {
            num_universals: 3,
            num_existentials: 6,
            dependency_density: 0.25,
            num_clauses: 16,
            max_clause_len: 4,
        },
    ];
    for seed in 0..RANDOM_INSTANCES {
        let shape = shapes[(seed % shapes.len() as u64) as usize];
        instances.push((format!("random_s{seed}"), shape.generate(seed)));
    }
    instances
}

/// Corrupts known-good certificates of fixed instances in ways that must
/// always be rejected; returns the number of corruptions that were
/// (wrongly) accepted.
fn corruption_checks() -> usize {
    let mut accepted = 0usize;

    // ∀x ∃y(x): y ↔ x — the identity table is the unique Skolem function,
    // so flipping any row must be rejected.
    let mut sat_formula = Dqbf::new();
    let x = sat_formula.add_universal();
    let y = sat_formula.add_existential([x]);
    sat_formula.add_clause([Lit::positive(x), Lit::negative(y)]);
    sat_formula.add_clause([Lit::negative(x), Lit::positive(y)]);
    match extract_skolem(&sat_formula) {
        Some(cert) if cert.verify(&sat_formula) => {
            for row in 0..cert.functions[0].table.len() {
                let mut tampered = cert.clone();
                tampered.functions[0].table[row] = !tampered.functions[0].table[row];
                if tampered.verify(&sat_formula) || tampered.verify_certified(&sat_formula) {
                    accepted += 1;
                    eprintln!("certify: corrupted Skolem table row {row} was ACCEPTED");
                }
            }
            println!("certify: corrupted Skolem certificates rejected");
        }
        _ => {
            accepted += 1;
            eprintln!("certify: could not build the baseline Skolem certificate");
        }
    }

    // ∃y∃z: XOR-style contradiction whose refutation needs real DRAT
    // lemmas (not just conflicting units), so gutting the proof must be
    // rejected.
    let mut unsat_formula = Dqbf::new();
    let y = unsat_formula.add_existential([]);
    let z = unsat_formula.add_existential([]);
    for (sy, sz) in [(true, true), (false, true), (true, false), (false, false)] {
        unsat_formula.add_clause([Lit::new(y, !sy), Lit::new(z, !sz)]);
    }
    match extract_refutation(&unsat_formula) {
        Some(cert) if cert.verify(&unsat_formula) => {
            // Keep only deletion lines: the refutation disappears.
            let mut gutted = cert.clone();
            gutted.drat = cert
                .drat
                .lines()
                .filter(|l| l.trim_start().starts_with('d'))
                .collect::<Vec<_>>()
                .join("\n");
            if gutted.verify(&unsat_formula) {
                accepted += 1;
                eprintln!("certify: gutted DRAT proof was ACCEPTED");
            }
            // A tampered expansion trace must be rejected too.
            let mut rebound = cert.clone();
            // analyze::allow(newtype): deliberately corrupts the binding to prove verification rejects it
            rebound.bindings[0].instance = Var::new(rebound.bindings[0].instance.index() + 1000);
            if rebound.verify(&unsat_formula) {
                accepted += 1;
                eprintln!("certify: tampered expansion trace was ACCEPTED");
            }
            if accepted == 0 {
                println!("certify: corrupted refutation certificates rejected");
            }
        }
        _ => {
            accepted += 1;
            eprintln!("certify: could not build the baseline refutation certificate");
        }
    }

    accepted
}
