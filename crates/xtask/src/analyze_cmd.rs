//! The `analyze` subcommand: drives the `hqs-analyze` passes and the
//! ratchet baseline.
//!
//! ```text
//! cargo run -p xtask -- analyze                      # print findings
//! cargo run -p xtask -- analyze --summary            # per-pass counts
//! cargo run -p xtask -- analyze --report <path>      # findings as JSON
//! cargo run -p xtask -- analyze --check-baseline     # CI gate
//! cargo run -p xtask -- analyze --write-baseline     # refresh baseline
//! ```
//!
//! `--check-baseline` compares findings against the committed
//! `analyze-baseline.json` and fails on any finding the baseline does
//! not cover **and** on any baseline entry that no longer matches — the
//! ratchet only turns one way. `--write-baseline` regenerates the file
//! after debt has been paid down (or deliberately, with review, when a
//! new pass lands with pre-existing findings).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use hqs_analyze::baseline::Baseline;
use hqs_analyze::config;
use hqs_analyze::diag;
use hqs_analyze::passes;
use hqs_analyze::Workspace;

/// File names, relative to the workspace root.
const BASELINE_FILE: &str = "analyze-baseline.json";
const HOT_PATHS_FILE: &str = "analyze-hot-paths.toml";

/// Entry point for `cargo run -p xtask -- analyze …`.
pub fn run(args: &[String]) -> ExitCode {
    let mut check_baseline = false;
    let mut write_baseline = false;
    let mut summary = false;
    let mut report: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check-baseline" => check_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--summary" => summary = true,
            "--report" => match it.next() {
                Some(path) => report = Some(path.clone()),
                None => {
                    eprintln!("analyze: --report requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "analyze: unknown flag `{other}` (expected --check-baseline, \
                     --write-baseline, --summary, --report <path>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let root = crate::workspace_root();
    let started = Instant::now();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("analyze: failed to load workspace: {err}");
            return ExitCode::FAILURE;
        }
    };
    let hot = match load_hot_paths(&root) {
        Ok(hot) => hot,
        Err(err) => {
            eprintln!("analyze: {err}");
            return ExitCode::FAILURE;
        }
    };
    let diags = passes::run_all(&ws, &hot);
    let elapsed = started.elapsed();

    if let Some(path) = &report {
        let json = diag::to_json_array(&diags);
        if let Err(err) = std::fs::write(root.join(path), json) {
            eprintln!("analyze: failed to write report {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("analyze: report written to {path}");
    }
    if summary {
        println!(
            "analyze: {} files, {} crates, {} finding(s) in {:.2?}",
            ws.files.len(),
            ws.crates.len(),
            diags.len(),
            elapsed
        );
        for pass in passes::PASS_NAMES {
            let count = diags.iter().filter(|d| d.pass == *pass).count();
            println!("  {pass:<12} {count}");
        }
    }

    if write_baseline {
        let baseline = Baseline::from_diags(&diags);
        if let Err(err) = std::fs::write(root.join(BASELINE_FILE), baseline.emit()) {
            eprintln!("analyze: failed to write {BASELINE_FILE}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: baseline written to {BASELINE_FILE} ({} entry/ies covering {} finding(s))",
            baseline.entries.len(),
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    if check_baseline {
        let baseline = match load_baseline(&root) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("analyze: {err}");
                return ExitCode::FAILURE;
            }
        };
        let result = baseline.check(&diags);
        for line in &result.regressions {
            eprintln!("analyze: new finding: {line}");
        }
        for line in &result.stale {
            eprintln!("analyze: stale baseline entry: {line}");
        }
        if result.ok() {
            println!(
                "analyze: OK ({} finding(s), all covered by the baseline)",
                diags.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "analyze: FAILED ({} regression(s), {} stale baseline entry/ies)",
                result.regressions.len(),
                result.stale.len()
            );
            ExitCode::FAILURE
        }
    } else {
        for d in &diags {
            println!(
                "[{}] {}:{}{} {}",
                d.pass,
                d.path,
                d.line,
                symbol_suffix(&d.symbol),
                d.message
            );
        }
        if diags.is_empty() && !summary {
            println!("analyze: no findings");
        }
        ExitCode::SUCCESS
    }
}

fn symbol_suffix(symbol: &str) -> String {
    if symbol.is_empty() {
        ":".to_string()
    } else {
        format!(" ({symbol}):")
    }
}

fn load_hot_paths(root: &Path) -> Result<config::HotPaths, String> {
    let path = root.join(HOT_PATHS_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("analyze: note: {HOT_PATHS_FILE} not found, hot-path passes are vacuous");
            return Ok(config::HotPaths::default());
        }
        Err(err) => return Err(format!("failed to read {HOT_PATHS_FILE}: {err}")),
    };
    let (hot, warnings) = config::parse(&text);
    if let Some(first) = warnings.first() {
        return Err(format!("{HOT_PATHS_FILE}: {first}"));
    }
    Ok(hot)
}

fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            // No baseline committed: the ratchet starts at zero debt.
            return Ok(Baseline::default());
        }
        Err(err) => return Err(format!("failed to read {BASELINE_FILE}: {err}")),
    };
    Baseline::parse(&text).map_err(|e| format!("{BASELINE_FILE}: {e}"))
}
