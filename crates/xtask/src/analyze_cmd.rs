//! The `analyze` subcommand: drives the `hqs-analyze` passes and the
//! ratchet baseline.
//!
//! ```text
//! cargo run -p xtask -- analyze                      # print findings
//! cargo run -p xtask -- analyze --summary            # per-pass counts + graph stats
//! cargo run -p xtask -- analyze --report <path>      # findings + call-graph stats as JSON
//! cargo run -p xtask -- analyze --callgraph <path>   # full call-graph dump as JSON
//! cargo run -p xtask -- analyze --cfg-dump <path>    # per-function CFG stats as JSON
//! cargo run -p xtask -- analyze --lock-graph <path>  # lock-order graph as JSON
//! cargo run -p xtask -- analyze --lock-dot <path>    # lock-order graph as Graphviz dot
//! cargo run -p xtask -- analyze --bench <path>       # timing JSON (BENCH_analyze.json)
//! cargo run -p xtask -- analyze --sarif <path>       # findings + advisories as SARIF 2.1.0
//! cargo run -p xtask -- analyze --explain <pass>     # rationale + fix recipe for a pass
//! cargo run -p xtask -- analyze --check-baseline     # CI gate
//! cargo run -p xtask -- analyze --write-baseline     # refresh baseline
//! ```
//!
//! `--check-baseline` compares findings against the committed
//! `analyze-baseline.json` and fails on any finding the baseline does
//! not cover **and** on any baseline entry that no longer matches — the
//! ratchet only turns one way. It also fails when the call-site
//! resolution rate drops below `[callgraph] min-resolution-percent`
//! in `analyze-hot-paths.toml`, so the graph cannot silently decay.
//! `--write-baseline` regenerates the file after debt has been paid
//! down (or deliberately, with review, when a new pass lands with
//! pre-existing findings).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use hqs_analyze::baseline::Baseline;
use hqs_analyze::cfg;
use hqs_analyze::config;
use hqs_analyze::dataflow;
use hqs_analyze::diag;
use hqs_analyze::json::{self, Json};
use hqs_analyze::passes;
use hqs_analyze::Workspace;

/// File names, relative to the workspace root.
const BASELINE_FILE: &str = "analyze-baseline.json";
const HOT_PATHS_FILE: &str = "analyze-hot-paths.toml";

/// Entry point for `cargo run -p xtask -- analyze …`.
pub fn run(args: &[String]) -> ExitCode {
    let mut check_baseline = false;
    let mut write_baseline = false;
    let mut summary = false;
    let mut report: Option<String> = None;
    let mut callgraph: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut cfg_dump: Option<String> = None;
    let mut lock_graph: Option<String> = None;
    let mut lock_dot: Option<String> = None;
    let mut sarif: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check-baseline" => check_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--summary" => summary = true,
            "--report" | "--callgraph" | "--bench" | "--cfg-dump" | "--lock-graph"
            | "--lock-dot" | "--sarif" => {
                let flag = arg.clone();
                match it.next() {
                    Some(path) => match flag.as_str() {
                        "--report" => report = Some(path.clone()),
                        "--callgraph" => callgraph = Some(path.clone()),
                        "--cfg-dump" => cfg_dump = Some(path.clone()),
                        "--lock-graph" => lock_graph = Some(path.clone()),
                        "--lock-dot" => lock_dot = Some(path.clone()),
                        "--sarif" => sarif = Some(path.clone()),
                        _ => bench = Some(path.clone()),
                    },
                    None => {
                        eprintln!("analyze: {flag} requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--explain" => {
                return match it.next() {
                    Some(topic) => explain(topic),
                    None => {
                        eprintln!(
                            "analyze: --explain requires a pass name (one of: {})",
                            passes::PASS_NAMES.join(", ")
                        );
                        ExitCode::FAILURE
                    }
                };
            }
            other => {
                eprintln!(
                    "analyze: unknown flag `{other}` (expected --check-baseline, \
                     --write-baseline, --summary, --report <path>, --callgraph <path>, \
                     --cfg-dump <path>, --lock-graph <path>, --lock-dot <path>, \
                     --bench <path>, --sarif <path>, --explain <pass>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let root = crate::workspace_root();
    let started = Instant::now();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("analyze: failed to load workspace: {err}");
            return ExitCode::FAILURE;
        }
    };
    let load_elapsed = started.elapsed();
    let cfg = match load_config(&root) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("analyze: {err}");
            return ExitCode::FAILURE;
        }
    };
    let analysis_started = Instant::now();
    let analysis = passes::analyze(&ws, &cfg);
    let analyze_elapsed = analysis_started.elapsed();
    let diags = &analysis.diags;
    let graph = &analysis.graph;
    let rate = graph.stats.resolution_rate();

    if let Some(path) = &report {
        let obj = Json::Object(vec![
            ("schema".into(), Json::String("hqs-analyze-report/3".into())),
            (
                "findings".into(),
                json::parse(&diag::to_json_array(diags)).unwrap_or(Json::Array(vec![])),
            ),
            (
                "advisories".into(),
                json::parse(&diag::to_json_array(&analysis.advisories))
                    .unwrap_or(Json::Array(vec![])),
            ),
            ("callgraph".into(), graph.stats_json()),
        ]);
        if let Err(err) = std::fs::write(root.join(path), json::emit_pretty(&obj)) {
            eprintln!("analyze: failed to write report {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("analyze: report written to {path}");
    }
    if let Some(path) = &callgraph {
        if let Err(err) = std::fs::write(root.join(path), json::emit_pretty(&graph.to_json())) {
            eprintln!("analyze: failed to write call graph {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: call graph written to {path} ({} functions, {} edges)",
            graph.table.defs.len(),
            graph.edges.len()
        );
    }
    if let Some(path) = &cfg_dump {
        let (dump, cfg_count, block_count) = cfg_dump_json(&ws);
        if let Err(err) = std::fs::write(root.join(path), json::emit_pretty(&dump)) {
            eprintln!("analyze: failed to write CFG dump {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: CFG dump written to {path} ({cfg_count} functions, {block_count} blocks)"
        );
    }
    if let Some(path) = &lock_graph {
        if let Err(err) = std::fs::write(
            root.join(path),
            json::emit_pretty(&analysis.lock_graph.to_json()),
        ) {
            eprintln!("analyze: failed to write lock graph {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: lock-order graph written to {path} ({} classes, {} edges, {} cycle(s))",
            analysis.lock_graph.nodes.len(),
            analysis.lock_graph.edges.len(),
            analysis.lock_graph.cycles().len()
        );
    }
    if let Some(path) = &lock_dot {
        if let Err(err) = std::fs::write(root.join(path), analysis.lock_graph.to_dot()) {
            eprintln!("analyze: failed to write lock dot {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("analyze: lock-order dot written to {path}");
    }
    if let Some(path) = &sarif {
        let doc = sarif_json(diags, &analysis.advisories);
        if let Err(err) = std::fs::write(root.join(path), json::emit_pretty(&doc)) {
            eprintln!("analyze: failed to write SARIF {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: SARIF written to {path} ({} finding(s), {} advisory/ies)",
            diags.len(),
            analysis.advisories.len()
        );
    }
    if let Some(path) = &bench {
        let (cfg_count, block_count, cfg_build_ms, dataflow_ms) = bench_cfg_dataflow(&ws);
        let obj = Json::Object(vec![
            ("schema".into(), Json::String("hqs-bench-analyze/3".into())),
            ("files".into(), Json::Number(ws.files.len() as f64)),
            ("crates".into(), Json::Number(ws.crates.len() as f64)),
            (
                "functions".into(),
                Json::Number(graph.table.defs.len() as f64),
            ),
            ("edges".into(), Json::Number(graph.edges.len() as f64)),
            (
                "call_sites".into(),
                Json::Number(graph.stats.total_sites as f64),
            ),
            ("findings".into(), Json::Number(diags.len() as f64)),
            (
                "advisories".into(),
                Json::Number(analysis.advisories.len() as f64),
            ),
            (
                "resolution_rate_percent".into(),
                Json::Number((rate * 100.0).round() / 100.0),
            ),
            (
                "load_ms".into(),
                Json::Number((load_elapsed.as_secs_f64() * 1e5).round() / 100.0),
            ),
            (
                "analyze_ms".into(),
                Json::Number((analyze_elapsed.as_secs_f64() * 1e5).round() / 100.0),
            ),
            ("cfg_functions".into(), Json::Number(cfg_count as f64)),
            ("cfg_blocks".into(), Json::Number(block_count as f64)),
            (
                "cfg_build_ms".into(),
                Json::Number((cfg_build_ms * 100.0).round() / 100.0),
            ),
            (
                "dataflow_ms".into(),
                Json::Number((dataflow_ms * 100.0).round() / 100.0),
            ),
        ]);
        if let Err(err) = std::fs::write(root.join(path), json::emit_pretty(&obj)) {
            eprintln!("analyze: failed to write bench {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("analyze: bench written to {path}");
    }
    if summary {
        println!(
            "analyze: {} files, {} crates, {} finding(s), {} advisory/ies in {:.2?}",
            ws.files.len(),
            ws.crates.len(),
            diags.len(),
            analysis.advisories.len(),
            load_elapsed + analyze_elapsed
        );
        for pass in passes::PASS_NAMES {
            let count = diags.iter().filter(|d| d.pass == *pass).count()
                + analysis
                    .advisories
                    .iter()
                    .filter(|d| d.pass == *pass)
                    .count();
            println!("  {pass:<20} {count}");
        }
        println!(
            "analyze: call graph: {} functions, {} edges, {} sites \
             ({} resolved, {} external, {} local closures, {} ambiguous, {} unknown) \
             — {rate:.2}% resolved",
            graph.table.defs.len(),
            graph.edges.len(),
            graph.stats.total_sites,
            graph.stats.resolved,
            graph.stats.external,
            graph.stats.local_closures,
            graph.stats.ambiguous,
            graph.stats.unknown,
        );
    }

    if write_baseline {
        let baseline = Baseline::from_diags(diags);
        if let Err(err) = std::fs::write(root.join(BASELINE_FILE), baseline.emit()) {
            eprintln!("analyze: failed to write {BASELINE_FILE}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: baseline written to {BASELINE_FILE} ({} entry/ies covering {} finding(s))",
            baseline.entries.len(),
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    if check_baseline {
        let baseline = match load_baseline(&root) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("analyze: {err}");
                return ExitCode::FAILURE;
            }
        };
        let result = baseline.check(diags);
        for line in &result.regressions {
            eprintln!("analyze: new finding: {line}");
        }
        for line in &result.stale {
            eprintln!("analyze: stale baseline entry: {line}");
        }
        let rate_ok = rate >= cfg.min_resolution_percent;
        if !rate_ok {
            eprintln!(
                "analyze: call-site resolution rate {rate:.2}% is below the \
                 [callgraph] min-resolution-percent floor {:.2}%",
                cfg.min_resolution_percent
            );
        }
        if result.ok() && rate_ok {
            println!(
                "analyze: OK ({} finding(s), all covered by the baseline; \
                 resolution rate {rate:.2}%)",
                diags.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "analyze: FAILED ({} regression(s), {} stale baseline entry/ies{})",
                result.regressions.len(),
                result.stale.len(),
                if rate_ok {
                    String::new()
                } else {
                    ", resolution rate below floor".to_string()
                }
            );
            ExitCode::FAILURE
        }
    } else {
        for d in diags {
            println!(
                "[{}] {}:{}{} {}",
                d.pass,
                d.path,
                d.line,
                symbol_suffix(&d.symbol),
                d.message
            );
        }
        // Advisories are suggestions, not ratcheted findings: printed
        // with a distinct prefix, never failing the run.
        for d in &analysis.advisories {
            println!(
                "[advice:{}] {}:{}{} {}",
                d.pass,
                d.path,
                d.line,
                symbol_suffix(&d.symbol),
                d.message
            );
        }
        if diags.is_empty() && analysis.advisories.is_empty() && !summary {
            println!("analyze: no findings");
        }
        ExitCode::SUCCESS
    }
}

/// Builds the SARIF 2.1.0 document for `--sarif`: ratcheted findings at
/// `error` level, advisories at `note`, one result per diagnostic with
/// the pass name as the rule id — the shape PR annotation tooling
/// ingests directly.
fn sarif_json(findings: &[diag::Diagnostic], advisories: &[diag::Diagnostic]) -> Json {
    let result = |d: &diag::Diagnostic, level: &str| {
        Json::Object(vec![
            ("ruleId".into(), Json::String(d.pass.clone())),
            ("level".into(), Json::String(level.to_string())),
            (
                "message".into(),
                Json::Object(vec![("text".into(), Json::String(d.message.clone()))]),
            ),
            (
                "locations".into(),
                Json::Array(vec![Json::Object(vec![(
                    "physicalLocation".into(),
                    Json::Object(vec![
                        (
                            "artifactLocation".into(),
                            Json::Object(vec![("uri".into(), Json::String(d.path.clone()))]),
                        ),
                        (
                            "region".into(),
                            Json::Object(vec![(
                                "startLine".into(),
                                Json::Number(f64::from(d.line.max(1))),
                            )]),
                        ),
                    ]),
                )])]),
            ),
        ])
    };
    let mut results: Vec<Json> = findings.iter().map(|d| result(d, "error")).collect();
    results.extend(advisories.iter().map(|d| result(d, "note")));
    let rules: Vec<Json> = passes::PASS_NAMES
        .iter()
        .map(|name| Json::Object(vec![("id".into(), Json::String((*name).to_string()))]))
        .collect();
    Json::Object(vec![
        (
            "$schema".into(),
            Json::String("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version".into(), Json::String("2.1.0".into())),
        (
            "runs".into(),
            Json::Array(vec![Json::Object(vec![
                (
                    "tool".into(),
                    Json::Object(vec![(
                        "driver".into(),
                        Json::Object(vec![
                            ("name".into(), Json::String("hqs-analyze".into())),
                            ("rules".into(), Json::Array(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), Json::Array(results)),
            ])]),
        ),
    ])
}

/// Builds the `--cfg-dump` JSON: per-function block/edge/loop counts,
/// so the CI artifact shows the shape the path-sensitive passes ran
/// over without dumping every token. Returns (json, functions, blocks).
fn cfg_dump_json(ws: &Workspace) -> (Json, usize, usize) {
    let mut functions = Vec::new();
    let mut cfg_count = 0usize;
    let mut block_count = 0usize;
    for file in &ws.files {
        let code = passes::code_indices(file);
        for fn_cfg in cfg::build_all(file, &code) {
            let edges: usize = fn_cfg.blocks.iter().map(|b| b.succs.len()).sum();
            cfg_count += 1;
            block_count += fn_cfg.blocks.len();
            let loops: Vec<Json> = fn_cfg
                .loops
                .iter()
                .map(|l| {
                    Json::Object(vec![
                        ("line".into(), Json::Number(f64::from(l.line))),
                        ("depth".into(), Json::Number(f64::from(l.depth))),
                        (
                            "label".into(),
                            l.label
                                .as_ref()
                                .map_or(Json::Null, |s| Json::String(s.clone())),
                        ),
                    ])
                })
                .collect();
            functions.push(Json::Object(vec![
                ("path".into(), Json::String(file.path.clone())),
                ("symbol".into(), Json::String(fn_cfg.symbol.clone())),
                (
                    "line".into(),
                    Json::Number(f64::from(
                        fn_cfg
                            .blocks
                            .iter()
                            .map(|b| b.line)
                            .find(|&l| l > 0)
                            .unwrap_or(0),
                    )),
                ),
                ("blocks".into(), Json::Number(fn_cfg.blocks.len() as f64)),
                ("edges".into(), Json::Number(edges as f64)),
                ("loops".into(), Json::Array(loops)),
            ]));
        }
    }
    let dump = Json::Object(vec![
        ("schema".into(), Json::String("hqs-analyze-cfg/1".into())),
        ("functions".into(), Json::Number(cfg_count as f64)),
        ("blocks".into(), Json::Number(block_count as f64)),
        ("cfgs".into(), Json::Array(functions)),
    ]);
    (dump, cfg_count, block_count)
}

/// Times the CFG and dataflow layers for `--bench`: one full CFG build
/// over the workspace, then a reachable-blocks dataflow (forward/union,
/// one fact per block) solved on every CFG — the same engine the
/// path-sensitive passes run, with a workload proportional to real
/// graph shapes. Returns (functions, blocks, cfg_build_ms, dataflow_ms).
fn bench_cfg_dataflow(ws: &Workspace) -> (usize, usize, f64, f64) {
    let started = Instant::now();
    let mut cfgs: Vec<hqs_analyze::cfg::Cfg> = Vec::new();
    for file in &ws.files {
        let code = passes::code_indices(file);
        cfgs.extend(cfg::build_all(file, &code));
    }
    let cfg_build_ms = started.elapsed().as_secs_f64() * 1e3;
    let block_count: usize = cfgs.iter().map(|c| c.blocks.len()).sum();

    let started = Instant::now();
    let mut reached = 0usize;
    for fn_cfg in &cfgs {
        let n = fn_cfg.blocks.len();
        let mut gk = dataflow::GenKill::new(n, n);
        for b in 0..n {
            gk.gen[b].insert(b);
        }
        let solution = dataflow::solve(
            fn_cfg,
            &gk,
            dataflow::Direction::Forward,
            dataflow::Meet::Union,
            &dataflow::BitSet::empty(n),
        );
        reached += solution.out[hqs_analyze::cfg::EXIT].iter().count();
    }
    let dataflow_ms = started.elapsed().as_secs_f64() * 1e3;
    // `reached` keeps the loop from being optimized out and is a cheap
    // sanity invariant: every block set is non-empty past ENTRY.
    debug_assert!(reached >= cfgs.len());
    (cfgs.len(), block_count, cfg_build_ms, dataflow_ms)
}

fn symbol_suffix(symbol: &str) -> String {
    if symbol.is_empty() {
        ":".to_string()
    } else {
        format!(" ({symbol}):")
    }
}

fn load_config(root: &Path) -> Result<config::AnalyzeConfig, String> {
    let path = root.join(HOT_PATHS_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("analyze: note: {HOT_PATHS_FILE} not found, hot-path passes are vacuous");
            return Ok(config::AnalyzeConfig::default());
        }
        Err(err) => return Err(format!("failed to read {HOT_PATHS_FILE}: {err}")),
    };
    let (cfg, warnings) = config::parse(&text);
    if let Some(first) = warnings.first() {
        return Err(format!("{HOT_PATHS_FILE}: {first}"));
    }
    Ok(cfg)
}

fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            // No baseline committed: the ratchet starts at zero debt.
            return Ok(Baseline::default());
        }
        Err(err) => return Err(format!("failed to read {BASELINE_FILE}: {err}")),
    };
    Baseline::parse(&text).map_err(|e| format!("{BASELINE_FILE}: {e}"))
}

/// Prints the rationale and fix recipe for one pass, so a CI failure is
/// self-serve.
fn explain(topic: &str) -> ExitCode {
    let entry = EXPLANATIONS.iter().find(|(name, _)| *name == topic);
    match entry {
        Some((name, text)) => {
            println!("{name}\n{}\n{text}", "=".repeat(name.len()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "analyze: no explanation for `{topic}` (known passes: {})",
                passes::PASS_NAMES.join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

/// One explanation per pass: why it exists, how to fix a finding, and
/// which annotation (if any) waives it.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "layering",
        "Why: the crate DAG (base → cnf → {sat, proof} → {maxsat, aig} → qbf → core → apps)\n\
         keeps subsystem boundaries honest; cycles and reach-through make refactors unsafe.\n\
         Fix: depend only on lower layers; move shared code down; never import another\n\
         crate's private modules. No annotation waives this pass.",
    ),
    (
        "panic-path",
        "Why: functions listed in [hot-paths] run in the solver's innermost loops where a\n\
         latent panic aborts a whole solve. unwrap/expect/panic!/unreachable!/[] indexing\n\
         are denied there.\n\
         Fix: use get/match or restructure so the invariant is by-construction; where the\n\
         index is proven in bounds, annotate the site with\n\
         `// analyze::allow(panic): <reason>`.",
    ),
    (
        "hot-alloc",
        "Why: per-iteration allocation in hot loops dominates solver runtime.\n\
         Fix: hoist to a scratch buffer reused via std::mem::take, or pre-size outside the\n\
         loop; amortized/once-per-call allocations take\n\
         `// analyze::allow(alloc): <reason>`.",
    ),
    (
        "newtype",
        "Why: Lit/Var cross into raw integers only through the sanctioned helpers in\n\
         hqs-base, so encoding changes stay local.\n\
         Fix: use the helper methods; justified casts take\n\
         `// analyze::allow(newtype): <reason>`.",
    ),
    (
        "annotation",
        "Why: a suppression that fails to parse would silently look like an active waiver.\n\
         Fix: write `// analyze::allow(kind) [lines=N]: reason` with kind one of panic,\n\
         alloc, newtype, cancel, lock, determinism and a non-empty reason.",
    ),
    (
        "hot-transitive",
        "Why: hot-path discipline that stops at hand-listed functions goes stale the moment\n\
         a seed grows a helper. This pass computes the callee closure of the [hot-paths]\n\
         seeds over the workspace call graph and applies the same panic/alloc denies to\n\
         every reachable function. The diagnostic shows the call chain that makes the\n\
         function hot.\n\
         Fix: as for panic-path/hot-alloc at the offending site — refactor, or annotate\n\
         the site with `// analyze::allow(panic|alloc): <reason>`. If the chain itself is\n\
         a resolver over-approximation (a same-named method on an unrelated type), tighten\n\
         the callee's name or accept the stricter standard.",
    ),
    (
        "cancel-poll",
        "Why: every loop in a solver-entry function ([cancel-poll] functions) must observe\n\
         cancellation, or a stuck instance makes the whole portfolio uncancellable. The\n\
         check is path-sensitive over the function's CFG: *every* path that completes an\n\
         iteration (including fast-path `continue`s and partial `break`-outs) must reach\n\
         a poll; the diagnostic renders one concrete unpolled path by line numbers.\n\
         Fix: poll `budget.check(…)`/`token.is_cancelled()`/`stop_requested()` on the\n\
         unpolled path (usually: before a `continue`, or at the loop head); genuinely\n\
         bounded loops take `// analyze::allow(cancel): <reason>` on the loop header or\n\
         the first line of the loop body.",
    ),
    (
        "concurrency-ordering",
        "Why: every atomic Ordering:: choice is a claim about a happens-before edge; the\n\
         committed allowlist in [concurrency] ordering forces each claim to be written\n\
         down once and reviewed when it changes. The check is two-way: unlisted sites and\n\
         stale entries both fail.\n\
         Fix: add `path::Type::fn::Variant` with a justification comment to\n\
         analyze-hot-paths.toml, or strengthen the ordering. Duplicate an entry to allow\n\
         two sites of the same variant in one function.",
    ),
    (
        "concurrency-lock",
        "Why: the engine's sharded deques stay contention-free only if guards are short-\n\
         lived; allocating or calling a solver under a held MutexGuard serializes workers.\n\
         Guard liveness is a real dataflow over the function's CFG: an early `drop(guard)`\n\
         ends the hold on every path below it, a guard bound inside a loop is live across\n\
         the back edge, and an early `return` under a guard is still a hold.\n\
         Fix: narrow the critical section (bind, use, drop), clone out the needed data, or\n\
         annotate with `// analyze::allow(lock): <reason>`.",
    ),
    (
        "lock-order",
        "Why: two threads taking the same pair of locks in opposite orders deadlock. The\n\
         pass records every acquisition made while another guard is live — directly, or\n\
         through a call whose callee (transitively) acquires — into a global lock-order\n\
         graph of crate-qualified lock classes, and fails on any cycle, rendering each\n\
         acquisition chain with file:line evidence. Class granularity is deliberate: two\n\
         different shards share a class, so shard→shard nesting (the work-stealing\n\
         hazard) is reported too.\n\
         Fix: reorder the acquisitions so every chain agrees with the global order, or\n\
         drop the held guard before acquiring; a deliberate nesting is justified at the\n\
         acquisition site with `// analyze::allow(lock): <reason>`, which suppresses the\n\
         edge. Inspect the graph with --lock-graph <path> (JSON) or --lock-dot <path>\n\
         (Graphviz; cyclic nodes and edges are drawn red).",
    ),
    (
        "determinism",
        "Why: the solver's verdicts, certificates, and logs must be bit-identical across\n\
         runs, so CI diffs and incremental certificate checks stay meaningful. Every\n\
         function reachable from a [determinism] root is denied nondeterministic inputs:\n\
         HashMap/HashSet iteration (per-process hash order), explicit RandomState,\n\
         Instant::now/SystemTime::now, thread::current(), and env::var reads. Each\n\
         finding renders its root-to-sink call chain as evidence.\n\
         Fix: switch hash-ordered iteration to BTreeMap/BTreeSet (or sort before\n\
         iterating), thread timestamps and configuration in as explicit arguments; an\n\
         order-insensitive use (e.g. summation) is justified with\n\
         `// analyze::allow(determinism): <reason>`.",
    ),
    (
        "value-range",
        "Why: interval and bounds-predicate dataflow prove divisors nonzero and\n\
         split_at/index arguments in range, so the hot-transitive pass only reports\n\
         implicit panics it cannot discharge — guards on the wrong variable, missing\n\
         guards, or bounds killed by a length-changing call between guard and use.\n\
         The pass itself emits only advisories: a hot loop indexing with a provably\n\
         monotone counter is flagged with an iterator rewrite suggestion, because\n\
         iterators traverse without per-access bounds checks.\n\
         Fix: for surviving implicit-panic findings, strengthen the guard on the exact\n\
         divisor/index used (or checked ops); for loop advisories, rewrite with\n\
         iter().enumerate(), chunks, or windows. Advisories are never baselined and\n\
         never fail CI.",
    ),
];
