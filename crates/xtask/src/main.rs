//! Workspace maintenance tasks.
//!
//! Two tasks so far. The certification gate
//!
//! ```text
//! cargo run -p xtask -- certify
//! ```
//!
//! solves a corpus of PEC and random DQBF instances under certification
//! (every SAT verdict must ship a verifying Skolem certificate, every
//! UNSAT verdict a DRAT refutation accepted by the independent
//! `hqs-proof` checker) and additionally requires deliberately corrupted
//! certificates to be rejected — see [`certify`]. And the source audit:
//!
//! ```text
//! cargo run -p xtask -- audit
//! ```
//!
//! It walks every Rust source file of the workspace (skipping `target/`)
//! and enforces, with no dependencies beyond `std`:
//!
//! * `#![forbid(unsafe_code)]` in every crate root (`src/lib.rs`,
//!   `src/main.rs`, `src/bin/*.rs`),
//! * `//!` crate-level documentation in every crate root,
//! * no `todo!`/`unimplemented!`/`dbg!` anywhere,
//! * no `.unwrap()`/`.expect(` in library code — test modules, `tests/`,
//!   `benches/` and `examples/` are exempt, and remaining library sites
//!   are budgeted per file in `crates/xtask/audit-allowlist.txt` so the
//!   count can only be burned down, never grow.
//!
//! The process exits non-zero if any violation is found, which is how CI
//! consumes it.

#![forbid(unsafe_code)]

mod certify;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => {
            let root = workspace_root();
            let allowlist_path = root.join("crates/xtask/audit-allowlist.txt");
            match run_audit(&root, &allowlist_path) {
                Ok(violations) if violations.is_empty() => {
                    println!("audit: OK");
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("audit: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("audit: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("certify") => certify::run(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- audit|certify");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved from this crate's manifest directory so
/// the audit works from any working directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// One audit finding: a rule broken at a specific location.
#[derive(Debug)]
struct Violation {
    file: String,
    line: Option<usize>,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}: {}", self.file, self.message),
            None => write!(f, "{}: {}", self.file, self.message),
        }
    }
}

/// How a source file is treated by the unwrap/expect rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FileKind {
    /// Library code: unwrap/expect budgeted by the allowlist.
    Library,
    /// Integration tests, benches, examples: unwrap/expect allowed.
    Exempt,
}

/// Runs every audit rule over the workspace rooted at `root`; returns
/// all violations found. `allowlist_path` may not exist (empty budget).
fn run_audit(root: &Path, allowlist_path: &Path) -> std::io::Result<Vec<Violation>> {
    let allowlist = load_allowlist(allowlist_path)?;
    let mut violations = Vec::new();
    let mut sources = Vec::new();
    collect_rs_files(root, &mut sources)?;
    sources.sort();
    // The audit tool cannot scan itself: its rule table and test
    // fixtures spell out the banned tokens literally.
    sources.retain(|p| !relative_name(root, p).starts_with("crates/xtask/"));

    let mut used_budget: BTreeMap<String, usize> = BTreeMap::new();
    for path in &sources {
        let rel = relative_name(root, path);
        let text = std::fs::read_to_string(path)?;
        let kind = classify(&rel);
        audit_file(&rel, &text, kind, &mut violations, &mut used_budget);
    }

    // Budget bookkeeping: every allowlisted file must exist and must not
    // be over budget; files over budget were already reported by
    // audit_file via `used_budget`.
    for (file, &budget) in &allowlist {
        match used_budget.get(file) {
            None if !root.join(file).exists() => violations.push(Violation {
                file: file.clone(),
                line: None,
                message: "allowlisted file no longer exists; drop the entry".to_string(),
            }),
            None if budget > 0 => violations.push(Violation {
                file: file.clone(),
                line: None,
                message: format!(
                    "allowlist grants {budget} unwrap/expect site(s) but the file has none; \
                     tighten the entry to 0 or drop it"
                ),
            }),
            _ => {}
        }
    }
    for (file, &used) in &used_budget {
        let budget = allowlist.get(file).copied().unwrap_or(0);
        if used > budget {
            violations.push(Violation {
                file: file.clone(),
                line: None,
                message: format!(
                    "{used} unwrap/expect site(s) in library code, allowlist grants {budget} \
                     (convert to typed errors, or raise the budget only with justification)"
                ),
            });
        } else if used < budget {
            violations.push(Violation {
                file: file.clone(),
                line: None,
                message: format!(
                    "allowlist grants {budget} unwrap/expect site(s) but only {used} remain; \
                     burn the budget down to {used}"
                ),
            });
        }
    }
    Ok(violations)
}

/// Applies the per-file rules; unwrap/expect counts land in
/// `used_budget` for the caller's budget comparison.
fn audit_file(
    rel: &str,
    text: &str,
    kind: FileKind,
    violations: &mut Vec<Violation>,
    used_budget: &mut BTreeMap<String, usize>,
) {
    let is_crate_root =
        rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") || rel.contains("src/bin/");
    if is_crate_root {
        if !text.contains("#![forbid(unsafe_code)]") {
            violations.push(Violation {
                file: rel.to_string(),
                line: None,
                message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
        if !text.lines().any(|l| l.trim_start().starts_with("//!")) {
            violations.push(Violation {
                file: rel.to_string(),
                line: None,
                message: "crate root lacks //! crate-level documentation".to_string(),
            });
        }
    }

    let mut in_test_module = false;
    let mut unwrap_sites = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.contains("#[cfg(test)]") {
            // Convention: the embedded test module is the tail of the
            // file, so everything from here on is test code.
            in_test_module = true;
        }
        for banned in ["todo!(", "unimplemented!(", "dbg!("] {
            if contains_token(line, banned) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: Some(idx + 1),
                    message: format!("`{}` must not be committed", &banned[..banned.len() - 1]),
                });
            }
        }
        if kind == FileKind::Library && !in_test_module {
            unwrap_sites += line.matches(".unwrap()").count();
            unwrap_sites += line.matches(".expect(").count();
        }
    }
    if kind == FileKind::Library && unwrap_sites > 0 {
        *used_budget.entry(rel.to_string()).or_insert(0) += unwrap_sites;
    }
}

/// Truncates a line at the first `//`, dropping line and doc comments.
/// `//` inside a string literal is rare enough in this workspace that
/// the audit tolerates the false truncation.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// True if `needle` occurs in `line` not preceded by an identifier
/// character (so `my_todo!(…)` or `xdbg!(…)` do not match).
fn contains_token(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let preceded = line[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

fn classify(rel: &str) -> FileKind {
    let in_dir =
        |dir: &str| rel.starts_with(&format!("{dir}/")) || rel.contains(&format!("/{dir}/"));
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        FileKind::Exempt
    } else {
        FileKind::Library
    }
}

fn relative_name(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses the allowlist: `<path> <count>` per line, `#` comments.
fn load_allowlist(path: &Path) -> std::io::Result<BTreeMap<String, usize>> {
    let mut budget = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(budget),
        Err(err) => return Err(err),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: expected `<path> <count>`", path.display(), idx + 1),
            ));
        };
        let Ok(count) = count.parse::<usize>() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: `{count}` is not a count", path.display(), idx + 1),
            ));
        };
        budget.insert(file.to_string(), count);
    }
    Ok(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-audit-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(&root).expect("temp tree");
            TempTree { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(path, content).expect("write");
        }

        fn audit(&self) -> Vec<Violation> {
            run_audit(&self.root, &self.root.join("allow.txt")).expect("audit runs")
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    const CLEAN_ROOT: &str = "//! A documented crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";

    #[test]
    fn clean_tree_passes() {
        let tree = TempTree::new("clean");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/tests/t.rs", "fn t() { Some(1).unwrap(); }\n");
        assert!(tree.audit().is_empty(), "{:?}", tree.audit());
    }

    #[test]
    fn missing_forbid_and_docs_fail() {
        let tree = TempTree::new("forbid");
        tree.write("crates/a/src/lib.rs", "pub fn f() {}\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations
            .iter()
            .any(|v| v.message.contains("forbid(unsafe_code)")));
        assert!(violations
            .iter()
            .any(|v| v.message.contains("crate-level documentation")));
    }

    #[test]
    fn todo_and_dbg_fail_everywhere() {
        let tree = TempTree::new("todo");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { todo!() }\n");
        tree.write("crates/a/tests/t.rs", "fn t() { dbg!(1); }\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.line.is_some()));
    }

    #[test]
    fn commented_todo_is_ignored() {
        let tree = TempTree::new("comment");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "// todo!() is banned\nfn g() {}\n");
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn library_unwrap_fails_without_allowlist() {
        let tree = TempTree::new("unwrap");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { Some(1).unwrap(); }\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].message.contains("allowlist grants 0"));
    }

    #[test]
    fn allowlisted_unwrap_passes_and_burndown_is_enforced() {
        let tree = TempTree::new("allow");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { Some(1).unwrap(); }\n");
        tree.write("allow.txt", "crates/a/src/m.rs 1\n");
        assert!(tree.audit().is_empty());
        // Over-generous budget must be burned down.
        tree.write("allow.txt", "crates/a/src/m.rs 2\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].message.contains("burn the budget down"));
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let tree = TempTree::new("testmod");
        tree.write(
            "crates/a/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn expect_err_is_not_an_expect_site() {
        let tree = TempTree::new("expecterr");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write(
            "crates/a/src/m.rs",
            "fn g(r: Result<(), ()>) { r.expect_err(\"x\"); }\n",
        );
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn stale_allowlist_entry_fails() {
        let tree = TempTree::new("stale");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("allow.txt", "crates/a/src/gone.rs 3\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].message.contains("no longer exists"));
    }
}
