//! Workspace maintenance tasks.
//!
//! Three tasks. The static-analysis driver
//!
//! ```text
//! cargo run -p xtask -- analyze [--check-baseline] [--write-baseline]
//!                               [--summary] [--report <path>]
//!                               [--callgraph <path>] [--bench <path>]
//!                               [--explain <pass>]
//! ```
//!
//! builds the workspace call graph and runs the token-level passes from
//! `hqs-analyze` (layering, panic-path, hot-loop allocation, newtype
//! discipline, annotation validation, transitive hot-path discipline,
//! cancel-poll coverage, concurrency hygiene) over the whole workspace
//! and ratchets the findings against the committed
//! `analyze-baseline.json` — see [`analyze_cmd`]. The certification gate
//!
//! ```text
//! cargo run -p xtask -- certify
//! ```
//!
//! solves a corpus of PEC and random DQBF instances under certification
//! (every SAT verdict must ship a verifying Skolem certificate, every
//! UNSAT verdict a DRAT refutation accepted by the independent
//! `hqs-proof` checker) and additionally requires deliberately corrupted
//! certificates to be rejected — see [`certify`]. And the source audit:
//!
//! ```text
//! cargo run -p xtask -- audit
//! ```
//!
//! It enforces, via the `hqs-analyze` lexer (so string literals and
//! comments can never trigger it):
//!
//! * `#![forbid(unsafe_code)]` in every crate root (`src/lib.rs`,
//!   `src/main.rs`, `src/bin/*.rs`),
//! * `//!` crate-level documentation in every crate root,
//! * no `todo!`/`unimplemented!`/`dbg!` anywhere,
//! * no `.unwrap()`/`.expect(` in library code — test modules, `tests/`,
//!   `benches/` and `examples/` are exempt, and remaining library sites
//!   are budgeted per file in `crates/xtask/audit-allowlist.txt` so the
//!   count can only be burned down, never grow.
//!
//! Earlier revisions scanned lines with substring matching and had to
//! exempt `crates/xtask` itself (its rule tables spell the banned
//! tokens out literally); the token-level port closes that hole, so the
//! audit now covers every workspace crate including this one.
//!
//! The process exits non-zero if any violation is found, which is how CI
//! consumes it.

#![forbid(unsafe_code)]

mod analyze_cmd;
mod certify;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hqs_analyze::passes::source_audit;
use hqs_analyze::Workspace;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => {
            let root = workspace_root();
            let allowlist_path = root.join("crates/xtask/audit-allowlist.txt");
            match run_audit(&root, &allowlist_path) {
                Ok(violations) if violations.is_empty() => {
                    println!("audit: OK");
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("audit: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("audit: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("analyze") => analyze_cmd::run(&args.collect::<Vec<_>>()),
        Some("certify") => certify::run(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- analyze|audit|certify");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved from this crate's manifest directory so
/// the tasks work from any working directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// Runs every audit rule over the workspace rooted at `root`; returns
/// all violations as display-ready strings. `allowlist_path` may not
/// exist (empty budget).
fn run_audit(root: &Path, allowlist_path: &Path) -> std::io::Result<Vec<String>> {
    let allowlist = load_allowlist(allowlist_path)?;
    let ws = Workspace::load(root)?;
    let findings = source_audit::run(&ws);

    let mut violations: Vec<String> = findings
        .hard
        .iter()
        .map(|d| format!("{}:{}: {}", d.path, d.line, d.message))
        .collect();

    // Budget bookkeeping, unchanged from the line-based audit: every
    // allowlisted file must exist, must not be over budget, and
    // over-generous budgets must be burned down.
    let mut used_budget: BTreeMap<String, usize> = BTreeMap::new();
    for d in &findings.unwrap_sites {
        *used_budget.entry(d.path.clone()).or_insert(0) += 1;
    }
    for (file, &budget) in &allowlist {
        match used_budget.get(file) {
            None if !root.join(file).exists() => violations.push(format!(
                "{file}: allowlisted file no longer exists; drop the entry"
            )),
            None if budget > 0 => violations.push(format!(
                "{file}: allowlist grants {budget} unwrap/expect site(s) but the file has none; \
                 tighten the entry to 0 or drop it"
            )),
            _ => {}
        }
    }
    for (file, &used) in &used_budget {
        let budget = allowlist.get(file).copied().unwrap_or(0);
        if used > budget {
            violations.push(format!(
                "{file}: {used} unwrap/expect site(s) in library code, allowlist grants {budget} \
                 (convert to typed errors, or raise the budget only with justification)"
            ));
        } else if used < budget {
            violations.push(format!(
                "{file}: allowlist grants {budget} unwrap/expect site(s) but only {used} remain; \
                 burn the budget down to {used}"
            ));
        }
    }
    violations.sort();
    Ok(violations)
}

/// Parses the allowlist: `<path> <count>` per line, `#` comments.
fn load_allowlist(path: &Path) -> std::io::Result<BTreeMap<String, usize>> {
    let mut budget = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(budget),
        Err(err) => return Err(err),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: expected `<path> <count>`", path.display(), idx + 1),
            ));
        };
        let Ok(count) = count.parse::<usize>() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: `{count}` is not a count", path.display(), idx + 1),
            ));
        };
        budget.insert(file.to_string(), count);
    }
    Ok(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-audit-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(root.join("crates")).expect("temp tree");
            TempTree { root }
        }

        /// Writes a file; for paths under `crates/<name>/` a minimal
        /// manifest is created alongside so the workspace loader picks
        /// the crate up.
        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(path, content).expect("write");
            if let Some(rest) = rel.strip_prefix("crates/") {
                if let Some((name, _)) = rest.split_once('/') {
                    let manifest = self.root.join("crates").join(name).join("Cargo.toml");
                    if !manifest.exists() {
                        std::fs::write(
                            manifest,
                            format!("[package]\nname = \"{name}\"\n\n[dependencies]\n"),
                        )
                        .expect("manifest");
                    }
                }
            }
        }

        fn audit(&self) -> Vec<String> {
            run_audit(&self.root, &self.root.join("allow.txt")).expect("audit runs")
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    const CLEAN_ROOT: &str = "//! A documented crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";

    #[test]
    fn clean_tree_passes() {
        let tree = TempTree::new("clean");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/tests/t.rs", "fn t() { Some(1).unwrap(); }\n");
        assert!(tree.audit().is_empty(), "{:?}", tree.audit());
    }

    #[test]
    fn missing_forbid_and_docs_fail() {
        let tree = TempTree::new("forbid");
        tree.write("crates/a/src/lib.rs", "pub fn f() {}\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("forbid(unsafe_code)")));
        assert!(violations
            .iter()
            .any(|v| v.contains("crate-level documentation")));
    }

    #[test]
    fn todo_and_dbg_fail_everywhere() {
        let tree = TempTree::new("todo");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { todo!() }\n");
        tree.write("crates/a/tests/t.rs", "fn t() { dbg!(1); }\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 2, "{violations:?}");
    }

    #[test]
    fn commented_todo_is_ignored() {
        let tree = TempTree::new("comment");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "// todo!() is banned\nfn g() {}\n");
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn todo_inside_string_literal_is_ignored() {
        // The line-based scanner could not make this distinction; the
        // lexer can. A string spelling `todo!(` is data, not code.
        let tree = TempTree::new("string");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write(
            "crates/a/src/m.rs",
            "pub fn banned() -> &'static str { \"todo!( and .unwrap() are banned\" }\n",
        );
        assert!(tree.audit().is_empty(), "{:?}", tree.audit());
    }

    #[test]
    fn library_unwrap_fails_without_allowlist() {
        let tree = TempTree::new("unwrap");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { Some(1).unwrap(); }\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("allowlist grants 0"));
    }

    #[test]
    fn allowlisted_unwrap_passes_and_burndown_is_enforced() {
        let tree = TempTree::new("allow");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("crates/a/src/m.rs", "fn g() { Some(1).unwrap(); }\n");
        tree.write("allow.txt", "crates/a/src/m.rs 1\n");
        assert!(tree.audit().is_empty());
        // Over-generous budget must be burned down.
        tree.write("allow.txt", "crates/a/src/m.rs 2\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("burn the budget down"));
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let tree = TempTree::new("testmod");
        tree.write(
            "crates/a/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn expect_err_is_not_an_expect_site() {
        let tree = TempTree::new("expecterr");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write(
            "crates/a/src/m.rs",
            "fn g(r: Result<(), ()>) { r.expect_err(\"x\"); }\n",
        );
        assert!(tree.audit().is_empty());
    }

    #[test]
    fn stale_allowlist_entry_fails() {
        let tree = TempTree::new("stale");
        tree.write("crates/a/src/lib.rs", CLEAN_ROOT);
        tree.write("allow.txt", "crates/a/src/gone.rs 3\n");
        let violations = tree.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("no longer exists"));
    }
}
