//! The DRAT proof format, text and binary.
//!
//! A DRAT proof is a sequence of clause *additions* and *deletions*
//! applied to an initial CNF; the proof refutes the CNF when it derives
//! the empty clause and every added clause has the RAT property (RUP in
//! the common case) at the moment of its addition.
//!
//! * **Text** format: one step per line — an addition is a clause in
//!   DIMACS notation (`1 -2 0`), a deletion is the same prefixed with
//!   `d`; `c` lines are comments.
//! * **Binary** format (the `drat-trim` binary encoding): each step is a
//!   tag byte `a` (0x61) or `d` (0x64) followed by the literals as
//!   7-bit variable-length integers of the mapped value
//!   `2·var + sign`, terminated by a `0x00` byte.

use hqs_base::Lit;
use std::fmt;

/// One step of a clausal proof.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProofStep {
    /// Addition of a derived clause (the empty clause ends a refutation).
    Add(Vec<Lit>),
    /// Deletion of a clause from the active formula.
    Delete(Vec<Lit>),
}

/// A parsed DRAT proof: the ordered list of steps.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Proof {
    /// The steps, in proof order.
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of addition steps.
    #[must_use]
    pub fn additions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Add(_)))
            .count()
    }

    /// Number of deletion steps.
    #[must_use]
    pub fn deletions(&self) -> usize {
        self.steps.len() - self.additions()
    }
}

/// Errors produced while parsing a DRAT proof.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProofParseError {
    /// A token of a text proof is not an integer.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A text proof line is not terminated by `0`.
    MissingTerminator {
        /// 1-based line number.
        line: usize,
    },
    /// A literal's magnitude is out of the representable range.
    BadLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending DIMACS value.
        value: i64,
    },
    /// A binary proof step starts with a byte other than `a`/`d`.
    UnexpectedByte {
        /// Byte offset into the proof.
        offset: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A binary proof ends in the middle of a step.
    TruncatedStep {
        /// Byte offset where input ended.
        offset: usize,
    },
    /// A binary literal decodes to an invalid value.
    BadBinaryLiteral {
        /// Byte offset of the literal.
        offset: usize,
        /// The decoded (mapped) value.
        value: u64,
    },
}

impl fmt::Display for ProofParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofParseError::BadToken { line, token } => {
                write!(f, "proof line {line}: cannot parse token `{token}`")
            }
            ProofParseError::MissingTerminator { line } => {
                write!(f, "proof line {line}: step not terminated by 0")
            }
            ProofParseError::BadLiteral { line, value } => {
                write!(f, "proof line {line}: literal {value} out of range")
            }
            ProofParseError::UnexpectedByte { offset, byte } => {
                write!(
                    f,
                    "binary proof offset {offset}: expected `a`/`d`, found byte {byte:#04x}"
                )
            }
            ProofParseError::TruncatedStep { offset } => {
                write!(f, "binary proof truncated at offset {offset}")
            }
            ProofParseError::BadBinaryLiteral { offset, value } => {
                write!(
                    f,
                    "binary proof offset {offset}: invalid literal code {value}"
                )
            }
        }
    }
}

impl std::error::Error for ProofParseError {}

/// Parses a text DRAT proof.
///
/// # Errors
///
/// Returns a [`ProofParseError`] if a token is not an integer, a step is
/// unterminated, or a literal is out of range.
pub fn parse_text_drat(text: &str) -> Result<Proof, ProofParseError> {
    let mut steps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let (delete, rest) = match trimmed.strip_prefix('d') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for token in rest.split_whitespace() {
            if terminated {
                return Err(ProofParseError::BadToken {
                    line,
                    token: token.to_string(),
                });
            }
            let value: i64 = token.parse().map_err(|_| ProofParseError::BadToken {
                line,
                token: token.to_string(),
            })?;
            if value == 0 {
                terminated = true;
                continue;
            }
            let lit = Lit::from_dimacs(value).ok_or(ProofParseError::BadLiteral { line, value })?;
            lits.push(lit);
        }
        if !terminated {
            return Err(ProofParseError::MissingTerminator { line });
        }
        steps.push(if delete {
            ProofStep::Delete(lits)
        } else {
            ProofStep::Add(lits)
        });
    }
    Ok(Proof { steps })
}

/// Renders a proof in the text DRAT format.
#[must_use]
pub fn write_text_drat(proof: &Proof) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for step in &proof.steps {
        let (prefix, lits) = match step {
            ProofStep::Add(lits) => ("", lits),
            ProofStep::Delete(lits) => ("d ", lits),
        };
        let _ = write!(out, "{prefix}");
        for lit in lits {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Maps a literal to its binary-DRAT code: `2·var` for positive,
/// `2·var + 1` for negative, with 1-based variables.
fn lit_code(lit: Lit) -> u64 {
    let dimacs = lit.to_dimacs();
    if dimacs > 0 {
        2 * dimacs.unsigned_abs()
    } else {
        2 * dimacs.unsigned_abs() + 1
    }
}

/// Renders a proof in the binary DRAT format.
#[must_use]
pub fn write_binary_drat(proof: &Proof) -> Vec<u8> {
    let mut out = Vec::new();
    for step in &proof.steps {
        let (tag, lits) = match step {
            ProofStep::Add(lits) => (b'a', lits),
            ProofStep::Delete(lits) => (b'd', lits),
        };
        out.push(tag);
        for &lit in lits {
            let mut code = lit_code(lit);
            while code >= 0x80 {
                out.push((code & 0x7f) as u8 | 0x80);
                code >>= 7;
            }
            out.push(code as u8);
        }
        out.push(0);
    }
    out
}

/// Parses a binary DRAT proof.
///
/// # Errors
///
/// Returns a [`ProofParseError`] on a bad step tag, a truncated step, or
/// an invalid literal code.
pub fn parse_binary_drat(bytes: &[u8]) -> Result<Proof, ProofParseError> {
    let mut steps = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let tag = bytes[pos];
        let delete = match tag {
            b'a' => false,
            b'd' => true,
            other => {
                return Err(ProofParseError::UnexpectedByte {
                    offset: pos,
                    byte: other,
                })
            }
        };
        pos += 1;
        let mut lits = Vec::new();
        loop {
            let lit_offset = pos;
            let mut code = 0u64;
            let mut shift = 0u32;
            loop {
                let Some(&byte) = bytes.get(pos) else {
                    return Err(ProofParseError::TruncatedStep { offset: pos });
                };
                pos += 1;
                if shift >= 63 {
                    return Err(ProofParseError::BadBinaryLiteral {
                        offset: lit_offset,
                        value: code,
                    });
                }
                code |= u64::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            if code == 0 {
                break;
            }
            if code < 2 {
                return Err(ProofParseError::BadBinaryLiteral {
                    offset: lit_offset,
                    value: code,
                });
            }
            let magnitude = (code >> 1) as i64;
            let dimacs = if code & 1 == 1 { -magnitude } else { magnitude };
            let lit = Lit::from_dimacs(dimacs).ok_or(ProofParseError::BadBinaryLiteral {
                offset: lit_offset,
                value: code,
            })?;
            lits.push(lit);
        }
        steps.push(if delete {
            ProofStep::Delete(lits)
        } else {
            ProofStep::Add(lits)
        });
    }
    Ok(Proof { steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let proof = Proof {
            steps: vec![
                ProofStep::Add(vec![lit(1), lit(-2)]),
                ProofStep::Delete(vec![lit(3)]),
                ProofStep::Add(vec![]),
            ],
        };
        let text = write_text_drat(&proof);
        assert_eq!(text, "1 -2 0\nd 3 0\n0\n");
        assert_eq!(parse_text_drat(&text).unwrap(), proof);
    }

    #[test]
    fn binary_roundtrip() {
        let proof = Proof {
            steps: vec![
                ProofStep::Add(vec![lit(1), lit(-2), lit(200)]),
                ProofStep::Delete(vec![lit(-70)]),
                ProofStep::Add(vec![]),
            ],
        };
        let bytes = write_binary_drat(&proof);
        assert_eq!(parse_binary_drat(&bytes).unwrap(), proof);
    }

    #[test]
    fn binary_known_encoding() {
        // drat-trim documentation example: lit 63 → 0x7e, lit -8193 → two+ bytes.
        let proof = Proof {
            steps: vec![ProofStep::Add(vec![lit(63)])],
        };
        let bytes = write_binary_drat(&proof);
        assert_eq!(bytes, vec![b'a', 0x7e, 0x00]);
    }

    #[test]
    fn text_errors_are_typed() {
        assert_eq!(
            parse_text_drat("1 x 0\n"),
            Err(ProofParseError::BadToken {
                line: 1,
                token: "x".to_string()
            })
        );
        assert_eq!(
            parse_text_drat("1 2\n"),
            Err(ProofParseError::MissingTerminator { line: 1 })
        );
        assert_eq!(
            parse_text_drat("c ok\n\n1 0\n2 0 3\n"),
            Err(ProofParseError::BadToken {
                line: 4,
                token: "3".to_string()
            })
        );
    }

    #[test]
    fn binary_errors_are_typed() {
        assert_eq!(
            parse_binary_drat(&[b'x', 0]),
            Err(ProofParseError::UnexpectedByte {
                offset: 0,
                byte: b'x'
            })
        );
        assert_eq!(
            parse_binary_drat(&[b'a', 0x84]),
            Err(ProofParseError::TruncatedStep { offset: 2 })
        );
        assert_eq!(
            parse_binary_drat(&[b'a', 0x01, 0x00]),
            Err(ProofParseError::BadBinaryLiteral {
                offset: 1,
                value: 1
            })
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let proof = parse_text_drat("c preamble\n\n1 0\nc trailing\n").unwrap();
        assert_eq!(proof.steps.len(), 1);
        assert_eq!(proof.additions(), 1);
        assert_eq!(proof.deletions(), 0);
    }
}
