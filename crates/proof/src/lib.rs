//! An independent DRAT proof checker.
//!
//! The HQS pipeline certifies its SAT verdicts with Skolem-function
//! certificates (`hqs-core::skolem`); this crate supplies the UNSAT half:
//! it checks **DRAT** refutation proofs — the standard clausal proof
//! format of the SAT competitions — against the original CNF, so an UNSAT
//! answer becomes a machine-checkable artifact instead of an act of faith
//! in the solver.
//!
//! Independence is the design constraint: this crate depends only on
//! `hqs-base` (literals) and `hqs-cnf` (formulas) and shares **no code**
//! with the CDCL solver in `hqs-sat`. The checker reimplements unit
//! propagation from scratch; a bug would have to occur twice, in two
//! unrelated implementations, to let a bogus proof through.
//!
//! Two checking modes are provided:
//!
//! * [`CheckMode::Forward`] — streaming: every addition is verified
//!   (RUP, with a RAT fallback) the moment it arrives. Also available
//!   incrementally through [`ForwardChecker`] for proofs too large to
//!   materialise.
//! * [`CheckMode::Backward`] — verifies only the lemmas that actually
//!   contribute to the final contradiction (marked transitively from the
//!   empty clause) and extracts an **unsat core** of original clauses.
//!
//! # Examples
//!
//! ```
//! use hqs_cnf::dimacs::parse_dimacs;
//! use hqs_proof::{check_proof, parse_text_drat, CheckMode};
//!
//! // (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b) refuted by deriving b, then ⊥.
//! let cnf = parse_dimacs("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n").unwrap();
//! let proof = parse_text_drat("2 0\n0\n").unwrap();
//! let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
//! assert_eq!(report.steps_checked, 2);
//! assert!(report.core.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod drat;

pub use checker::{check_proof, CheckError, CheckMode, CheckReport, ForwardChecker};
pub use drat::{
    parse_binary_drat, parse_text_drat, write_binary_drat, write_text_drat, Proof, ProofParseError,
    ProofStep,
};
