//! RUP/RAT checking of DRAT proofs.
//!
//! The engine is an independent reimplementation of two-watched-literal
//! unit propagation — deliberately sharing no code with `hqs-sat` — used
//! to decide, for each added clause `C`, whether `C` is a *reverse unit
//! propagation* (RUP) consequence: asserting `¬C` and propagating must
//! yield a conflict. When RUP fails the checker falls back to the full
//! *resolution asymmetric tautology* (RAT) criterion on the first literal
//! of `C`, as the DRAT format specifies.
//!
//! Deletions of clauses that currently justify a root-level assignment
//! are ignored (counted in [`CheckReport::ignored_deletions`]), matching
//! the behaviour of `drat-trim`.

use crate::drat::{Proof, ProofStep};
use hqs_base::{Lit, Var};
use hqs_cnf::Cnf;
use std::collections::HashMap;
use std::fmt;

/// How a proof is traversed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckMode {
    /// Verify every addition in proof order, streaming.
    Forward,
    /// Verify only the lemmas reachable from the final contradiction,
    /// walking the proof backwards; extracts an unsat core.
    Backward,
}

/// Result of a successful proof check.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckReport {
    /// Addition steps whose RUP/RAT property was verified.
    pub steps_checked: usize,
    /// Addition steps skipped (after the contradiction in forward mode,
    /// or unmarked in backward mode).
    pub steps_skipped: usize,
    /// Deletion steps ignored because the clause was absent or currently
    /// the reason of a root-level assignment.
    pub ignored_deletions: usize,
    /// Verified additions that needed the RAT fallback (CDCL-generated
    /// proofs are pure RUP, so this is 0 for `hqs-sat` proofs).
    pub rat_steps: usize,
    /// Backward mode only: indices into the original CNF's clause list
    /// of the clauses the refutation actually uses (an unsat core).
    pub core: Option<Vec<usize>>,
}

/// Why a proof was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// The clause added at `step` (0-based index into the proof) is
    /// neither RUP nor RAT at that point.
    StepFailed {
        /// 0-based proof step index.
        step: usize,
    },
    /// The proof ends without establishing a contradiction.
    NoContradiction,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::StepFailed { step } => {
                write!(f, "proof step {step}: clause is neither RUP nor RAT")
            }
            CheckError::NoContradiction => {
                write!(f, "proof ends without deriving a contradiction")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Sorts and deduplicates `lits`; returns `None` for tautologies.
fn normalize(lits: &[Lit]) -> Option<Vec<Lit>> {
    let mut lits = lits.to_vec();
    lits.sort_unstable();
    lits.dedup();
    if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
        return None;
    }
    Some(lits)
}

const NO_REASON: u32 = u32::MAX;

/// Source of a conflict found by the engine.
#[derive(Clone, Copy, Debug)]
enum Conflict {
    /// An engine clause became falsified.
    Clause(u32),
    /// An asserted literal contradicted the existing assignment of `Var`.
    Var(Var),
}

/// Two-watched-literal unit propagation over a growable clause set.
///
/// Clauses of length ≥ 2 watch their first two literal positions; unit
/// clauses are enqueued directly and tracked through the trail.
struct Engine {
    lits: Vec<Vec<Lit>>,
    active: Vec<bool>,
    watches: Vec<Vec<u32>>,
    value: Vec<i8>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    qhead: usize,
    /// First conflict discovered during root-level propagation.
    root_conflict: Option<Conflict>,
}

impl Engine {
    fn new(num_vars: u32) -> Self {
        let n = num_vars as usize;
        Engine {
            lits: Vec::new(),
            active: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            value: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::new(),
            qhead: 0,
            root_conflict: None,
        }
    }

    fn ensure_var(&mut self, var: Var) {
        let needed = var.uidx() + 1;
        if self.value.len() < needed {
            self.value.resize(needed, 0);
            self.reason.resize(needed, NO_REASON);
            self.watches.resize(2 * needed, Vec::new());
        }
    }

    #[inline]
    fn value_of(&self, lit: Lit) -> i8 {
        // analyze::allow(panic): value is sized by ensure_var for every lit seen
        let v = self.value[lit.var().uidx()];
        if lit.is_negative() {
            -v
        } else {
            v
        }
    }

    #[inline]
    fn enqueue(&mut self, lit: Lit, reason: u32) {
        // analyze::allow(panic) lines=4: value/reason are sized by ensure_var
        let var = lit.var().uidx();
        self.value[var] = if lit.is_positive() { 1 } else { -1 };
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    /// Inserts a normalized clause and enqueues its unit consequence if it
    /// has one under the current assignment. Does not propagate.
    fn add(&mut self, lits: Vec<Lit>) -> u32 {
        let idx = self.lits.len() as u32;
        for &l in &lits {
            self.ensure_var(l.var());
        }
        if lits.is_empty() {
            self.lits.push(lits);
            self.active.push(true);
            self.root_conflict.get_or_insert(Conflict::Clause(idx));
            return idx;
        }
        let mut lits = lits;
        // Move up to two non-false literals to the watch positions.
        let mut found = 0usize;
        for i in 0..lits.len() {
            if self.value_of(lits[i]) >= 0 {
                lits.swap(found, i);
                found += 1;
                if found == 2 {
                    break;
                }
            }
        }
        match found {
            0 => {
                // All literals false: conflict right now.
                self.root_conflict.get_or_insert(Conflict::Clause(idx));
            }
            1 if self.value_of(lits[0]) == 0 => {
                self.enqueue(lits[0], idx);
            }
            _ => {}
        }
        if lits.len() >= 2 {
            self.watches[lits[0].uidx()].push(idx);
            self.watches[lits[1].uidx()].push(idx);
        } else if self.value_of(lits[0]) == 0 {
            self.enqueue(lits[0], idx);
        }
        self.lits.push(lits);
        self.active.push(true);
        idx
    }

    /// Propagates to fixpoint; returns the first conflict found.
    fn propagate(&mut self) -> Option<Conflict> {
        if let Some(conflict) = self.root_conflict {
            // A pending conflict from clause insertion: report it once the
            // caller asks. (Only meaningful while building a context.)
            self.qhead = self.trail.len();
            return Some(conflict);
        }
        // Indexing in this loop is invariant-backed: `watches` and the
        // assignment vectors are sized for every literal before it is
        // enqueued, crefs index the checker's own clause store, and
        // watched positions 0/1 exist because short clauses never enter
        // the watch lists.
        // analyze::allow(panic) lines=55: bounds established by ensure_var and the watch invariant
        while let Some(&p) = self.trail.get(self.qhead) {
            self.qhead += 1;
            let false_lit = !p;
            let mut list = std::mem::take(&mut self.watches[false_lit.uidx()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            'clauses: while i < list.len() {
                let cref = list[i];
                i += 1;
                if !self.active[cref as usize] {
                    continue; // lazily drop deleted clauses
                }
                if self.lits[cref as usize][0] == false_lit {
                    self.lits[cref as usize].swap(0, 1);
                }
                let first = self.lits[cref as usize][0];
                if self.value_of(first) > 0 {
                    list[kept] = cref;
                    kept += 1;
                    continue;
                }
                for k in 2..self.lits[cref as usize].len() {
                    let candidate = self.lits[cref as usize][k];
                    if self.value_of(candidate) >= 0 {
                        self.lits[cref as usize].swap(1, k);
                        self.watches[candidate.uidx()].push(cref);
                        continue 'clauses;
                    }
                }
                list[kept] = cref;
                kept += 1;
                if self.value_of(first) < 0 {
                    conflict = Some(Conflict::Clause(cref));
                    while i < list.len() {
                        list[kept] = list[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, cref);
            }
            list.truncate(kept);
            self.watches[false_lit.uidx()] = list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Asserts the negation of `clause` (each literal set false); returns
    /// an immediate conflict if some literal is already true.
    fn assume_negation(&mut self, clause: &[Lit]) -> Option<Conflict> {
        for &l in clause {
            self.ensure_var(l.var());
            match self.value_of(l) {
                1 => return Some(Conflict::Var(l.var())),
                -1 => {}
                _ => self.enqueue(!l, NO_REASON),
            }
        }
        None
    }

    /// Unassigns everything above trail position `to`.
    fn backtrack(&mut self, to: usize) {
        // analyze::allow(panic) lines=5: trail positions are in range by the loop bound
        for i in (to..self.trail.len()).rev() {
            let var = self.trail[i].var().uidx();
            self.value[var] = 0;
            self.reason[var] = NO_REASON;
        }
        self.trail.truncate(to);
        self.qhead = to;
    }

    /// `true` if `cref` is the recorded reason of a currently-true literal
    /// (deleting it would orphan a root assignment).
    fn is_reason_locked(&self, cref: u32) -> bool {
        self.lits[cref as usize]
            .iter()
            .any(|&l| self.value_of(l) > 0 && self.reason[l.var().uidx()] == cref)
    }

    /// Collects the engine clauses reachable from `conflict` through the
    /// reason graph, invoking `mark` on each.
    fn collect_antecedents(&self, conflict: Conflict, mark: &mut dyn FnMut(u32)) {
        let mut pending_vars: Vec<Var> = Vec::new();
        let mut seen_vars = vec![false; self.value.len()];
        let mut seen_clauses = vec![false; self.lits.len()];
        let visit_clause = |cref: u32,
                            pending: &mut Vec<Var>,
                            seen_clauses: &mut Vec<bool>,
                            mark: &mut dyn FnMut(u32)| {
            if !seen_clauses[cref as usize] {
                seen_clauses[cref as usize] = true;
                mark(cref);
                for &l in &self.lits[cref as usize] {
                    pending.push(l.var());
                }
            }
        };
        match conflict {
            Conflict::Clause(cref) => {
                visit_clause(cref, &mut pending_vars, &mut seen_clauses, mark);
            }
            Conflict::Var(var) => pending_vars.push(var),
        }
        while let Some(var) = pending_vars.pop() {
            let idx = var.uidx();
            if seen_vars[idx] {
                continue;
            }
            seen_vars[idx] = true;
            let reason = self.reason[idx];
            if reason != NO_REASON {
                visit_clause(reason, &mut pending_vars, &mut seen_clauses, mark);
            }
        }
    }
}

/// Verdict of one forward-checked addition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AddVerdict {
    Rup,
    Rat,
    Trivial,
}

/// A streaming forward DRAT checker.
///
/// Feed proof steps as they are produced; every addition is verified
/// immediately, so arbitrarily large proofs can be checked without
/// materialising them. [`ForwardChecker::contradiction`] reports whether
/// the refutation is complete.
///
/// # Examples
///
/// ```
/// use hqs_cnf::dimacs::parse_dimacs;
/// use hqs_base::Lit;
/// use hqs_proof::ForwardChecker;
///
/// let cnf = parse_dimacs("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n").unwrap();
/// let mut checker = ForwardChecker::new(&cnf);
/// checker.add_clause(&[Lit::from_dimacs(2).unwrap()]).unwrap();
/// checker.add_clause(&[]).unwrap();
/// assert!(checker.contradiction());
/// ```
pub struct ForwardChecker {
    engine: Engine,
    index: HashMap<Vec<Lit>, Vec<u32>>,
    contradiction: bool,
    steps_checked: usize,
    steps_skipped: usize,
    ignored_deletions: usize,
    rat_steps: usize,
}

impl ForwardChecker {
    /// Builds a checker over the original formula.
    #[must_use]
    pub fn new(cnf: &Cnf) -> Self {
        let mut checker = ForwardChecker {
            engine: Engine::new(cnf.num_vars()),
            index: HashMap::new(),
            contradiction: false,
            steps_checked: 0,
            steps_skipped: 0,
            ignored_deletions: 0,
            rat_steps: 0,
        };
        for clause in cnf.clauses() {
            let Some(lits) = normalize(clause.lits()) else {
                continue; // tautologies never participate
            };
            checker.insert(lits);
        }
        if checker.engine.propagate().is_some() {
            checker.contradiction = true;
        }
        checker
    }

    fn insert(&mut self, lits: Vec<Lit>) {
        let idx = self.engine.add(lits.clone());
        self.index.entry(lits).or_default().push(idx);
    }

    /// `true` once the refutation is complete (a conflict at root level).
    #[must_use]
    pub fn contradiction(&self) -> bool {
        self.contradiction
    }

    /// Checks and applies a clause addition.
    ///
    /// # Errors
    ///
    /// [`CheckError::StepFailed`] (with step 0; callers track indices) if
    /// the clause is neither RUP nor RAT.
    pub fn add_clause(&mut self, lits: &[Lit]) -> Result<(), CheckError> {
        if self.contradiction {
            self.steps_skipped += 1;
            return Ok(());
        }
        let Some(normalized) = normalize(lits) else {
            self.steps_checked += 1;
            return Ok(()); // tautology: trivially redundant, not stored
        };
        match self.verify(&normalized) {
            Some(AddVerdict::Rat) => {
                self.rat_steps += 1;
                self.steps_checked += 1;
            }
            Some(_) => self.steps_checked += 1,
            None => return Err(CheckError::StepFailed { step: 0 }),
        }
        self.insert(normalized);
        if self.engine.propagate().is_some() {
            self.contradiction = true;
        }
        Ok(())
    }

    /// Applies a clause deletion; unknown or reason-locked clauses are
    /// ignored (counted, matching `drat-trim`).
    pub fn delete_clause(&mut self, lits: &[Lit]) {
        if self.contradiction {
            return;
        }
        let Some(normalized) = normalize(lits) else {
            self.ignored_deletions += 1;
            return;
        };
        let locked = match self.index.get_mut(&normalized) {
            Some(ids) if !ids.is_empty() => {
                let cref = ids[ids.len() - 1];
                if self.engine.is_reason_locked(cref) {
                    true
                } else {
                    ids.pop();
                    self.engine.active[cref as usize] = false;
                    return;
                }
            }
            _ => true,
        };
        if locked {
            self.ignored_deletions += 1;
        }
    }

    /// Applies one proof step.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckError::StepFailed`] from additions.
    pub fn apply(&mut self, step: &ProofStep) -> Result<(), CheckError> {
        match step {
            ProofStep::Add(lits) => self.add_clause(lits),
            ProofStep::Delete(lits) => {
                self.delete_clause(lits);
                Ok(())
            }
        }
    }

    /// RUP check with RAT fallback; `None` means the clause is unjustified.
    fn verify(&mut self, clause: &[Lit]) -> Option<AddVerdict> {
        if clause.iter().any(|&l| self.engine.value_of(l) > 0) {
            return Some(AddVerdict::Trivial); // satisfied at root level
        }
        if self.rup(clause) {
            return Some(AddVerdict::Rup);
        }
        if self.rat(clause) {
            return Some(AddVerdict::Rat);
        }
        None
    }

    fn rup(&mut self, clause: &[Lit]) -> bool {
        let save = self.engine.trail.len();
        let conflict = self
            .engine
            .assume_negation(clause)
            .or_else(|| self.engine.propagate());
        self.engine.backtrack(save);
        conflict.is_some()
    }

    /// RAT on the first literal: every resolvent with an active clause
    /// containing the negated pivot must be RUP (or a tautology).
    fn rat(&mut self, clause: &[Lit]) -> bool {
        let Some(&pivot) = clause.first() else {
            return false; // the empty clause has no pivot
        };
        let neg = !pivot;
        for cref in 0..self.engine.lits.len() {
            if !self.engine.active[cref] || !self.engine.lits[cref].contains(&neg) {
                continue;
            }
            let mut resolvent: Vec<Lit> = clause
                .iter()
                .copied()
                .filter(|&l| l != pivot)
                .chain(self.engine.lits[cref].iter().copied().filter(|&l| l != neg))
                .collect();
            resolvent.sort_unstable();
            resolvent.dedup();
            if resolvent.windows(2).any(|w| w[0].var() == w[1].var()) {
                continue; // tautological resolvent
            }
            if !self.rup(&resolvent) {
                return false;
            }
        }
        true
    }
}

/// Origin of a timeline record in the backward checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Origin {
    Original(usize),
    Lemma(usize),
}

/// A clause with its lifetime over proof points: alive at point `p` when
/// `birth <= p < death` (point `i+1` is "after step `i`").
struct Record {
    lits: Vec<Lit>,
    birth: usize,
    death: usize,
    origin: Origin,
}

/// Checks `proof` against `cnf`.
///
/// Forward mode verifies every addition in order and succeeds once a
/// root-level contradiction is established. Backward mode verifies only
/// the lemmas the final contradiction depends on and reports the unsat
/// core in [`CheckReport::core`].
///
/// # Errors
///
/// [`CheckError::StepFailed`] if a (marked) addition is neither RUP nor
/// RAT; [`CheckError::NoContradiction`] if the proof never refutes the
/// formula.
pub fn check_proof(cnf: &Cnf, proof: &Proof, mode: CheckMode) -> Result<CheckReport, CheckError> {
    match mode {
        CheckMode::Forward => check_forward(cnf, proof),
        CheckMode::Backward => check_backward(cnf, proof),
    }
}

fn check_forward(cnf: &Cnf, proof: &Proof) -> Result<CheckReport, CheckError> {
    let mut checker = ForwardChecker::new(cnf);
    for (step_idx, step) in proof.steps.iter().enumerate() {
        checker
            .apply(step)
            .map_err(|_| CheckError::StepFailed { step: step_idx })?;
    }
    if !checker.contradiction {
        return Err(CheckError::NoContradiction);
    }
    Ok(CheckReport {
        steps_checked: checker.steps_checked,
        steps_skipped: checker.steps_skipped,
        ignored_deletions: checker.ignored_deletions,
        rat_steps: checker.rat_steps,
        core: None,
    })
}

/// Backward checker state: the full clause timeline plus marking flags.
struct BackwardChecker {
    records: Vec<Record>,
    marked: Vec<bool>,
    rat_steps: usize,
}

impl BackwardChecker {
    /// Builds a propagation context from the records alive at `point`,
    /// excluding record `skip`; returns the context and the map from
    /// engine clause index to record index.
    fn context_at(&self, point: usize, skip: usize) -> (Engine, Vec<usize>) {
        let mut num_vars = 0u32;
        for record in &self.records {
            for &l in &record.lits {
                num_vars = num_vars.max(l.var().bound());
            }
        }
        let mut engine = Engine::new(num_vars);
        let mut ext = Vec::new();
        for (idx, record) in self.records.iter().enumerate() {
            if idx != skip && record.birth <= point && point < record.death {
                engine.add(record.lits.clone());
                ext.push(idx);
            }
        }
        (engine, ext)
    }

    /// Verifies that the clause of record `skip` (or the empty clause if
    /// `skip == usize::MAX`) holds by RUP/RAT at `point`; marks the
    /// records its justification uses.
    fn verify_at(&mut self, point: usize, skip: usize, clause: &[Lit]) -> bool {
        let (mut engine, ext) = self.context_at(point, skip);
        // The context may already be contradictory before assuming ¬C.
        let conflict = engine.propagate().or_else(|| {
            let confl = engine.assume_negation(clause);
            confl.or_else(|| engine.propagate())
        });
        if let Some(conflict) = conflict {
            let marked = &mut self.marked;
            engine.collect_antecedents(conflict, &mut |cref| {
                marked[ext[cref as usize]] = true;
            });
            return true;
        }
        // RAT fallback on the first literal.
        let Some(&pivot) = clause.first() else {
            return false;
        };
        let neg = !pivot;
        let candidates: Vec<u32> = (0..engine.lits.len() as u32)
            .filter(|&c| engine.lits[c as usize].contains(&neg))
            .collect();
        for cref in candidates {
            let mut resolvent: Vec<Lit> = clause
                .iter()
                .copied()
                .filter(|&l| l != pivot)
                .chain(
                    engine.lits[cref as usize]
                        .iter()
                        .copied()
                        .filter(|&l| l != neg),
                )
                .collect();
            resolvent.sort_unstable();
            resolvent.dedup();
            if resolvent.windows(2).any(|w| w[0].var() == w[1].var()) {
                self.marked[ext[cref as usize]] = true;
                continue;
            }
            let save = engine.trail.len();
            let conflict = engine
                .assume_negation(&resolvent)
                .or_else(|| engine.propagate());
            engine.backtrack(save);
            let Some(conflict) = conflict else {
                return false;
            };
            self.marked[ext[cref as usize]] = true;
            let marked = &mut self.marked;
            engine.collect_antecedents(conflict, &mut |c| {
                marked[ext[c as usize]] = true;
            });
        }
        self.rat_steps += 1;
        true
    }
}

fn check_backward(cnf: &Cnf, proof: &Proof) -> Result<CheckReport, CheckError> {
    let mut records: Vec<Record> = Vec::new();
    let mut alive: HashMap<Vec<Lit>, Vec<usize>> = HashMap::new();
    let mut step_record: Vec<Option<usize>> = vec![None; proof.steps.len()];
    let mut ignored_deletions = 0usize;
    for (idx, clause) in cnf.clauses().iter().enumerate() {
        let Some(lits) = normalize(clause.lits()) else {
            continue;
        };
        alive.entry(lits.clone()).or_default().push(records.len());
        records.push(Record {
            lits,
            birth: 0,
            death: usize::MAX,
            origin: Origin::Original(idx),
        });
    }
    let mut empty_step: Option<usize> = None;
    for (i, step) in proof.steps.iter().enumerate() {
        match step {
            ProofStep::Add(lits) => {
                let Some(lits) = normalize(lits) else {
                    continue; // tautologies are trivially redundant
                };
                if lits.is_empty() && empty_step.is_none() {
                    empty_step = Some(i);
                }
                alive.entry(lits.clone()).or_default().push(records.len());
                step_record[i] = Some(records.len());
                records.push(Record {
                    lits,
                    birth: i + 1,
                    death: usize::MAX,
                    origin: Origin::Lemma(i),
                });
            }
            ProofStep::Delete(lits) => {
                let deleted = normalize(lits).and_then(|lits| {
                    alive.get_mut(&lits).and_then(|ids| {
                        // Delete the most recent alive copy, but never an
                        // original needed before this point... lifetimes
                        // handle ordering; just pop the newest.
                        ids.pop()
                    })
                });
                match deleted {
                    Some(record) => records[record].death = i + 1,
                    None => ignored_deletions += 1,
                }
            }
        }
    }

    let mut checker = BackwardChecker {
        marked: vec![false; records.len()],
        records,
        rat_steps: 0,
    };

    // Locate the contradiction: the original formula itself, the first
    // explicit empty clause, or (fallback) the end of the proof.
    let (target_point, target_step) = if checker.verify_at(0, usize::MAX, &[]) {
        (0, 0)
    } else if let Some(step) = empty_step {
        if !checker.verify_at(step, step_record[step].unwrap_or(usize::MAX), &[]) {
            return Err(CheckError::StepFailed { step });
        }
        (step, step)
    } else if checker.verify_at(proof.steps.len(), usize::MAX, &[]) {
        (proof.steps.len(), proof.steps.len())
    } else {
        return Err(CheckError::NoContradiction);
    };
    let _ = target_point;

    let mut steps_checked = if target_step < proof.steps.len() {
        1
    } else {
        0
    };
    let mut steps_skipped = 0usize;
    for i in (0..target_step).rev() {
        let Some(record) = step_record[i] else {
            continue; // deletion or tautology
        };
        if !checker.marked[record] {
            steps_skipped += 1;
            continue;
        }
        let clause = checker.records[record].lits.clone();
        if !checker.verify_at(i, record, &clause) {
            return Err(CheckError::StepFailed { step: i });
        }
        steps_checked += 1;
    }

    let mut core: Vec<usize> = checker
        .records
        .iter()
        .zip(&checker.marked)
        .filter_map(|(record, &marked)| match record.origin {
            Origin::Original(idx) if marked => Some(idx),
            _ => None,
        })
        .collect();
    core.sort_unstable();
    core.dedup();
    Ok(CheckReport {
        steps_checked,
        steps_skipped,
        ignored_deletions,
        rat_steps: checker.rat_steps,
        core: Some(core),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drat::parse_text_drat;
    use hqs_cnf::dimacs::parse_dimacs;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    const FULL2: &str = "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n";

    #[test]
    fn forward_accepts_a_valid_refutation() {
        let cnf = parse_dimacs(FULL2).unwrap();
        let proof = parse_text_drat("2 0\n0\n").unwrap();
        let report = check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
        // Adding unit 2 already propagates to a conflict, so the explicit
        // empty clause is redundant and skipped.
        assert_eq!(report.steps_checked, 1);
        assert_eq!(report.steps_skipped, 1);
        assert_eq!(report.rat_steps, 0);
        assert!(report.core.is_none());
    }

    #[test]
    fn backward_extracts_the_full_core() {
        let cnf = parse_dimacs(FULL2).unwrap();
        let proof = parse_text_drat("2 0\n0\n").unwrap();
        let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
        assert_eq!(report.core, Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn backward_core_excludes_irrelevant_clauses() {
        // Same refutation with an irrelevant extra clause (3 4).
        let cnf = parse_dimacs("p cnf 4 5\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n3 4 0\n").unwrap();
        let proof = parse_text_drat("2 0\n0\n").unwrap();
        let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
        assert_eq!(report.core, Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn non_rup_addition_is_rejected_in_both_modes() {
        // Unit 1 is RAT on its pivot (no clause contains -1, so it is
        // blocked), but the empty clause then fails: (1)(1 2) is SAT.
        let cnf = parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        let proof = parse_text_drat("1 0\n0\n").unwrap();
        assert_eq!(
            check_proof(&cnf, &proof, CheckMode::Forward),
            Err(CheckError::StepFailed { step: 1 })
        );
        assert!(check_proof(&cnf, &proof, CheckMode::Backward).is_err());
        // A non-unit clause that is neither RUP nor RAT fails immediately:
        // (2 3) resolves with (-2 4) to the non-tautological (3 4).
        let cnf = parse_dimacs("p cnf 4 2\n1 2 0\n-2 4 0\n").unwrap();
        let proof = parse_text_drat("2 3 0\n").unwrap();
        assert_eq!(
            check_proof(&cnf, &proof, CheckMode::Forward),
            Err(CheckError::StepFailed { step: 0 })
        );
    }

    #[test]
    fn missing_contradiction_is_rejected() {
        let proof = parse_text_drat("2 0\n").unwrap();
        // Deriving 2 alone leaves (1 -2)(-1 -2): unit propagation refutes,
        // so forward mode actually completes; remove that by weakening.
        let weak = parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        assert_eq!(
            check_proof(&weak, &proof, CheckMode::Forward),
            Err(CheckError::NoContradiction)
        );
        assert_eq!(
            check_proof(&weak, &proof, CheckMode::Backward),
            Err(CheckError::NoContradiction)
        );
    }

    #[test]
    fn implicit_contradiction_without_empty_clause_is_accepted() {
        // Adding unit 2 makes (1 -2)(-1 -2) propagate to a conflict.
        let cnf = parse_dimacs(FULL2).unwrap();
        let proof = parse_text_drat("2 0\n").unwrap();
        assert!(check_proof(&cnf, &proof, CheckMode::Forward).is_ok());
        assert!(check_proof(&cnf, &proof, CheckMode::Backward).is_ok());
    }

    #[test]
    fn deletions_are_honoured_and_locked_deletions_ignored() {
        // Satisfiable base so the contradiction never fires early.
        let cnf = parse_dimacs("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n").unwrap();
        let mut checker = ForwardChecker::new(&cnf);
        checker.add_clause(&[lit(2)]).unwrap();
        checker.delete_clause(&[lit(1), lit(2)]); // present: removed
        checker.delete_clause(&[lit(1)]); // absent: ignored
        assert_eq!(checker.ignored_deletions, 1);
        // The unit clause 2 is now the reason of assignment 2: locked.
        checker.delete_clause(&[lit(2)]);
        assert_eq!(checker.ignored_deletions, 2);
        assert!(!checker.contradiction());
    }

    #[test]
    fn deleting_a_needed_clause_breaks_the_proof() {
        let cnf = parse_dimacs(FULL2).unwrap();
        // Delete (1 -2) before deriving 2... then unit 2 is still RUP via
        // (1 2)/(-1 2)? No: RUP of [2] asserts ¬2; (1 2)→1, (-1 2)→conflict.
        // Delete both clauses containing -2 instead, breaking the final step.
        let proof = parse_text_drat("d 1 -2 0\nd -1 -2 0\n2 0\n0\n").unwrap();
        assert_eq!(
            check_proof(&cnf, &proof, CheckMode::Forward),
            Err(CheckError::StepFailed { step: 3 })
        );
        assert!(check_proof(&cnf, &proof, CheckMode::Backward).is_err());
    }

    #[test]
    fn empty_original_clause_is_a_trivial_refutation() {
        let cnf = parse_dimacs("p cnf 1 2\n1 0\n0\n").unwrap();
        let proof = Proof::default();
        assert!(check_proof(&cnf, &proof, CheckMode::Forward).is_ok());
        let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
        assert_eq!(report.core, Some(vec![1]));
    }

    #[test]
    fn conflicting_units_refute_without_proof() {
        let cnf = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(check_proof(&cnf, &Proof::default(), CheckMode::Forward).is_ok());
        let report = check_proof(&cnf, &Proof::default(), CheckMode::Backward).unwrap();
        assert_eq!(report.core, Some(vec![0, 1]));
    }

    #[test]
    fn satisfiable_formula_rejects_empty_proof() {
        let cnf = parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        assert_eq!(
            check_proof(&cnf, &Proof::default(), CheckMode::Forward),
            Err(CheckError::NoContradiction)
        );
        assert_eq!(
            check_proof(&cnf, &Proof::default(), CheckMode::Backward),
            Err(CheckError::NoContradiction)
        );
    }

    #[test]
    fn rat_step_is_accepted() {
        // F = (¬a∨b). C = (a∨¬b) is not RUP but is RAT on a: the only
        // resolvent, with (¬a∨b), is tautological. Streaming API verdict.
        let cnf = parse_dimacs("p cnf 2 1\n-1 2 0\n").unwrap();
        let mut checker = ForwardChecker::new(&cnf);
        assert!(checker.add_clause(&[lit(1), lit(-2)]).is_ok());
        assert!(!checker.contradiction());
        // And a clause that is neither RUP nor RAT is rejected.
        let mut checker = ForwardChecker::new(&cnf);
        assert!(checker.add_clause(&[lit(1)]).is_err());
    }

    #[test]
    fn pigeonhole_resolution_style_proof() {
        // PHP(2,1): pigeons 1,2 into hole 1. Vars: p11=1, p21=2.
        let cnf = parse_dimacs("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n").unwrap();
        let proof = parse_text_drat("0\n").unwrap();
        assert!(check_proof(&cnf, &proof, CheckMode::Forward).is_ok());
        let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
        assert_eq!(report.core, Some(vec![0, 1, 2]));
    }

    #[test]
    fn backward_skips_unused_lemmas() {
        let cnf = parse_dimacs(FULL2).unwrap();
        // Lemma (1 2) duplicates an original (RUP trivially via subsumption
        // check path) and is never needed.
        let proof = parse_text_drat("1 2 0\n2 0\n0\n").unwrap();
        let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
        assert!(report.steps_skipped >= 1, "{report:?}");
    }

    #[test]
    fn tautological_additions_are_no_ops() {
        let cnf = parse_dimacs(FULL2).unwrap();
        let proof = parse_text_drat("1 -1 0\n2 0\n0\n").unwrap();
        assert!(check_proof(&cnf, &proof, CheckMode::Forward).is_ok());
        assert!(check_proof(&cnf, &proof, CheckMode::Backward).is_ok());
    }
}
