//! End-to-end tests for the portfolio engine and the batch scheduler:
//! arbitration, disagreement detection, cancellation latency, panic
//! isolation and deterministic reproducibility.

use hqs_base::{CancelToken, Exhaustion};
use hqs_core::{Dqbf, Outcome};
use hqs_engine::{
    run_batch, run_batch_with, run_custom_portfolio, solve_portfolio, standard_deck, BatchJob,
    BatchOptions, BatchTag, EngineError, JobOutcome, PortfolioOptions, PortfolioTask,
    WorkerVerdict,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// `∀x ∃y(x). (y ∨ ¬x) ∧ (¬y ∨ x)` — satisfied by the Skolem function
/// `y := x`.
const SAT_DQDIMACS: &str = "p cnf 2 2\na 1 0\nd 2 1 0\n2 -1 0\n-2 1 0\n";

/// `∃y ∀x. (y ∨ x) ∧ (¬y ∨ ¬x)` — `y` may not depend on `x` but would
/// have to equal `¬x`; unsatisfiable.
const UNSAT_DQDIMACS: &str = "p cnf 2 2\ne 2 0\na 1 0\n2 1 0\n-2 -1 0\n";

fn parse(text: &str) -> Dqbf {
    Dqbf::from_file(&hqs_cnf::dimacs::parse_dqdimacs(text).expect("test instance parses"))
}

#[test]
fn race_mode_solves_sat_and_unsat() {
    let opts = PortfolioOptions {
        threads: 4,
        ..PortfolioOptions::default()
    };
    let deck = standard_deck();

    let sat = solve_portfolio(&parse(SAT_DQDIMACS), &deck, &opts).expect("no engine error");
    assert_eq!(sat.result, Outcome::Sat);
    assert!(sat.winner.is_some());
    assert_eq!(sat.reports.len(), deck.len());

    let unsat = solve_portfolio(&parse(UNSAT_DQDIMACS), &deck, &opts).expect("no engine error");
    assert_eq!(unsat.result, Outcome::Unsat);
    assert!(unsat.winner_name.is_some());
}

#[test]
fn deterministic_portfolio_is_reproducible_over_ten_runs() {
    let deck = standard_deck();
    let opts = PortfolioOptions {
        threads: 4,
        deterministic: true,
        ..PortfolioOptions::default()
    };
    let mut winners = Vec::new();
    for _ in 0..10 {
        let outcome = solve_portfolio(&parse(SAT_DQDIMACS), &deck, &opts).expect("no engine error");
        assert_eq!(outcome.result, Outcome::Sat);
        winners.push((outcome.winner, outcome.winner_name.clone()));
    }
    let first = winners.first().cloned().expect("ten runs happened");
    assert!(
        winners.iter().all(|w| *w == first),
        "deterministic mode must report the same winner every run, got {winners:?}"
    );
    // Every deck entry solves this formula, so the arbitrated winner must
    // be the lowest deck index.
    assert_eq!(first.0, Some(0));
}

#[test]
fn certified_portfolio_reports_a_checked_certificate() {
    let deck = standard_deck();
    let opts = PortfolioOptions {
        threads: 2,
        deterministic: true,
        certify: true,
        ..PortfolioOptions::default()
    };
    let outcome = solve_portfolio(&parse(SAT_DQDIMACS), &deck, &opts).expect("no engine error");
    assert_eq!(outcome.result, Outcome::Sat);
    assert!(
        outcome.certified,
        "winner's verdict must carry a certificate"
    );
}

/// A pair of mock workers that contradict each other must abort the race
/// with an `InvariantViolation` naming both configurations — never pick
/// a winner.
#[test]
fn lying_workers_raise_a_disagreement() {
    let liar = |name: &str, verdict: Outcome| PortfolioTask {
        name: name.to_string(),
        detail: format!("mock-config-{name}"),
        run: Box::new(move |_budget| {
            Ok(WorkerVerdict {
                result: verdict,
                certified: false,
            })
        }),
    };
    let tasks = vec![
        liar("liar-sat", Outcome::Sat),
        liar("liar-unsat", Outcome::Unsat),
    ];
    let opts = PortfolioOptions {
        threads: 2,
        deterministic: true,
        ..PortfolioOptions::default()
    };
    match run_custom_portfolio(tasks, &opts) {
        Err(EngineError::Disagreement {
            sat_worker,
            unsat_worker,
            violation,
        }) => {
            assert_eq!(sat_worker, "liar-sat");
            assert_eq!(unsat_worker, "liar-unsat");
            let text = violation.to_string();
            assert_eq!(violation.component(), "portfolio");
            assert!(text.contains("mock-config-liar-sat"), "violation: {text}");
            assert!(text.contains("mock-config-liar-unsat"), "violation: {text}");
        }
        other => panic!("expected a disagreement, got {other:?}"),
    }
}

#[test]
fn panicking_worker_is_reported_not_propagated() {
    let tasks = vec![
        PortfolioTask {
            name: "bomber".to_string(),
            detail: String::new(),
            run: Box::new(|_budget| panic!("kaboom")),
        },
        PortfolioTask {
            name: "honest".to_string(),
            detail: String::new(),
            run: Box::new(|_budget| {
                Ok(WorkerVerdict {
                    result: Outcome::Sat,
                    certified: false,
                })
            }),
        },
    ];
    let opts = PortfolioOptions {
        threads: 2,
        deterministic: true,
        ..PortfolioOptions::default()
    };
    match run_custom_portfolio(tasks, &opts) {
        Err(EngineError::WorkerPanic { worker, message }) => {
            assert_eq!(worker, "bomber");
            assert!(message.contains("kaboom"), "message: {message}");
        }
        other => panic!("expected a worker panic report, got {other:?}"),
    }
}

/// A winner must tear down a busy loser through the shared cancel token
/// quickly: the loser polls its budget and the whole race finishes in a
/// small fraction of the loser's natural runtime.
#[test]
fn cancellation_reaches_a_busy_loser_quickly() {
    let tasks = vec![
        PortfolioTask {
            name: "fast-winner".to_string(),
            detail: String::new(),
            run: Box::new(|_budget| {
                std::thread::sleep(Duration::from_millis(50));
                Ok(WorkerVerdict {
                    result: Outcome::Unsat,
                    certified: false,
                })
            }),
        },
        PortfolioTask {
            name: "busy-loser".to_string(),
            detail: String::new(),
            run: Box::new(|budget| {
                // Simulates a solver main loop: works in small slices and
                // polls the budget between them, for up to 30 s.
                let start = Instant::now();
                while start.elapsed() < Duration::from_secs(30) {
                    if budget.stop_requested() {
                        return Ok(WorkerVerdict {
                            result: Outcome::Unknown(budget.stop_reason()),
                            certified: false,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(WorkerVerdict {
                    result: Outcome::Unknown(Exhaustion::Timeout),
                    certified: false,
                })
            }),
        },
    ];
    let opts = PortfolioOptions {
        threads: 2,
        ..PortfolioOptions::default()
    };
    let started = Instant::now();
    let outcome = run_custom_portfolio(tasks, &opts).expect("no engine error");
    let elapsed = started.elapsed();
    assert_eq!(outcome.result, Outcome::Unsat);
    assert_eq!(outcome.winner_name.as_deref(), Some("fast-winner"));
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?}; the loser would run 30 s uncancelled"
    );
    let loser = outcome
        .reports
        .iter()
        .find(|r| r.name == "busy-loser")
        .expect("loser reported");
    assert_eq!(loser.result, Outcome::Unknown(Exhaustion::Cancelled));
}

#[test]
fn batch_isolates_a_panicking_job() {
    let names: Vec<String> = (0..4).map(|i| format!("job-{i}")).collect();
    let cancel = CancelToken::new();
    let summary = run_batch_with(
        &names,
        2,
        &cancel,
        &BatchTag::default(),
        |index| {
            if index == 2 {
                panic!("job 2 exploded");
            }
            (JobOutcome::Sat, false)
        },
        &|_record| {},
    );
    assert_eq!(summary.records.len(), 4);
    assert_eq!(summary.sat, 3);
    assert_eq!(summary.failed, 1);
    match &summary.records[2].outcome {
        JobOutcome::Panicked(message) => {
            assert!(message.contains("job 2 exploded"), "message: {message}")
        }
        other => panic!("expected a panic record, got {other:?}"),
    }
    // The panic record still renders as JSONL with the message attached.
    let line = summary.records[2].to_jsonl();
    assert!(line.contains("\"outcome\":\"PANIC\""), "line: {line}");
    assert!(line.contains("job 2 exploded"), "line: {line}");
}

#[test]
fn batch_solves_a_corpus_in_input_order() {
    let jobs: Vec<BatchJob> = (0..6)
        .map(|i| BatchJob {
            name: format!("inst-{i}"),
            dqbf: parse(if i % 2 == 0 {
                SAT_DQDIMACS
            } else {
                UNSAT_DQDIMACS
            }),
        })
        .collect();
    let opts = BatchOptions {
        workers: 2,
        ..BatchOptions::default()
    };
    let observed = AtomicUsize::new(0);
    let summary = run_batch(&jobs, &opts, &|_record| {
        observed.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(
        observed.load(Ordering::Relaxed),
        6,
        "observer sees every job"
    );
    assert_eq!(summary.sat, 3);
    assert_eq!(summary.unsat, 3);
    assert_eq!(summary.failed, 0);
    for (i, record) in summary.records.iter().enumerate() {
        assert_eq!(record.index, i, "records come back in input order");
        assert_eq!(record.name, format!("inst-{i}"));
        let expected = if i % 2 == 0 {
            JobOutcome::Sat
        } else {
            JobOutcome::Unsat
        };
        assert_eq!(record.outcome, expected);
        assert!(record.wall_seconds >= 0.0);
    }
}

#[test]
fn pre_cancelled_batch_dispatches_nothing() {
    let names: Vec<String> = (0..8).map(|i| format!("job-{i}")).collect();
    let cancel = CancelToken::new();
    cancel.cancel("batch aborted before start");
    let summary = run_batch_with(
        &names,
        4,
        &cancel,
        &BatchTag::default(),
        |_| (JobOutcome::Sat, false),
        &|_| {},
    );
    assert_eq!(summary.sat, 0);
    assert_eq!(summary.unsolved, 8);
    assert!(summary
        .records
        .iter()
        .all(|r| r.outcome == JobOutcome::Limit(Exhaustion::Cancelled)));
}

#[test]
fn batch_collects_and_merges_per_job_metrics() {
    let jobs = vec![
        BatchJob {
            name: "sat".to_string(),
            dqbf: parse(SAT_DQDIMACS),
        },
        BatchJob {
            name: "unsat".to_string(),
            dqbf: parse(UNSAT_DQDIMACS),
        },
    ];
    let opts = BatchOptions {
        workers: 2,
        collect_metrics: true,
        ..BatchOptions::default()
    };
    let summary = run_batch(&jobs, &opts, &|_| {});
    assert_eq!(summary.failed, 0);
    for record in &summary.records {
        let metrics = record
            .metrics
            .as_ref()
            .expect("collect_metrics attaches a snapshot to every job");
        // These tiny instances are decided by preprocessing, so no
        // specific counter is guaranteed — but *something* must have
        // been recorded (preprocessing counters, phase spans).
        assert!(
            metrics.values.iter().any(|(_, v)| *v > 0),
            "{}: solving must record some metric",
            record.name
        );
        assert!(!metrics.spans.is_empty(), "{}: spans expected", record.name);
        // The per-job snapshot also rides into the JSONL line.
        assert!(record.to_jsonl().contains("\"metrics\":{"));
    }
    let merged = summary.metrics.expect("summary carries merged metrics");
    for &metric in hqs_obs::Metric::ALL {
        if metric.kind() != hqs_obs::MetricKind::Counter {
            continue;
        }
        let per_job: u64 = summary
            .records
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .map(|m| m.counter(metric))
            .sum();
        assert_eq!(
            merged.counter(metric),
            per_job,
            "merged {} must equal the per-job sum",
            metric.name()
        );
    }
}

#[test]
fn portfolio_aggregates_metrics_across_workers() {
    let observer = std::sync::Arc::new(hqs_obs::MetricsObserver::new());
    let opts = PortfolioOptions {
        threads: 4,
        deterministic: true,
        observer: hqs_obs::Obs::attached(observer.clone()),
        ..PortfolioOptions::default()
    };
    let outcome =
        solve_portfolio(&parse(SAT_DQDIMACS), &standard_deck(), &opts).expect("no engine error");
    assert_eq!(outcome.result, Outcome::Sat);
    let snapshot = observer.snapshot();
    assert!(
        snapshot.counter(hqs_obs::Metric::SatCalls) > 0,
        "racing eight workers must record SAT calls"
    );
    assert!(
        !snapshot.spans.is_empty(),
        "worker sessions must record phase spans"
    );
}

#[test]
fn batch_certify_checks_every_verdict() {
    let jobs = vec![
        BatchJob {
            name: "sat".to_string(),
            dqbf: parse(SAT_DQDIMACS),
        },
        BatchJob {
            name: "unsat".to_string(),
            dqbf: parse(UNSAT_DQDIMACS),
        },
    ];
    let opts = BatchOptions {
        workers: 2,
        certify: true,
        ..BatchOptions::default()
    };
    let summary = run_batch(&jobs, &opts, &|_| {});
    assert_eq!(summary.failed, 0);
    for record in &summary.records {
        assert!(
            record.certified,
            "{}: definitive verdicts must be certified in certify mode",
            record.name
        );
    }
}
