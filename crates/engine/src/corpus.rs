//! Loading a directory of DQDIMACS instances as a batch.

use crate::BatchJob;
use hqs_core::Dqbf;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a corpus directory could not be loaded.
#[derive(Debug)]
pub enum CorpusError {
    /// Reading the directory or a file failed.
    Io {
        /// The path the operation failed on.
        path: PathBuf,
        /// The underlying I/O error.
        error: io::Error,
    },
    /// A file was not valid DQDIMACS.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The parser's diagnosis.
        error: hqs_cnf::ParseError,
    },
    /// The directory contained no `.dqdimacs` files.
    Empty {
        /// The directory that was scanned.
        path: PathBuf,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, error } => {
                write!(f, "reading {}: {error}", path.display())
            }
            CorpusError::Parse { path, error } => {
                write!(f, "parsing {}: {error}", path.display())
            }
            CorpusError::Empty { path } => {
                write!(f, "no .dqdimacs files in {}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// Loads every `.dqdimacs` file under `dir` (non-recursive) as a
/// [`BatchJob`], sorted by file name so job indices are stable across
/// runs and machines.
pub fn load_corpus(dir: &Path) -> Result<Vec<BatchJob>, CorpusError> {
    let entries = std::fs::read_dir(dir).map_err(|error| CorpusError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| CorpusError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "dqdimacs") && path.is_file() {
            paths.push(path);
        }
    }
    if paths.is_empty() {
        return Err(CorpusError::Empty {
            path: dir.to_path_buf(),
        });
    }
    paths.sort();
    let mut jobs = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|error| CorpusError::Io {
            path: path.clone(),
            error,
        })?;
        let file = hqs_cnf::dimacs::parse_dqdimacs(&text).map_err(|error| CorpusError::Parse {
            path: path.clone(),
            error,
        })?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        jobs.push(BatchJob {
            name,
            dqbf: Dqbf::from_file(&file),
        });
    }
    Ok(jobs)
}
