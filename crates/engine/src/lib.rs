//! Parallel solving engine for HQS: portfolio racing and batch scheduling.
//!
//! DQBF solving is wildly heterogeneous — the same instance that times out
//! under one [`HqsConfig`](hqs_core::HqsConfig) falls in milliseconds under
//! another, and nothing cheap predicts which. This crate exploits that
//! variance two ways, both built from `std` only (OS threads, atomics,
//! channels — no external runtime):
//!
//! - **Portfolio solving** ([`solve_portfolio`]): race a curated deck of
//!   strategy variants ([`standard_deck`]) on one formula across OS threads.
//!   The first definitive SAT/UNSAT verdict wins and the losers are torn
//!   down cooperatively through the shared
//!   [`CancelToken`](hqs_base::CancelToken) threaded into every worker's
//!   [`Budget`](hqs_base::Budget) — every existing budget poll site in the
//!   elimination loop, the CDCL restart loop and the QBF backends doubles
//!   as a cancellation point. Workers that *disagree* (one says SAT, one
//!   says UNSAT) raise an [`hqs_base::InvariantViolation`]
//!   carrying both configurations rather than silently picking one.
//! - **Batch scheduling** ([`run_batch`]): drive a whole corpus of jobs
//!   through a hand-rolled work-stealing queue (mutex-sharded deques —
//!   workers pop their own shard from the front and steal from the back of
//!   siblings). Each job gets its own wall-clock/node budget,
//!   panics are isolated per job via `catch_unwind`, and results stream out
//!   as machine-readable JSONL records with per-job wall and CPU time.
//!
//! The CLI surfaces both: `hqs --portfolio [--jobs N]` and
//! `hqs batch <dir>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod deck;
mod jsonl;
mod portfolio;
mod scheduler;

pub use corpus::{load_corpus, CorpusError};
pub use deck::{deck_by_name, perturbed_deck, standard_deck, DeckEntry, DECK_NAMES};
pub use portfolio::{
    run_custom_portfolio, solve_portfolio, PortfolioOptions, PortfolioOutcome, PortfolioTask,
    TaskFn, WorkerReport, WorkerVerdict,
};
pub use scheduler::{
    run_batch, run_batch_with, BatchJob, BatchOptions, BatchSummary, BatchTag, JobOutcome,
    JobRecord, JobResult,
};

use hqs_base::InvariantViolation;
use hqs_core::{CertifyError, ConfigError};
use std::fmt;

/// A failure of the engine itself, as opposed to a resource limit.
///
/// Every variant is loud by design: a portfolio that swallowed a
/// disagreement or a panicked worker would convert a soundness bug into a
/// wrong answer.
#[derive(Debug)]
pub enum EngineError {
    /// Two portfolio workers returned contradictory definitive verdicts.
    ///
    /// This can only happen if at least one strategy variant is unsound, so
    /// the race refuses to pick a winner and surfaces both configurations.
    Disagreement {
        /// Deck name of the worker that answered SAT.
        sat_worker: String,
        /// Deck name of the worker that answered UNSAT.
        unsat_worker: String,
        /// The violation report; its detail embeds both configurations.
        violation: InvariantViolation,
    },
    /// A worker's certificate extraction or verification failed — the
    /// solver's verdict could not be independently confirmed.
    Certification {
        /// Deck name of the worker whose certificate failed.
        worker: String,
        /// The underlying certification failure.
        error: CertifyError,
    },
    /// A portfolio worker panicked; the panic was caught at the worker
    /// boundary so the other racers kept their threads.
    WorkerPanic {
        /// Deck name of the worker that panicked.
        worker: String,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// A worker's configuration failed validation when its solve session
    /// was built — the deck entry is broken, not the formula.
    InvalidConfig {
        /// Deck name of the worker with the rejected configuration.
        worker: String,
        /// The validation failure.
        error: ConfigError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Disagreement {
                sat_worker,
                unsat_worker,
                violation,
            } => write!(
                f,
                "portfolio disagreement: worker '{sat_worker}' answered SAT while worker \
                 '{unsat_worker}' answered UNSAT: {violation}"
            ),
            EngineError::Certification { worker, error } => {
                write!(f, "certification failed in worker '{worker}': {error}")
            }
            EngineError::WorkerPanic { worker, message } => {
                write!(f, "portfolio worker '{worker}' panicked: {message}")
            }
            EngineError::InvalidConfig { worker, error } => {
                write!(f, "invalid configuration in worker '{worker}': {error}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Stringifies a caught panic payload (`&str` and `String` payloads are
/// recovered verbatim; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
