//! Strategy decks: curated and seeded-perturbation [`HqsConfig`] variants.
//!
//! The curated deck spans the axes that matter empirically for elimination-
//! based DQBF solving: static vs. dynamic elimination order, gate detection
//! on/off, FRAIG sweep thresholds, the elimination vs. search QBF backend,
//! and the up-front plain-SAT check. Seeded perturbations extend the deck
//! with random-but-reproducible combinations when more threads are
//! available than curated entries.

use hqs_base::Rng;
use hqs_core::{ElimStrategy, HqsConfig, QbfBackend};

/// One named portfolio strategy.
#[derive(Clone, Debug)]
pub struct DeckEntry {
    /// Stable human-readable name (appears in logs, JSONL and error
    /// reports).
    pub name: String,
    /// The solver configuration this worker runs. Its `budget` field is
    /// overwritten by the portfolio driver with the shared-token budget.
    pub config: HqsConfig,
}

impl DeckEntry {
    fn new(name: &str, config: HqsConfig) -> Self {
        DeckEntry {
            name: name.to_string(),
            config,
        }
    }
}

/// Names of the predefined decks accepted by [`deck_by_name`].
pub const DECK_NAMES: &[&str] = &["standard", "small", "wide"];

/// The seed used for the perturbed tail of the `wide` deck.
///
/// Fixed so `--portfolio=wide --deterministic` is reproducible across runs
/// and machines.
pub const WIDE_DECK_SEED: u64 = 0x4851_5344_4543_4b31; // "HQSDECK1"

/// The eight curated strategy variants, in arbitration-priority order.
///
/// Entry 0 is the solver's default configuration, so a deterministic
/// portfolio on an instance every variant solves returns exactly what a
/// plain single-session run would.
#[must_use]
pub fn standard_deck() -> Vec<DeckEntry> {
    let base = HqsConfig::default;
    vec![
        DeckEntry::new("default", base()),
        DeckEntry::new(
            "dynamic-order",
            HqsConfig {
                dynamic_order: true,
                ..base()
            },
        ),
        DeckEntry::new(
            "no-gates",
            HqsConfig {
                gate_detection: false,
                ..base()
            },
        ),
        DeckEntry::new(
            "fraig-light",
            HqsConfig {
                fraig_threshold: 512,
                ..base()
            },
        ),
        DeckEntry::new(
            "search-backend",
            HqsConfig {
                qbf_backend: QbfBackend::Search,
                ..base()
            },
        ),
        DeckEntry::new(
            "all-universals",
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..base()
            },
        ),
        DeckEntry::new(
            "sat-first",
            HqsConfig {
                initial_sat_check: true,
                subsumption: true,
                ..base()
            },
        ),
        DeckEntry::new(
            "heavy-preprocess",
            HqsConfig {
                subsumption: true,
                dynamic_order: true,
                fraig_threshold: 2048,
                ..base()
            },
        ),
    ]
}

/// Extends a deck with `count` seeded random perturbations.
///
/// Every perturbation is a pure function of `seed` and its position, so two
/// runs with the same seed produce bit-identical decks — a prerequisite for
/// `--deterministic` portfolio runs over perturbed decks.
#[must_use]
pub fn perturbed_deck(base: &[DeckEntry], count: usize, seed: u64) -> Vec<DeckEntry> {
    let mut deck: Vec<DeckEntry> = base.to_vec();
    let mut rng = Rng::seed_from_u64(seed);
    const FRAIG_STEPS: [usize; 5] = [0, 256, 512, 1024, 4096];
    for i in 0..count {
        let fraig_pick = (rng.next_u64() % FRAIG_STEPS.len() as u64) as usize;
        // Sample in a fixed order (field order of the struct below) so
        // the deck stays a pure function of the seed.
        let gate_detection = rng.gen_bool(0.5);
        let initial_sat_check = rng.gen_bool(0.25);
        let unit_pure = rng.gen_bool(0.9);
        let strategy = if rng.gen_bool(0.75) {
            ElimStrategy::MaxSatMinimal
        } else {
            ElimStrategy::AllUniversals
        };
        let subsumption = rng.gen_bool(0.5);
        // Dynamic ordering only makes sense (and only validates) with the
        // MaxSAT-minimal strategy; sample the coin either way to keep the
        // stream position independent of the strategy pick.
        let dynamic_order = rng.gen_bool(0.5) && matches!(strategy, ElimStrategy::MaxSatMinimal);
        let config = HqsConfig {
            preprocess: true,
            gate_detection,
            initial_sat_check,
            unit_pure,
            strategy,
            fraig_threshold: FRAIG_STEPS.get(fraig_pick).copied().unwrap_or(0),
            subsumption,
            dynamic_order,
            qbf_backend: if rng.gen_bool(0.75) {
                QbfBackend::Elimination
            } else {
                QbfBackend::Search
            },
            ..HqsConfig::default()
        };
        deck.push(DeckEntry::new(&format!("seeded-{i}"), config));
    }
    deck
}

/// Resolves a deck name from [`DECK_NAMES`] to its entries.
///
/// - `standard`: the eight curated variants of [`standard_deck`].
/// - `small`: the first four curated variants (for 2–4 thread machines).
/// - `wide`: the curated eight plus eight perturbations from a fixed
///   seed.
///
/// Returns `None` for unknown names.
#[must_use]
pub fn deck_by_name(name: &str) -> Option<Vec<DeckEntry>> {
    match name {
        "standard" => Some(standard_deck()),
        "small" => {
            let mut deck = standard_deck();
            deck.truncate(4);
            Some(deck)
        }
        "wide" => Some(perturbed_deck(&standard_deck(), 8, WIDE_DECK_SEED)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_deck_has_unique_names_and_a_default_lead() {
        let deck = standard_deck();
        assert_eq!(deck.len(), 8);
        assert_eq!(deck[0].name, "default");
        let mut names: Vec<&str> = deck.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), deck.len(), "deck names must be unique");
    }

    #[test]
    fn perturbed_deck_is_a_pure_function_of_the_seed() {
        let a = perturbed_deck(&standard_deck(), 8, 42);
        let b = perturbed_deck(&standard_deck(), 8, 42);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(format!("{:?}", x.config), format!("{:?}", y.config));
        }
        let c = perturbed_deck(&standard_deck(), 8, 43);
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| format!("{:?}", x.config) != format!("{:?}", y.config));
        assert!(differs, "different seeds should perturb differently");
    }

    #[test]
    fn every_deck_config_validates() {
        for name in DECK_NAMES {
            for entry in deck_by_name(name).expect("deck resolves") {
                assert!(
                    entry.config.validate().is_ok(),
                    "deck '{name}' entry '{}' must build a valid session",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn every_named_deck_resolves() {
        for name in DECK_NAMES {
            assert!(deck_by_name(name).is_some(), "deck '{name}' must resolve");
        }
        assert!(deck_by_name("nonsense").is_none());
    }
}
