//! A work-stealing batch scheduler for solving whole corpora.
//!
//! ## Design
//!
//! The queue is a hand-rolled work-stealing deque array: one
//! mutex-guarded `VecDeque` *shard* per worker, seeded round-robin. A
//! worker pops its own shard from the **front** (cache-warm, FIFO within
//! the shard) and, when empty, steals from the **back** of sibling shards
//! (the cold end, minimising contention with the owner). Job indices —
//! `usize`s — are the only thing queued, so the queue itself never
//! allocates after construction and the hot loop
//! ([`Scheduler::worker_loop`] / [`WorkQueue::next_job`]) is free of
//! panics and per-iteration allocation; both are enforced by the
//! `hqs-analyze` hot-path pass.
//!
//! ## Isolation
//!
//! Each job runs under `catch_unwind`: a panicking solver poisons nothing
//! and is reported as [`JobOutcome::Panicked`] while the remaining jobs
//! proceed. Each job gets a fresh [`Budget`] (per-job timeout, node
//! limit) chained to the batch-wide [`CancelToken`], so a batch can be
//! aborted mid-flight and every in-flight solver unwinds cooperatively.

use crate::jsonl::escape_json;
use crate::panic_message;
use hqs_base::{Budget, CancelToken, Exhaustion};
use hqs_core::{CertifiedOutcome, CertifyError, Dqbf, HqsConfig, Outcome, Session};
use hqs_obs::{MetricsObserver, MetricsSnapshot};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One corpus instance queued for solving.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Display name (for corpus directories, the file name).
    pub name: String,
    /// The formula to solve.
    pub dqbf: Dqbf,
}

/// How a batch run is driven.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-job wall-clock limit; `None` runs unbounded.
    pub job_timeout: Option<Duration>,
    /// Per-job AIG node budget bounding memory; `None` runs unbounded.
    pub node_limit: Option<usize>,
    /// Certify each verdict (per-job `certified` flag in the record).
    pub certify: bool,
    /// Solver configuration template; its `budget` field is replaced by
    /// the per-job budget.
    pub config: HqsConfig,
    /// Deck-entry name stamped into every record (see
    /// [`JobRecord::entry`]); batches launched from a named deck entry
    /// pass that name, ad-hoc configurations keep `"default"`.
    pub entry_name: String,
    /// Solve each job under its own [`MetricsObserver`]; the per-job
    /// snapshot lands in [`JobRecord::metrics`] and the merged batch
    /// totals in [`BatchSummary::metrics`].
    pub collect_metrics: bool,
    /// Batch-wide cancellation: firing this token stops job dispatch and
    /// unwinds every in-flight solver at its next budget poll.
    pub cancel: CancelToken,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 1,
            job_timeout: None,
            node_limit: None,
            certify: false,
            config: HqsConfig::default(),
            entry_name: "default".to_string(),
            collect_metrics: false,
            cancel: CancelToken::new(),
        }
    }
}

/// How one batch job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Definitive SAT.
    Sat,
    /// Definitive UNSAT.
    Unsat,
    /// A resource limit (timeout, memout, batch cancellation) hit first.
    Limit(Exhaustion),
    /// The solver panicked on this job; the payload message is attached.
    /// The panic was confined to the job.
    Panicked(String),
    /// Certification machinery failed on this job (soundness alarm).
    Error(String),
}

impl JobOutcome {
    /// Short uppercase code used in JSONL records and progress lines.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            JobOutcome::Sat => "SAT",
            JobOutcome::Unsat => "UNSAT",
            JobOutcome::Limit(Exhaustion::Timeout) => "TIMEOUT",
            JobOutcome::Limit(Exhaustion::Memout) => "MEMOUT",
            JobOutcome::Limit(Exhaustion::Cancelled) => "CANCELLED",
            JobOutcome::Panicked(_) => "PANIC",
            JobOutcome::Error(_) => "ERROR",
        }
    }
}

/// The machine-readable result of one batch job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Position of the job in the input slice.
    pub index: usize,
    /// Job name.
    pub name: String,
    /// Deck-entry name of the configuration the job ran under, so JSONL
    /// output stays interpretable after deck edits.
    pub entry: String,
    /// Configuration fingerprint ([`HqsConfig::fingerprint`]) of that
    /// configuration.
    pub config_hash: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Whether a definitive verdict carried a checked certificate.
    pub certified: bool,
    /// Wall-clock seconds spent on this job.
    pub wall_seconds: f64,
    /// CPU seconds the worker thread spent on this job, when the
    /// platform exposes per-thread CPU time (Linux); `None` elsewhere.
    pub cpu_seconds: Option<f64>,
    /// Which worker thread ran the job.
    pub worker: usize,
    /// Per-job metrics snapshot, when the batch collects metrics.
    pub metrics: Option<MetricsSnapshot>,
}

impl JobRecord {
    /// Renders the record as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let detail = match &self.outcome {
            JobOutcome::Panicked(m) | JobOutcome::Error(m) => {
                format!("\"{}\"", escape_json(m))
            }
            _ => "null".to_string(),
        };
        let cpu = match self.cpu_seconds {
            Some(s) => format!("{s:.6}"),
            None => "null".to_string(),
        };
        let metrics = match &self.metrics {
            Some(snapshot) => snapshot.to_json_compact(),
            None => "null".to_string(),
        };
        format!(
            "{{\"index\":{},\"job\":\"{}\",\"entry\":\"{}\",\"config\":\"{:016x}\",\
             \"outcome\":\"{}\",\"certified\":{},\
             \"wall_s\":{:.6},\"cpu_s\":{},\"worker\":{},\"detail\":{},\"metrics\":{}}}",
            self.index,
            escape_json(&self.name),
            escape_json(&self.entry),
            self.config_hash,
            self.outcome.code(),
            self.certified,
            self.wall_seconds,
            cpu,
            self.worker,
            detail,
            metrics
        )
    }
}

/// Aggregate statistics for a finished batch.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// One record per job, in input order. Jobs never dispatched (batch
    /// cancelled first) report [`JobOutcome::Limit`] with
    /// [`Exhaustion::Cancelled`] and zero time.
    pub records: Vec<JobRecord>,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker count the batch ran with.
    pub workers: usize,
    /// Number of definitive SAT verdicts.
    pub sat: usize,
    /// Number of definitive UNSAT verdicts.
    pub unsat: usize,
    /// Number of jobs stopped by a resource limit.
    pub unsolved: usize,
    /// Number of jobs that panicked or failed certification.
    pub failed: usize,
    /// Merged metrics over every job's snapshot (counters summed,
    /// gauges maxed), when the batch collected metrics.
    pub metrics: Option<MetricsSnapshot>,
}

/// Identity of the configuration a batch ran under, stamped into every
/// [`JobRecord`] (deck-entry name + config fingerprint).
#[derive(Clone, Debug, Default)]
pub struct BatchTag {
    /// Deck-entry name.
    pub entry: String,
    /// [`HqsConfig::fingerprint`] of the configuration.
    pub config_hash: u64,
}

/// What one executed job produced before timing and identity are
/// attached: outcome, certification flag, optional metrics snapshot.
///
/// Plain `(JobOutcome, bool)` pairs convert via `Into`, so metric-less
/// runners (and the scheduler tests) stay terse.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Whether a definitive verdict carried a checked certificate.
    pub certified: bool,
    /// The job's metrics, when collected.
    pub metrics: Option<MetricsSnapshot>,
}

impl From<(JobOutcome, bool)> for JobResult {
    fn from((outcome, certified): (JobOutcome, bool)) -> Self {
        JobResult {
            outcome,
            certified,
            metrics: None,
        }
    }
}

/// The sharded work-stealing queue of job indices.
pub(crate) struct WorkQueue {
    shards: Vec<Mutex<VecDeque<usize>>>,
}

/// Locks a shard, recovering from poisoning: the queue holds plain
/// indices, so a panic while a lock was held cannot leave the deque in a
/// torn state worth refusing to read.
fn lock_shard(shard: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    match shard.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl WorkQueue {
    /// Builds a queue of `jobs` indices dealt round-robin over `workers`
    /// shards.
    fn new(jobs: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut shards: Vec<VecDeque<usize>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            shards.push(VecDeque::with_capacity(jobs / workers + 1));
        }
        for job in 0..jobs {
            if let Some(shard) = shards.get_mut(job % workers) {
                shard.push_back(job);
            }
        }
        WorkQueue {
            shards: shards.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Claims the next job for `worker`: own shard front first, then a
    /// steal from the back of the first non-empty sibling. Returns `None`
    /// only when every shard is empty (the queue only ever drains).
    fn next_job(&self, worker: usize) -> Option<usize> {
        if let Some(own) = self.shards.get(worker) {
            if let Some(job) = lock_shard(own).pop_front() {
                return Some(job);
            }
        }
        for (i, shard) in self.shards.iter().enumerate() {
            if i == worker {
                continue;
            }
            if let Some(job) = lock_shard(shard).pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// Per-run state shared by every worker thread.
pub(crate) struct Scheduler<'a> {
    queue: WorkQueue,
    cancel: &'a CancelToken,
}

/// The job-execution callback a worker invokes for each claimed index.
trait JobRunner: Sync {
    fn run(&self, index: usize, worker: usize);
}

impl Scheduler<'_> {
    /// One worker's dispatch loop: claim, run, repeat until the queue is
    /// dry or the batch is cancelled. Hot-path clean: no allocation, no
    /// panic paths — job execution (and its `catch_unwind`) lives behind
    /// the `runner` callback.
    fn worker_loop(&self, worker: usize, runner: &dyn JobRunner) {
        loop {
            if self.cancel.is_cancelled() {
                break;
            }
            let Some(job) = self.queue.next_job(worker) else {
                break;
            };
            runner.run(job, worker);
        }
    }
}

/// Adapts a closure `Fn(usize, usize)` to the internal [`JobRunner`]
/// object the hot loop dispatches through.
struct RunnerAdapter<F: Fn(usize, usize) + Sync>(F);

impl<F: Fn(usize, usize) + Sync> JobRunner for RunnerAdapter<F> {
    fn run(&self, index: usize, worker: usize) {
        (self.0)(index, worker);
    }
}

/// Returns this thread's accumulated CPU time in seconds, when the
/// platform exposes it.
#[cfg(target_os = "linux")]
fn thread_cpu_seconds() -> Option<f64> {
    // /proc/thread-self/stat fields 14 (utime) and 15 (stime), in clock
    // ticks. The comm field (2) may contain spaces, so split after the
    // closing ')' and count from field 3.
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    let after_comm = stat.rsplit(')').next()?;
    let mut fields = after_comm.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // Clock-tick frequency is fixed at 100 Hz on every supported Linux
    // configuration (sysconf(_SC_CLK_TCK)); good enough for reporting.
    Some((utime + stime) / 100.0)
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_seconds() -> Option<f64> {
    None
}

/// Runs a batch of generic jobs through the work-stealing scheduler.
///
/// This is the seam under [`run_batch`]: `runner` maps a job index to a
/// [`JobResult`] (anything `Into<JobResult>`, so `(JobOutcome, bool)`
/// pairs work) and may panic — panics are caught at the job boundary and
/// become [`JobOutcome::Panicked`]. `tag` identifies the configuration
/// and is copied into every record. `observer` is called once per
/// finished job from the worker thread that ran it (so a JSONL stream
/// can be written live); it must be `Sync`.
///
/// Tests use this entry point to inject panicking or sleeping jobs
/// without constructing formulas.
pub fn run_batch_with<F, R>(
    names: &[String],
    workers: usize,
    cancel: &CancelToken,
    tag: &BatchTag,
    runner: F,
    observer: &(dyn Fn(&JobRecord) + Sync),
) -> BatchSummary
where
    F: Fn(usize) -> R + Sync,
    R: Into<JobResult>,
{
    let started = Instant::now();
    let workers = workers.max(1);
    let job_count = names.len();
    let results: Vec<Mutex<Option<JobRecord>>> = (0..job_count).map(|_| Mutex::new(None)).collect();

    let scheduler = Scheduler {
        queue: WorkQueue::new(job_count, workers),
        cancel,
    };
    let execute = |index: usize, worker: usize| {
        let name = names.get(index).cloned().unwrap_or_default();
        let wall_start = Instant::now();
        let cpu_start = thread_cpu_seconds();
        let result: JobResult = match catch_unwind(AssertUnwindSafe(|| runner(index))) {
            Ok(produced) => produced.into(),
            Err(panic) => (JobOutcome::Panicked(panic_message(panic.as_ref())), false).into(),
        };
        let cpu_seconds = match (cpu_start, thread_cpu_seconds()) {
            (Some(a), Some(b)) => Some((b - a).max(0.0)),
            _ => None,
        };
        let record = JobRecord {
            index,
            name,
            entry: tag.entry.clone(),
            config_hash: tag.config_hash,
            outcome: result.outcome,
            certified: result.certified,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            cpu_seconds,
            worker,
            metrics: result.metrics,
        };
        observer(&record);
        if let Some(slot) = results.get(index) {
            *lock_result(slot) = Some(record);
        }
    };
    let adapter = RunnerAdapter(execute);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let scheduler = &scheduler;
            let adapter = &adapter;
            scope.spawn(move || scheduler.worker_loop(worker, adapter));
        }
    });

    let mut records: Vec<JobRecord> = Vec::with_capacity(job_count);
    for (index, slot) in results.iter().enumerate() {
        let record = lock_result(slot).take().unwrap_or_else(|| JobRecord {
            index,
            name: names.get(index).cloned().unwrap_or_default(),
            entry: tag.entry.clone(),
            config_hash: tag.config_hash,
            outcome: JobOutcome::Limit(Exhaustion::Cancelled),
            certified: false,
            wall_seconds: 0.0,
            cpu_seconds: None,
            worker: 0,
            metrics: None,
        });
        records.push(record);
    }

    let sat = records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Sat)
        .count();
    let unsat = records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Unsat)
        .count();
    let unsolved = records
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::Limit(_)))
        .count();
    let failed = records
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::Panicked(_) | JobOutcome::Error(_)))
        .count();
    let mut metrics: Option<MetricsSnapshot> = None;
    for record in &records {
        let Some(snapshot) = &record.metrics else {
            continue;
        };
        match &mut metrics {
            Some(merged) => merged.merge(snapshot),
            None => metrics = Some(snapshot.clone()),
        }
    }
    BatchSummary {
        records,
        wall_seconds: started.elapsed().as_secs_f64(),
        workers,
        sat,
        unsat,
        unsolved,
        failed,
        metrics,
    }
}

/// Locks a result slot, recovering from poisoning (see [`lock_shard`]).
fn lock_result(slot: &Mutex<Option<JobRecord>>) -> MutexGuard<'_, Option<JobRecord>> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Solves every job in `jobs` under the batch scheduler.
///
/// Each job gets a fresh [`Budget`] built from
/// [`BatchOptions::job_timeout`] / [`BatchOptions::node_limit`] — the
/// timeout clock starts when the job is *dispatched*, not when the batch
/// starts — chained to [`BatchOptions::cancel`]. `observer` streams
/// finished [`JobRecord`]s (e.g. as JSONL) from worker threads.
pub fn run_batch(
    jobs: &[BatchJob],
    opts: &BatchOptions,
    observer: &(dyn Fn(&JobRecord) + Sync),
) -> BatchSummary {
    let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
    let tag = BatchTag {
        entry: opts.entry_name.clone(),
        config_hash: opts.config.fingerprint(),
    };
    let runner = |index: usize| -> JobResult {
        let Some(job) = jobs.get(index) else {
            return (
                JobOutcome::Error("job index out of range".to_string()),
                false,
            )
                .into();
        };
        let mut budget = Budget::new().with_cancel_token(opts.cancel.clone());
        if let Some(timeout) = opts.job_timeout {
            budget = budget.with_timeout(timeout);
        }
        if let Some(nodes) = opts.node_limit {
            budget = budget.with_node_limit(nodes);
        }
        let mut config = opts.config.clone();
        config.budget = budget;
        solve_one(&job.dqbf, config, opts.certify, opts.collect_metrics)
    };
    run_batch_with(&names, opts.workers, &opts.cancel, &tag, runner, observer)
}

/// Solves a single formula to a [`JobResult`], certifying and collecting
/// metrics when asked.
fn solve_one(
    dqbf: &Dqbf,
    mut config: HqsConfig,
    certify: bool,
    collect_metrics: bool,
) -> JobResult {
    let metrics = collect_metrics.then(|| Arc::new(MetricsObserver::new()));
    if certify {
        config.certify = true;
    }
    let mut builder = Session::builder().config(config);
    if let Some(observer) = &metrics {
        builder = builder.observer(Arc::clone(observer) as _);
    }
    let mut session = match builder.build() {
        Ok(session) => session,
        // A config the validator rejects is a broken deck entry, not a
        // property of the formula; report it per-job like a
        // certification failure.
        Err(error) => return (JobOutcome::Error(error.to_string()), false).into(),
    };
    let (outcome, certified) = if certify {
        match session.solve_certified(dqbf) {
            Ok(CertifiedOutcome::Sat(_)) => (JobOutcome::Sat, true),
            Ok(CertifiedOutcome::Unsat(_)) => (JobOutcome::Unsat, true),
            Ok(CertifiedOutcome::Limit(e)) => (JobOutcome::Limit(e), false),
            // Too many universals to expand a certificate; keep the plain
            // verdict and report it uncertified.
            Err(CertifyError::TooLarge) => (outcome_of(session.solve(dqbf)), false),
            Err(error) => (JobOutcome::Error(error.to_string()), false),
        }
    } else {
        (outcome_of(session.solve(dqbf)), false)
    };
    JobResult {
        outcome,
        certified,
        metrics: metrics.map(|observer| observer.snapshot()),
    }
}

/// Maps a solver verdict to a job outcome.
fn outcome_of(result: Outcome) -> JobOutcome {
    match result {
        Outcome::Sat => JobOutcome::Sat,
        Outcome::Unsat => JobOutcome::Unsat,
        Outcome::Unknown(e) => JobOutcome::Limit(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_exactly_once() {
        let queue = WorkQueue::new(10, 3);
        let mut seen = Vec::new();
        for worker in [0usize, 1, 2].iter().cycle().take(64) {
            if let Some(job) = queue.next_job(*worker) {
                seen.push(job);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_reaches_other_shards() {
        let queue = WorkQueue::new(4, 4);
        // Worker 0 can drain the entire queue alone via steals.
        let mut count = 0;
        while queue.next_job(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn jsonl_record_shape_is_stable() {
        let record = JobRecord {
            index: 3,
            name: "a\"b.dqdimacs".to_string(),
            entry: "fraig-light".to_string(),
            config_hash: 0x1234_5678_9abc_def0,
            outcome: JobOutcome::Limit(Exhaustion::Timeout),
            certified: false,
            wall_seconds: 1.25,
            cpu_seconds: Some(0.5),
            worker: 1,
            metrics: None,
        };
        assert_eq!(
            record.to_jsonl(),
            "{\"index\":3,\"job\":\"a\\\"b.dqdimacs\",\"entry\":\"fraig-light\",\
             \"config\":\"123456789abcdef0\",\"outcome\":\"TIMEOUT\",\
             \"certified\":false,\"wall_s\":1.250000,\"cpu_s\":0.500000,\
             \"worker\":1,\"detail\":null,\"metrics\":null}"
        );
    }
}
