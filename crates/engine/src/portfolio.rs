//! Racing a strategy deck on one formula across OS threads.
//!
//! ## Cancellation protocol
//!
//! The driver creates one [`CancelToken`] per race and installs it into
//! every worker's [`Budget`]. When a definitive verdict arrives (or a
//! worker fails), the driver fires the token; every budget poll site in
//! the losing workers — the core elimination loop, the CDCL conflict and
//! decision loops, the QBF backends, iDQ's CEGAR loop — then observes
//! [`Exhaustion::Cancelled`] and unwinds cooperatively. No thread is ever
//! killed.
//!
//! ## Arbitration rules
//!
//! - **Race mode** (default): the first definitive SAT/UNSAT verdict to
//!   arrive wins and cancels the rest. Which worker that is depends on OS
//!   scheduling.
//! - **Deterministic mode** ([`PortfolioOptions::deterministic`]): nobody
//!   is cancelled on a win; every worker runs to completion (or to its
//!   budget) and the winner is the *lowest deck index* holding a
//!   definitive verdict. Two runs over the same deck therefore report the
//!   same winner and verdict, at the price of race-mode latency.
//! - In both modes, if one finished worker says SAT and another says
//!   UNSAT, the race refuses to answer and raises
//!   [`EngineError::Disagreement`] carrying both configurations. In race
//!   mode a loser is normally cancelled before finishing, so full
//!   cross-checking is only guaranteed in deterministic mode.

use crate::{panic_message, DeckEntry, EngineError};
use hqs_base::{Budget, CancelToken, Exhaustion, InvariantViolation};
use hqs_core::{CertifiedOutcome, CertifyError, Dqbf, Outcome, Session};
use hqs_obs::Obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// How a portfolio run is driven.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// Number of OS threads racing the deck. Clamped to at least 1; more
    /// threads than deck entries is wasteful but harmless.
    pub threads: usize,
    /// Reproducible arbitration: run every entry to completion and pick
    /// the lowest deck index with a definitive verdict (see module docs).
    pub deterministic: bool,
    /// Ask each worker to certify its verdict; the outcome's `certified`
    /// flag reports whether the winner's certificate checked out.
    pub certify: bool,
    /// Budget template for every worker (deadline, node limit). Any cancel
    /// token already present is *replaced* by the race's own token; the
    /// original token is still polled by the driver, so cancelling it
    /// cancels the whole race.
    pub budget: Budget,
    /// Observability handle shared by every worker session. The default
    /// disabled handle keeps workers fully uninstrumented; attach one
    /// [`MetricsObserver`](hqs_obs::MetricsObserver) to aggregate
    /// counters and spans across the whole race (the sharded registry
    /// is built for exactly this concurrency).
    pub observer: Obs,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        PortfolioOptions {
            threads: 4,
            deterministic: false,
            certify: false,
            budget: Budget::new(),
            observer: Obs::disabled(),
        }
    }
}

/// What one worker concluded about the formula.
#[derive(Clone, Debug)]
pub struct WorkerVerdict {
    /// The solver verdict.
    pub result: Outcome,
    /// Whether the verdict carries an independently checked certificate.
    pub certified: bool,
}

/// One worker's contribution to a finished portfolio run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Index of the entry in the deck the portfolio was launched with.
    pub deck_index: usize,
    /// Deck entry name.
    pub name: String,
    /// The worker's verdict (definitive or a resource limit).
    pub result: Outcome,
    /// Whether the verdict was certified.
    pub certified: bool,
    /// Wall-clock seconds this worker ran.
    pub wall_seconds: f64,
}

/// The aggregate result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning verdict, or [`Outcome::Unknown`] if no worker was
    /// definitive.
    pub result: Outcome,
    /// Deck index of the winner, if any worker was definitive.
    pub winner: Option<usize>,
    /// Deck entry name of the winner.
    pub winner_name: Option<String>,
    /// Whether the winning verdict was certified.
    pub certified: bool,
    /// One report per deck entry, sorted by deck index. Entries cancelled
    /// before finishing report `Limit(Cancelled)`.
    pub reports: Vec<WorkerReport>,
}

/// The boxed work closure of a [`PortfolioTask`]: budget in, verdict (or
/// engine failure) out.
pub type TaskFn = Box<dyn FnOnce(&Budget) -> Result<WorkerVerdict, EngineError> + Send>;

/// A unit of racing work: a name plus a closure producing a verdict.
///
/// [`solve_portfolio`] builds these from [`DeckEntry`]s; tests build them
/// directly to inject lying or panicking workers without touching the
/// solver.
pub struct PortfolioTask {
    /// Name used in reports and error messages.
    pub name: String,
    /// Description embedded in disagreement reports (for deck entries,
    /// the `Debug` rendering of the [`hqs_core::HqsConfig`]).
    pub detail: String,
    /// The work. Receives the budget (carrying the race's cancel token)
    /// that the task must poll.
    pub run: TaskFn,
}

/// Races the given deck on one formula and returns the arbitrated outcome.
///
/// See the module docs for the cancellation protocol and arbitration
/// rules. Errors ([`EngineError::Disagreement`], certification failures,
/// worker panics) are never converted into verdicts.
pub fn solve_portfolio(
    dqbf: &Dqbf,
    deck: &[DeckEntry],
    opts: &PortfolioOptions,
) -> Result<PortfolioOutcome, EngineError> {
    let tasks = deck
        .iter()
        .map(|entry| {
            let name = entry.name.clone();
            let config = entry.config.clone();
            let formula = dqbf.clone();
            let certify = opts.certify;
            let obs = opts.observer.clone();
            PortfolioTask {
                name: name.clone(),
                detail: format!("{config:?}"),
                run: Box::new(move |budget: &Budget| {
                    run_deck_entry(&formula, config, budget, certify, &name, &obs)
                }),
            }
        })
        .collect();
    run_custom_portfolio(tasks, opts)
}

/// Runs one deck entry to a verdict, certifying when asked.
fn run_deck_entry(
    dqbf: &Dqbf,
    mut config: hqs_core::HqsConfig,
    budget: &Budget,
    certify: bool,
    name: &str,
    obs: &Obs,
) -> Result<WorkerVerdict, EngineError> {
    config.budget = budget.clone();
    if certify {
        config.certify = true;
    }
    let mut builder = Session::builder().config(config);
    if let Some(observer) = obs.observer() {
        builder = builder.observer(observer);
    }
    let mut session = builder
        .build()
        .map_err(|error| EngineError::InvalidConfig {
            worker: name.to_string(),
            error,
        })?;
    if !certify {
        return Ok(WorkerVerdict {
            result: session.solve(dqbf),
            certified: false,
        });
    }
    match session.solve_certified(dqbf) {
        Ok(CertifiedOutcome::Sat(_)) => Ok(WorkerVerdict {
            result: Outcome::Sat,
            certified: true,
        }),
        Ok(CertifiedOutcome::Unsat(_)) => Ok(WorkerVerdict {
            result: Outcome::Unsat,
            certified: true,
        }),
        Ok(CertifiedOutcome::Limit(e)) => Ok(WorkerVerdict {
            result: Outcome::Unknown(e),
            certified: false,
        }),
        // Certification is capped by the universal-expansion limit; fall
        // back to the plain verdict rather than failing the whole race.
        Err(CertifyError::TooLarge) => Ok(WorkerVerdict {
            result: session.solve(dqbf),
            certified: false,
        }),
        Err(error) => Err(EngineError::Certification {
            worker: name.to_string(),
            error,
        }),
    }
}

/// Message sent from a worker thread back to the driver.
struct Arrival {
    task_index: usize,
    name: String,
    detail: String,
    wall_seconds: f64,
    payload: Result<WorkerVerdict, EngineError>,
}

/// Races arbitrary tasks (the generic seam under [`solve_portfolio`]).
///
/// Exposed so integration tests can race mock tasks — a lying worker pair
/// to exercise disagreement detection, a panicking task to exercise panic
/// isolation — without constructing solver configurations.
pub fn run_custom_portfolio(
    tasks: Vec<PortfolioTask>,
    opts: &PortfolioOptions,
) -> Result<PortfolioOutcome, EngineError> {
    let task_count = tasks.len();
    let token = CancelToken::new();
    let caller_token = opts.budget.cancel_token().cloned();
    let worker_budget = opts.budget.clone().with_cancel_token(token.clone());
    let threads = opts.threads.max(1).min(task_count.max(1));
    let deterministic = opts.deterministic;

    // FnOnce tasks are claimed by index: a shared cursor hands out the next
    // index and the slot's mutex lets exactly one worker take the closure.
    let slots: Vec<Mutex<Option<PortfolioTask>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Arrival>();

    let mut arrivals: Vec<Arrival> = Vec::with_capacity(task_count);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let token = token.clone();
            let worker_budget = worker_budget.clone();
            let slots = &slots;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(index) else { break };
                let Some(task) = take_task(slot) else {
                    continue;
                };
                let start = Instant::now();
                let payload = if token.is_cancelled() && !deterministic {
                    // The race is already over; don't start losing work.
                    Ok(WorkerVerdict {
                        result: Outcome::Unknown(Exhaustion::Cancelled),
                        certified: false,
                    })
                } else {
                    let run = AssertUnwindSafe(|| (task.run)(&worker_budget));
                    match catch_unwind(run) {
                        Ok(verdict) => verdict,
                        Err(panic) => Err(EngineError::WorkerPanic {
                            worker: task.name.clone(),
                            message: panic_message(panic.as_ref()),
                        }),
                    }
                };
                let sent = tx.send(Arrival {
                    task_index: index,
                    name: task.name,
                    detail: task.detail,
                    wall_seconds: start.elapsed().as_secs_f64(),
                    payload,
                });
                if sent.is_err() {
                    break; // driver is gone; nothing left to report to
                }
            });
        }
        drop(tx);

        // Drive the race: collect one arrival per task, firing the cancel
        // token on the first definitive verdict (race mode) or on the
        // first worker failure (both modes). The caller's original token,
        // if any, is polled so external cancellation reaches the race.
        while arrivals.len() < task_count {
            let arrival = match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(a) => a,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(outer) = &caller_token {
                        if outer.is_cancelled() && !token.is_cancelled() {
                            token.cancel("portfolio cancelled by caller");
                        }
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            match &arrival.payload {
                Ok(verdict) => {
                    let definitive = matches!(verdict.result, Outcome::Sat | Outcome::Unsat);
                    if definitive && !deterministic && !token.is_cancelled() {
                        token.cancel("portfolio winner found");
                    }
                }
                Err(_) => {
                    if !token.is_cancelled() {
                        token.cancel("portfolio worker failed");
                    }
                }
            }
            arrivals.push(arrival);
        }
    });

    arbitrate(arrivals, task_count)
}

/// Takes ownership of a task slot, recovering from lock poisoning (a
/// sibling worker panicking while holding the lock must not take the whole
/// portfolio down).
fn take_task(slot: &Mutex<Option<PortfolioTask>>) -> Option<PortfolioTask> {
    match slot.lock() {
        Ok(mut guard) => guard.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    }
}

/// Turns the raw arrivals into an arbitrated outcome or a loud error.
fn arbitrate(
    mut arrivals: Vec<Arrival>,
    task_count: usize,
) -> Result<PortfolioOutcome, EngineError> {
    arrivals.sort_by_key(|a| a.task_index);

    // Worker failures outrank verdicts: a panicked or uncertifiable
    // worker means the race cannot be trusted end-to-end.
    if let Some(pos) = arrivals.iter().position(|a| a.payload.is_err()) {
        let failed = arrivals.remove(pos);
        failed.payload?;
    }

    let mut reports: Vec<WorkerReport> = Vec::with_capacity(task_count);
    for arrival in &arrivals {
        if let Ok(verdict) = &arrival.payload {
            reports.push(WorkerReport {
                deck_index: arrival.task_index,
                name: arrival.name.clone(),
                result: verdict.result,
                certified: verdict.certified,
                wall_seconds: arrival.wall_seconds,
            });
        }
    }

    // Cross-check every definitive pair before declaring a winner.
    let first_sat = reports.iter().find(|r| r.result == Outcome::Sat);
    let first_unsat = reports.iter().find(|r| r.result == Outcome::Unsat);
    if let (Some(sat), Some(unsat)) = (first_sat, first_unsat) {
        let sat_detail = detail_for(&arrivals, sat.deck_index);
        let unsat_detail = detail_for(&arrivals, unsat.deck_index);
        let violation = InvariantViolation::new(
            "portfolio",
            format!(
                "contradictory verdicts: '{}' (deck {}) answered SAT with config {} while \
                 '{}' (deck {}) answered UNSAT with config {}",
                sat.name, sat.deck_index, sat_detail, unsat.name, unsat.deck_index, unsat_detail
            ),
        );
        return Err(EngineError::Disagreement {
            sat_worker: sat.name.clone(),
            unsat_worker: unsat.name.clone(),
            violation,
        });
    }

    // Winner: lowest deck index with a definitive verdict. In race mode
    // at most one definitive verdict normally exists (the rest were
    // cancelled); in deterministic mode this is the reproducible pick.
    let winner = reports
        .iter()
        .find(|r| matches!(r.result, Outcome::Sat | Outcome::Unsat));
    let outcome = match winner {
        Some(w) => PortfolioOutcome {
            result: w.result,
            winner: Some(w.deck_index),
            winner_name: Some(w.name.clone()),
            certified: w.certified,
            reports,
        },
        None => {
            // No definitive verdict: report the most informative limit —
            // a real exhaustion (timeout/memout) over a cancellation echo.
            let limit = reports
                .iter()
                .find_map(|r| match r.result {
                    Outcome::Unknown(e) if e != Exhaustion::Cancelled => Some(e),
                    _ => None,
                })
                .unwrap_or(Exhaustion::Cancelled);
            PortfolioOutcome {
                result: Outcome::Unknown(limit),
                winner: None,
                winner_name: None,
                certified: false,
                reports,
            }
        }
    };
    Ok(outcome)
}

/// Looks up the task detail string for a deck index.
fn detail_for(arrivals: &[Arrival], deck_index: usize) -> String {
    arrivals
        .iter()
        .find(|a| a.task_index == deck_index)
        .map(|a| a.detail.clone())
        .unwrap_or_default()
}
