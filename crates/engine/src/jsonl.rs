//! Minimal JSON string escaping for the batch scheduler's JSONL records.
//!
//! The engine emits flat records (strings, numbers, booleans, null), so a
//! full JSON serialiser would be dead weight; only string escaping is
//! needed, and only the mandatory escapes (RFC 8259 §7).

use std::fmt::Write;

/// Escapes `s` for embedding inside a double-quoted JSON string.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // Remaining control characters take the \u form. The write
                // cannot fail on a String; swallow the Result to keep the
                // escaper infallible.
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::escape_json;

    #[test]
    fn escapes_the_mandatory_set() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("héllo"), "héllo");
    }
}
